"""The Ordered Inverted File (OIF) — the paper's primary contribution.

An :class:`OrderedInvertedFile` is built from a :class:`~repro.core.records.Dataset`
in four steps (Section 3):

1. derive the frequency order ``<_D`` over the items (Equation 1);
2. sort the records lexicographically by sequence form and assign new internal
   ids 1..N (:mod:`repro.core.ordering`);
3. compute the metadata table of Theorem 1 (one contiguous id region per
   smallest item), which removes one posting per record;
4. split every item's remaining postings into blocks, tag each block with the
   sequence form of its last record, and bulk-load all blocks of all lists into
   a single B+-tree keyed by ``(item, tag, last id)``.

Queries are evaluated by the Range-of-Interest algorithms in
:mod:`repro.core.queries`; results are returned as the *original* record ids of
the source dataset.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.compression.postings import Posting, PostingBlockCodec, PostingColumns
from repro.core import queries as _queries
from repro.core.blocks import BlockKey, BlockWriter, TagLookup, search_key
from repro.core.interfaces import SetContainmentIndex
from repro.core.items import Item, ItemOrder
from repro.core.metadata import MetadataTable
from repro.core.ordering import OrderedDataset, order_dataset
from repro.core.postings import (
    DEFAULT_DENSE_RATIO,
    REPR_ARRAY,
    REPR_BITMAP,
    DensePostings,
    choose_representation,
    record_repr_choice,
    to_dense,
)
from repro.core.records import Dataset
from repro.core.roi import RangeOfInterest, subset_roi
from repro.core.sequence import SequenceForm
from repro.errors import IndexBuildError, IndexNotBuiltError, QueryError
from repro.obs import trace
from repro.storage.block_cache import DEFAULT_DECODED_CACHE_BYTES, DecodedBlockCache
from repro.storage.kvstore import PAPER_CACHE_BYTES, Environment
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.storage.stats import ReadContext


@dataclass(frozen=True)
class OIFBuildReport:
    """Summary of one OIF build, used by the space and update experiments."""

    num_records: int
    num_items: int
    num_postings: int
    postings_saved_by_metadata: int
    num_blocks: int
    index_pages: int
    index_size_bytes: int
    build_seconds: float


_BLOCK_POINTER = struct.Struct("<IHH")  # data page id, offset within page, length


class BlockRef:
    """Handle to one stored block: loads (and charges) its data only on demand.

    With the default *paged* layout the B-tree leaves hold only the block keys
    plus a small pointer, and the postings live on dedicated data pages — the
    layout Berkeley DB uses for large data items.  Skipping a block during
    query evaluation therefore skips its data page entirely; only blocks whose
    postings are actually merged cost a page access.  With ``inline_blocks``
    the postings sit next to the key and :meth:`postings` is a pure decode.
    """

    __slots__ = ("_oif", "_inline", "_page_id", "_offset", "_length", "_dense")

    def __init__(
        self,
        oif: "OrderedInvertedFile",
        inline: bytes | None = None,
        page_id: int = 0,
        offset: int = 0,
        length: int = 0,
        dense: bool = False,
    ) -> None:
        self._oif = oif
        self._inline = inline
        self._page_id = page_id
        self._offset = offset
        self._length = length
        self._dense = dense

    @property
    def encoded_length(self) -> int:
        """Size in bytes of the encoded block."""
        if self._inline is not None:
            return len(self._inline)
        return self._length

    def raw(self, ctx: "ReadContext | None" = None) -> bytes:
        """Return the encoded block bytes (reads the data page if needed)."""
        if self._inline is not None:
            return self._inline
        page = self._oif.env.pool.get_page(self._page_id, ctx)
        return bytes(page[self._offset : self._offset + self._length])

    def decoded(self, ctx: "ReadContext | None" = None) -> "PostingColumns | DensePostings":
        """The block's postings in their chosen representation — the hot path.

        Blocks of an item tagged dense at build time decode into a
        :class:`~repro.core.postings.DensePostings` bitmap (subject to the
        geometry guard — a block whose ids sprawl keeps the array form);
        everything else stays :class:`PostingColumns`.  The intersection
        kernels dispatch on the returned type.

        Consults the owning index's decoded-block cache first; the cached
        entry is the chosen representation, so the conversion happens once
        per residency.  A cache hit skips the v-byte decode *but still
        charges the data-page access* to ``ctx`` and the pool totals: the
        cache removes CPU, never simulated I/O, so page counts stay identical
        with and without it — and identical across representations, which
        never touch storage.  The lookup itself is recorded as a
        ``decoded_hit`` / ``decoded_miss`` on the same context.
        """
        token = trace.stage_begin()
        try:
            if self._inline is not None:
                # Inline blocks ride in the B-tree leaves and have no stable
                # (page, offset) identity; decode directly.
                return self._choose(self._oif.decode_columns(self._inline))
            cache = self._oif.decoded_cache
            if cache is None:
                return self._choose(self._oif.decode_columns(self.raw(ctx)))
            entry = cache.get((self._page_id, self._offset), ctx)
            page = self._oif.env.pool.get_page(self._page_id, ctx)
            if entry is None:
                raw = bytes(page[self._offset : self._offset + self._length])
                entry = self._choose(self._oif.decode_columns(raw))
                cache.put((self._page_id, self._offset), entry)
            return entry
        finally:
            trace.stage_end("decode", token)

    def _choose(self, columns: PostingColumns) -> "PostingColumns | DensePostings":
        """Apply the block's representation tag to a freshly decoded block."""
        if self._dense:
            dense = to_dense(columns)
            if dense is not None:
                record_repr_choice(REPR_BITMAP)
                return dense
        record_repr_choice(REPR_ARRAY)
        return columns

    def columns(self, ctx: "ReadContext | None" = None) -> PostingColumns:
        """The block's postings in columnar form (see :meth:`decoded`).

        Callers that need sorted id columns regardless of representation —
        equality/superset evaluation, streaming single-item subsets — go
        through here; a dense entry materializes its columns on the fly.
        """
        entry = self.decoded(ctx)
        if isinstance(entry, DensePostings):
            return entry.to_columns()
        return entry

    def postings(self, ctx: "ReadContext | None" = None) -> list[Posting]:
        """Decode the block's postings, charging the data-page read to ``ctx``."""
        return self.columns(ctx).postings()


class _BlockPageWriter:
    """Packs encoded blocks onto dedicated, sequentially allocated data pages."""

    def __init__(self, pool) -> None:
        self._pool = pool
        self._page_size = pool.page_file.page_size
        self._page_id: int | None = None
        self._used = 0

    def write(self, data: bytes) -> tuple[int, int, int]:
        """Store ``data`` and return its ``(page_id, offset, length)`` pointer."""
        if len(data) > self._page_size:
            raise IndexBuildError(
                f"encoded block of {len(data)} bytes exceeds the page size {self._page_size}"
            )
        if self._page_id is None or self._used + len(data) > self._page_size:
            self._page_id = self._pool.allocate_page()
            self._used = 0
        page = self._pool.get_page(self._page_id)
        page[self._used : self._used + len(data)] = data
        self._pool.mark_dirty(self._page_id)
        pointer = (self._page_id, self._used, len(data))
        self._used += len(data)
        return pointer


class OrderedInvertedFile(SetContainmentIndex):
    """Disk-resident ordered inverted file over a set-valued dataset.

    Parameters
    ----------
    dataset:
        The records to index.
    env:
        Storage environment; a fresh in-memory environment with the paper's
        32 KB cache is created when omitted.
    block_capacity:
        Maximum number of postings per block.
    max_block_bytes:
        Maximum encoded size of a block; defaults to half the page size so a
        block plus its key always fits in one B-tree leaf.
    compress:
        Store posting ids as v-byte d-gaps (the paper's default).  Disable to
        measure the impact of compression.
    use_metadata:
        Keep the Theorem 1 metadata table and drop the postings it makes
        redundant.  Disable for the ablation experiments.
    narrow_candidate_range:
        Apply Algorithm 1's progressive candidate-range narrowing.
    tag_prefix:
        When set, block tags are truncated to this many items (the key-size
        reduction mentioned in Section 3).  ``None`` keeps full tags.
    inline_blocks:
        By default (``False``) block postings live on dedicated data pages and
        the B-tree stores only keys plus small pointers — the Berkeley DB
        layout for large data items, which lets query evaluation skip the data
        pages of pruned blocks.  Set to ``True`` to store postings inline next
        to their keys (an ablation of the key/data separation).
    decoded_cache_bytes:
        Byte budget of the decoded-block cache kept above the buffer pool
        (see :class:`~repro.storage.block_cache.DecodedBlockCache`): repeat
        and concurrent traversals of the same block skip the v-byte decode
        entirely while still paying the block's simulated page access.  Pass
        ``0`` (or ``None``) to disable.  Invalidated on every rebuild and on
        :meth:`drop_cache`.
    posting_repr:
        ``"auto"`` (default) decodes blocks of items whose support reaches
        ``dense_ratio`` of the record count as packed bitmaps
        (:class:`~repro.core.postings.DensePostings`) and routes them through
        the bitmap intersection kernels; ``"array"`` keeps every block in
        sorted-id column form.  The stored bytes, the pages read and every
        result are identical either way — only decode shape and CPU differ.
    dense_ratio:
        Density threshold for ``posting_repr="auto"``; an item appearing in
        at least this fraction of records is tagged dense at build/flush
        time.  Defaults to ``1/64``.
    item_order:
        Override the ``<_D`` order (e.g. to study non-frequency orderings).
    catalog_pages:
        When building a fresh environment (``env`` omitted), reserve page 0
        as a table catalog so the page image can be snapshotted and reopened
        verbatim — the prerequisite for durability snapshots and for the
        multiprocess shard backend.  Ignored when ``env`` is supplied.
    """

    name = "OIF"

    def __init__(
        self,
        dataset: Dataset,
        env: Environment | None = None,
        *,
        block_capacity: int = 128,
        max_block_bytes: int | None = None,
        compress: bool = True,
        use_metadata: bool = True,
        narrow_candidate_range: bool = True,
        tag_prefix: int | None = None,
        inline_blocks: bool = False,
        fill_factor: float = 0.9,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_bytes: int = PAPER_CACHE_BYTES,
        decoded_cache_bytes: "int | None" = DEFAULT_DECODED_CACHE_BYTES,
        posting_repr: str = "auto",
        dense_ratio: float = DEFAULT_DENSE_RATIO,
        item_order: ItemOrder | None = None,
        catalog_pages: bool = False,
        build: bool = True,
    ) -> None:
        if env is None:
            env = Environment(
                page_size=page_size, cache_bytes=cache_bytes, catalog=catalog_pages
            )
        super().__init__(dataset, env)
        if posting_repr not in ("auto", "array"):
            raise QueryError(
                f"posting_repr must be 'auto' or 'array', got {posting_repr!r}"
            )
        self.posting_repr = posting_repr
        self.dense_ratio = dense_ratio
        # item rank -> representation tag, chosen from the list's support at
        # build time (rebuilds — the OIF's flush path — re-choose, so lists
        # crossing the threshold switch representation then).  Advisory: the
        # decode-time geometry guard still has the final say per block.
        self._list_repr: dict[int, str] = {}
        self.decoded_cache: "DecodedBlockCache | None" = (
            DecodedBlockCache(decoded_cache_bytes, stats=env.stats)
            if decoded_cache_bytes
            else None
        )
        self.block_capacity = block_capacity
        self.inline_blocks = inline_blocks
        if max_block_bytes is not None:
            self.max_block_bytes = max_block_bytes
        elif inline_blocks:
            self.max_block_bytes = env.page_size // 2
        else:
            self.max_block_bytes = env.page_size - 64
        self.compress = compress
        self.use_metadata = use_metadata
        self.narrow_candidate_range = narrow_candidate_range
        self.tag_prefix = tag_prefix
        self.fill_factor = fill_factor
        self._requested_order = item_order
        self._codec = PostingBlockCodec(compress=compress)
        self._ordered: OrderedDataset | None = None
        self._table = None
        self.build_report: OIFBuildReport | None = None
        if build:
            self.build()

    # -- construction --------------------------------------------------------------

    def build(self) -> OIFBuildReport:
        """(Re)build the index from the current dataset contents."""
        start = time.perf_counter()
        if self.decoded_cache is not None:
            # The rebuild lays blocks out on fresh pages; any cached decode
            # keyed by the old (page, offset) locations is stale.
            self.decoded_cache.invalidate()
        ordered = order_dataset(self.dataset, self._requested_order)
        posting_lists = self._collect_posting_lists(ordered)

        # Tag each list's representation from its support before the blocks
        # are laid out, so query-time decode never re-inspects frequencies.
        # Supports come from the vocabulary (not the stored list length): the
        # metadata table removes one posting per record, but density is a
        # property of the item, not of what survived Theorem 1.
        num_records = len(self.dataset)
        order = ordered.order
        self._list_repr = {
            rank: choose_representation(
                # Orders built without support stats (explicit overrides) fall
                # back to the stored list length — support minus the records
                # Theorem 1 covers, i.e. a slight, safe underestimate.
                order.support(order.item_at(rank)) or len(posting_lists[rank]),
                num_records,
                self.dense_ratio,
            )
            for rank in posting_lists
        }

        block_count = 0
        posting_count = 0

        def blocks() -> Iterator:
            nonlocal block_count, posting_count
            tag_lookup = TagLookup(ordered.sequence_forms)
            for item_rank in sorted(posting_lists):
                writer = BlockWriter(
                    item_rank=item_rank,
                    codec=self._codec,
                    tag_for=tag_lookup,
                    block_capacity=self.block_capacity,
                    max_block_bytes=self.max_block_bytes,
                    tag_prefix=self.tag_prefix,
                )
                for posting in posting_lists[item_rank]:
                    block = writer.add(posting)
                    if block is not None:
                        block_count += 1
                        posting_count += len(block.postings)
                        yield block
                block = writer.finish()
                if block is not None:
                    block_count += 1
                    posting_count += len(block.postings)
                    yield block

        if self.inline_blocks:
            # Blocks live next to their keys in the B-tree leaves.
            entries = (
                (block.key().encode(), self._codec.encode(block.postings))
                for block in blocks()
            )
            table = self.env.create_table(self._fresh_table_name(), access_method="btree")
            table.bulk_load(entries, fill_factor=self.fill_factor)
        else:
            # Berkeley-DB-like layout: the postings of each block are written to
            # dedicated, contiguously allocated data pages (first, so a list's
            # data stays physically sequential) and the B-tree stores only the
            # key plus a small pointer.  Skipping a block during query
            # evaluation then skips its data page.
            page_writer = _BlockPageWriter(self.env.pool)
            pointer_entries: list[tuple[bytes, bytes]] = []
            for block in blocks():
                encoded = self._codec.encode(block.postings)
                page_id, offset, length = page_writer.write(encoded)
                pointer_entries.append(
                    (block.key().encode(), _BLOCK_POINTER.pack(page_id, offset, length))
                )
            table = self.env.create_table(self._fresh_table_name(), access_method="btree")
            table.bulk_load(pointer_entries, fill_factor=self.fill_factor)
        self.env.pool.flush()

        self._ordered = ordered
        self._table = table
        self._planner = None  # dataset statistics may have changed
        saved = ordered.metadata.covered_postings() if self.use_metadata else 0
        self.build_report = OIFBuildReport(
            num_records=len(self.dataset),
            num_items=len(ordered.order),
            num_postings=posting_count,
            postings_saved_by_metadata=saved,
            num_blocks=block_count,
            index_pages=self.env.page_file.num_pages,
            index_size_bytes=self.env.size_bytes,
            build_seconds=time.perf_counter() - start,
        )
        return self.build_report

    def _collect_posting_lists(self, ordered: OrderedDataset) -> dict[int, list[Posting]]:
        """Gather per-item postings in internal-id order.

        With the metadata table enabled, a record contributes no posting for
        its smallest item (the metadata region replaces it).
        """
        lists: dict[int, list[Posting]] = {}
        for index, form in enumerate(ordered.sequence_forms):
            internal_id = index + 1
            length = ordered.lengths[index]
            start = 1 if self.use_metadata else 0
            for rank in form[start:]:
                lists.setdefault(rank, []).append(Posting(internal_id, length))
        return lists

    _table_counter = 0

    def _fresh_table_name(self) -> str:
        OrderedInvertedFile._table_counter += 1
        return f"oif_blocks_{OrderedInvertedFile._table_counter}"

    # -- accessors used by the query algorithms ------------------------------------

    @property
    def ordered(self) -> OrderedDataset:
        """The reordered dataset (order, sequence forms, id maps, metadata)."""
        if self._ordered is None:
            raise IndexNotBuiltError("the OIF has not been built yet")
        return self._ordered

    @property
    def order(self) -> ItemOrder:
        """The ``<_D`` item order in effect."""
        return self.ordered.order

    @property
    def metadata(self) -> MetadataTable:
        """The Theorem 1 metadata table."""
        return self.ordered.metadata

    @property
    def domain_size(self) -> int:
        """Number of distinct items in the indexed vocabulary."""
        return len(self.ordered.order)

    def decode_postings(self, raw_value: bytes) -> list[Posting]:
        """Decode one block value into its postings."""
        return self._codec.decode_columns(raw_value).postings()

    def decode_columns(self, raw_value: bytes) -> PostingColumns:
        """Batch-decode one block value into its columnar form (the hot path)."""
        return self._codec.decode_columns(raw_value)

    def drop_cache(self) -> None:
        """Empty the buffer pool *and* the decoded-block cache.

        The experiment runner calls this between queries so every query is
        measured truly cold — pages and decode CPU alike.
        """
        super().drop_cache()
        if self.decoded_cache is not None:
            self.decoded_cache.invalidate()

    def scan_blocks(
        self,
        item_rank: int,
        roi: RangeOfInterest,
        start_after_id: int = 0,
        ctx: "ReadContext | None" = None,
    ) -> Iterator[tuple[BlockKey, BlockRef]]:
        """Yield ``(key, block_ref)`` for the blocks of a list overlapping ``roi``.

        The scan starts at the first block whose tag is >= ``roi.lower`` (and,
        when ``start_after_id`` is given, whose last record id exceeds it) and
        stops after yielding the first block whose tag is strictly greater than
        ``roi.upper`` — that block may still contain records inside the range,
        which is why it is included (Section 4).

        The yielded :class:`BlockRef` fetches the block's postings lazily:
        callers that decide — from the key alone — that a block cannot contain
        candidates simply never load it, which is where the OIF saves data-page
        accesses over the classic inverted file.

        When tags are stored truncated (``tag_prefix``), the seek bound is
        truncated identically: truncation is monotone under the lexicographic
        order, so starting at the truncated lower bound can only start the
        scan earlier, never skip a qualifying block.
        """
        if self._table is None:
            raise IndexNotBuiltError("the OIF has not been built yet")
        dense = self.rank_is_dense(item_rank)
        seek_lower = roi.lower if self.tag_prefix is None else roi.lower[: self.tag_prefix]
        seek = search_key(item_rank, seek_lower, start_after_id)
        # Stage marks bracket each cursor step (never a yield): the consumer
        # may suspend this generator indefinitely between blocks, and a stage
        # left open across the yield would swallow the consumer's own time.
        steps = iter(self._table.cursor(seek, ctx))
        while True:
            token = trace.stage_begin()
            try:
                step = next(steps, None)
            finally:
                trace.stage_end("block_scan", token)
            if step is None:
                return
            key_bytes, value = step
            block_key = BlockKey.decode(key_bytes)
            if block_key.item_rank != item_rank:
                return
            yield block_key, self._block_ref(value, dense)
            if block_key.tag > roi.upper:
                return

    def _block_ref(self, stored_value: bytes, dense: bool = False) -> BlockRef:
        """Wrap a stored B-tree value (inline block or pointer) in a BlockRef."""
        if self.inline_blocks:
            return BlockRef(self, inline=stored_value, dense=dense)
        page_id, offset, length = _BLOCK_POINTER.unpack(stored_value)
        return BlockRef(self, page_id=page_id, offset=offset, length=length, dense=dense)

    def rank_is_dense(self, item_rank: int) -> bool:
        """Whether blocks of this list decode as bitmaps under the current config."""
        return (
            self.posting_repr != "array"
            and self._list_repr.get(item_rank) == REPR_BITMAP
        )

    def repr_for(self, item: Item) -> str:
        """The representation tag recorded for ``item`` (explain/metrics)."""
        if self.posting_repr == "array" or self._ordered is None:
            return REPR_ARRAY
        rank = self.order.try_rank_of(item)
        if rank is None:
            return REPR_ARRAY
        return self._list_repr.get(rank, REPR_ARRAY)

    def query_ranks(self, items: Iterable[Item]) -> SequenceForm | None:
        """Translate query items to a rank tuple; ``None`` if any item is unknown."""
        ranks: list[int] = []
        for item in set(items):
            rank = self.order.try_rank_of(item)
            if rank is None:
                return None
            ranks.append(rank)
        return tuple(sorted(ranks))

    def to_original_ids(self, internal_ids: Iterable[int]) -> list[int]:
        """Map internal ids back to the source dataset's ids, sorted ascending."""
        ordered = self.ordered
        return sorted(ordered.original_id(internal_id) for internal_id in internal_ids)

    # -- the three containment predicates -------------------------------------------

    def _probe_subset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        """Records whose set-value contains every query item (Algorithm 1)."""
        item_set = self._check_query(items)
        ranks = self.query_ranks(item_set)
        if ranks is None:
            return []
        return self.to_original_ids(_queries.evaluate_subset(self, ranks, ctx))

    def _probe_equality(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        """Records whose set-value equals the query set (Section 4.2)."""
        item_set = self._check_query(items)
        ranks = self.query_ranks(item_set)
        if ranks is None:
            return []
        return self.to_original_ids(_queries.evaluate_equality(self, ranks, ctx))

    def _probe_superset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        """Records whose set-value is contained in the query set (Algorithm 2)."""
        item_set = self._check_query(items)
        ranks: list[int] = []
        for item in item_set:
            rank = self.order.try_rank_of(item)
            if rank is not None:
                ranks.append(rank)
        if not ranks:
            return []
        return self.to_original_ids(
            _queries.evaluate_superset(self, tuple(sorted(ranks)), ctx)
        )

    def probe(self, leaf, ctx: "ReadContext | None" = None) -> Iterator[int]:
        """Stream one predicate leaf; single-item subset probes stay lazy.

        A single-item subset query is the item's inverted list plus its
        metadata region, which the block scan yields in physical order — so a
        ``limit`` cursor that stops after ``k`` ids never loads the remaining
        blocks' data pages.  Multi-item predicates intersect whole candidate
        sets and therefore materialize before yielding.
        """
        from repro.core.query.expr import Subset

        if isinstance(leaf, Subset) and len(leaf.items) == 1:
            rank = self.order.try_rank_of(next(iter(leaf.items)))
            if rank is None:
                return iter(())
            return self._stream_single_item_subset(rank, ctx)
        return super().probe(leaf, ctx)

    def _stream_single_item_subset(
        self, item_rank: int, ctx: "ReadContext | None" = None
    ) -> Iterator[int]:
        """Yield the item's list (and metadata region) block by block."""
        ordered = self.ordered
        roi = subset_roi((item_rank,), self.domain_size)
        for _block_key, block in self.scan_blocks(item_rank, roi, ctx=ctx):
            for internal_id in block.columns(ctx).ids:
                yield ordered.original_id(internal_id)
        if self.use_metadata:
            region = self.metadata.region_for(item_rank)
            if region is not None:
                for internal_id in range(region.lower, region.upper + 1):
                    yield ordered.original_id(internal_id)

    @staticmethod
    def _check_query(items: Iterable[Item]) -> frozenset:
        item_set = frozenset(items)
        if not item_set:
            raise QueryError("containment queries require a non-empty query set")
        return item_set

    # -- space accounting ----------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Number of posting blocks stored in the B-tree."""
        if self.build_report is None:
            raise IndexNotBuiltError("the OIF has not been built yet")
        return self.build_report.num_blocks

    @property
    def posting_bytes(self) -> int:
        """Total encoded size of the stored posting blocks (excludes B-tree overhead)."""
        if self._table is None:
            raise IndexNotBuiltError("the OIF has not been built yet")
        return sum(
            self._block_ref(value).encoded_length for _, value in self._table.cursor(b"")
        )

    def list_block_count(self, item: Item) -> int:
        """Number of blocks the item's inverted list is split into.

        Used by the space experiment and by tests.  Scanning the list charges
        logical reads as a side effect; call on a dedicated environment when
        the counters matter.
        """
        rank = self.order.try_rank_of(item)
        if rank is None:
            raise QueryError(f"item {item!r} is not in the indexed vocabulary")
        whole_list = RangeOfInterest(lower=(), upper=(self.domain_size - 1,))
        return sum(1 for _ in self.scan_blocks(rank, whole_list))
