"""Streaming, cursor-based execution of query plans.

A :class:`Cursor` lazily yields the record ids a plan produces.  Laziness is
what makes ``limit`` cheap: index probes that can stream (the OIF yields
single-item subset answers block by block) stop reading pages as soon as the
cursor is closed, instead of materializing the full result set first.

Ids are yielded in *plan order* — the order the driving probe produces them —
which for disk-backed indexes is physical (page) order, not ascending id
order.  Materializing callers (the ``*_query`` compatibility shims, the
experiment runner) sort afterwards; a cursor never yields the same id twice.

Each cursor owns a :class:`~repro.storage.stats.ReadContext` that every page
read of its traversal is charged to, so the page cost of exactly this
traversal can be read off at any point (:meth:`Cursor.io_delta`) and
aggregated into a :class:`~repro.core.interfaces.QueryResult` — exact even
when many cursors interleave on the same buffer pool, which is what lets the
service layer run queries concurrently with per-query accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.query.expr import Expr
from repro.core.query.planner import (
    FilterPlan,
    Plan,
    ProbePlan,
    ScanPlan,
    SlicePlan,
    UnionPlan,
)
from repro.errors import QueryError
from repro.storage.stats import ReadContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.interfaces import SetContainmentIndex
    from repro.storage.stats import IOSnapshot


class Cursor:
    """Lazy iterator over the record ids of one executed expression."""

    def __init__(
        self,
        index: "SetContainmentIndex",
        plan: Plan,
        expr: Expr,
        ctx: "ReadContext | None" = None,
    ) -> None:
        self.index = index
        self.plan = plan
        self.expr = expr
        #: The read context every page access of this traversal is charged to.
        self.ctx = ctx if ctx is not None else ReadContext()
        self._iterator = _run(plan, index, self.ctx)
        self._consumed = 0
        self._exhausted = False

    # -- iteration -------------------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        return self

    def __next__(self) -> int:
        try:
            record_id = next(self._iterator)
        except StopIteration:
            self._exhausted = True
            raise
        self._consumed += 1
        return record_id

    def fetch(self, count: int) -> list[int]:
        """Pull up to ``count`` more ids (fewer when the stream runs dry)."""
        if count < 0:
            raise QueryError(f"fetch count must be non-negative, got {count}")
        out: list[int] = []
        for record_id in self:
            out.append(record_id)
            if len(out) >= count:
                break
        return out

    def fetch_all(self) -> list[int]:
        """Drain the remaining ids, in plan order."""
        return list(self)

    # -- introspection ---------------------------------------------------------------

    @property
    def consumed(self) -> int:
        """Number of ids yielded so far."""
        return self._consumed

    @property
    def exhausted(self) -> bool:
        """Whether the underlying stream has run dry."""
        return self._exhausted

    def io_delta(self) -> "IOSnapshot":
        """The I/O charged to exactly this cursor's traversal so far.

        Read from the cursor's own :class:`ReadContext`, not from a diff of
        the pool-wide counters, so the number is exact even while other
        queries interleave on the same storage environment(s).
        """
        return self.ctx.snapshot()

    def explain(self) -> str:
        """The plan being executed, rendered for humans."""
        return self.plan.explain()


def _run(plan: Plan, index: "SetContainmentIndex", ctx: ReadContext) -> Iterator[int]:
    """Interpret one plan node as a generator of record ids.

    ``ctx`` is the owning cursor's read context; every operator threads it
    down so the probes (and, through them, the storage engine) charge their
    page reads to this traversal.
    """
    if isinstance(plan, ProbePlan):
        return _run_probe(plan, index, ctx)
    if isinstance(plan, FilterPlan):
        return _run_filter(plan, index, ctx)
    if isinstance(plan, UnionPlan):
        return _run_union(plan, index, ctx)
    if isinstance(plan, ScanPlan):
        return _run_scan(plan, index, ctx)
    if isinstance(plan, SlicePlan):
        return _run_slice(plan, index, ctx)
    raise QueryError(f"cannot execute plan node {plan!r}")


def _run_probe(
    plan: ProbePlan, index: "SetContainmentIndex", ctx: ReadContext
) -> Iterator[int]:
    # A generator wrapper, not `return index.probe(...)` directly: the probe
    # (which may evaluate a whole predicate eagerly) must not start until the
    # cursor is first pulled, or opening a cursor would already pay the query.
    yield from index.probe(plan.leaf, ctx)


def _run_filter(
    plan: FilterPlan, index: "SetContainmentIndex", ctx: ReadContext
) -> Iterator[int]:
    # Residual predicates evaluate against the memory-resident dataset, so
    # the filter itself charges nothing to ctx — only its source plan does.
    dataset = index.dataset
    for record_id in _run(plan.source, index, ctx):
        items = dataset.get(record_id).items
        if all(predicate.matches(items) for predicate in plan.residual):
            yield record_id


def _run_union(
    plan: UnionPlan, index: "SetContainmentIndex", ctx: ReadContext
) -> Iterator[int]:
    seen: set[int] = set()
    for source in plan.sources:
        for record_id in _run(source, index, ctx):
            if record_id not in seen:
                seen.add(record_id)
                yield record_id


def _run_scan(
    plan: ScanPlan, index: "SetContainmentIndex", ctx: ReadContext
) -> Iterator[int]:
    predicate = plan.predicate
    for record in index.dataset:
        if predicate.matches(record.items):
            yield record.record_id


def _run_slice(
    plan: SlicePlan, index: "SetContainmentIndex", ctx: ReadContext
) -> Iterator[int]:
    source = _run(plan.source, index, ctx)
    for _ in range(plan.offset):
        if next(source, None) is None:
            return
    if plan.count is None:
        yield from source
        return
    remaining = plan.count
    if remaining <= 0:
        return
    for record_id in source:
        yield record_id
        remaining -= 1
        if remaining <= 0:
            return
