"""Composable query expressions, the selectivity-aware planner and cursors.

This package is the library's query front end:

* :mod:`repro.core.query.expr` — the immutable expression AST (``Subset``,
  ``Equality``, ``Superset`` leaves; ``And``/``Or``/``Not`` combinators;
  ``limit``/``offset`` stream modifiers) with normalization and a canonical
  hashable form;
* :mod:`repro.core.query.planner` — plans expressions rarest-conjunct-first
  from the dataset's item-frequency statistics, mirroring the ``<_D``
  ordering principle of the paper one level up;
* :mod:`repro.core.query.cursor` — lazy, stats-aware execution of the plans.

Indexes expose it through :meth:`repro.core.interfaces.SetContainmentIndex.execute`::

    from repro.core.query import And, Not, Subset, Superset

    expr = And((Subset({"milk", "bread"}), Not(Superset({"milk", "bread", "eggs"}))))
    for record_id in oif.execute(expr.limit(10)):
        ...
"""

from repro.core.query.cursor import Cursor
from repro.core.query.expr import (
    And,
    Equality,
    Expr,
    Leaf,
    Limit,
    Not,
    Or,
    Subset,
    Superset,
    expr_from_dict,
    leaf_for,
    split_limit,
)
from repro.core.query.planner import (
    FilterPlan,
    Plan,
    Planner,
    ProbePlan,
    ScanPlan,
    SlicePlan,
    UnionPlan,
)

__all__ = [
    "And",
    "Cursor",
    "Equality",
    "Expr",
    "FilterPlan",
    "Leaf",
    "Limit",
    "Not",
    "Or",
    "Plan",
    "Planner",
    "ProbePlan",
    "ScanPlan",
    "SlicePlan",
    "Subset",
    "Superset",
    "UnionPlan",
    "expr_from_dict",
    "leaf_for",
    "split_limit",
]
