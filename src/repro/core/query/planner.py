"""Selectivity-aware planning of query expressions.

The planner turns a normalized :class:`~repro.core.query.expr.Expr` into a
small physical plan tree over three operators:

* :class:`ProbePlan` — answer one predicate leaf through the index;
* :class:`FilterPlan` — evaluate residual predicates in memory over the ids a
  cheaper sub-plan produced (the dataset is memory resident, so residual
  checks cost no page accesses);
* :class:`UnionPlan` / :class:`ScanPlan` / :class:`SlicePlan` — disjunction,
  the brute-force fallback for index-unfriendly shapes (e.g. pure negations),
  and limit/offset stream truncation.

Conjunct ordering follows the paper's item-ordering principle: the OIF orders
items rarest-first so that query evaluation starts from the shortest inverted
lists.  The planner applies the same idea one level up — the estimated-rarest
conjunct of an ``And`` becomes the single index probe that drives the plan,
and every other conjunct demotes to a residual in-memory filter.  Selectivity
estimates come from the dataset's item-frequency metadata (the same support
counts that define the ``<_D`` order) plus its record-length histogram.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.postings import DEFAULT_DENSE_RATIO, REPR_ARRAY, REPR_BITMAP, dense_threshold
from repro.core.query.expr import (
    And,
    Equality,
    Expr,
    Leaf,
    Limit,
    Not,
    Or,
    Subset,
    Superset,
)
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.records import Dataset


@dataclass(frozen=True)
class Plan:
    """Base class of physical plan nodes."""

    def explain(self, depth: int = 0) -> str:
        """Indented one-line-per-node rendering of the plan tree."""
        raise NotImplementedError


@dataclass(frozen=True)
class ProbePlan(Plan):
    """Answer one predicate leaf through the index's access method.

    ``reprs`` annotates each query item (sorted by name) with the posting
    representation its list decodes under — ``array`` or ``bitmap`` — and
    ``probe_cost`` carries the representation-aware CPU estimate (dense lists
    are near-free to intersect).  Both are explain-time annotations only:
    they never influence which pages the probe reads.
    """

    leaf: Leaf
    selectivity: float
    reprs: tuple[str, ...] = ()
    probe_cost: float = 0.0

    def explain(self, depth: int = 0) -> str:
        items = sorted(self.leaf.items, key=str)
        if self.reprs and len(self.reprs) == len(items):
            rendered = ",".join(
                f"{item}:{repr_tag}" for item, repr_tag in zip(items, self.reprs)
            )
        else:
            rendered = ",".join(str(item) for item in items)
        cost = f", cost={self.probe_cost:.2e}" if self.probe_cost else ""
        return (
            f"{'  ' * depth}probe {self.leaf.op}({rendered}) "
            f"[sel={self.selectivity:.2e}{cost}]"
        )


@dataclass(frozen=True)
class FilterPlan(Plan):
    """Filter a source plan's ids by residual predicates, in memory."""

    source: Plan
    residual: tuple[Expr, ...]

    def explain(self, depth: int = 0) -> str:
        lines = [f"{'  ' * depth}filter [{len(self.residual)} residual predicate(s)]"]
        lines.append(self.source.explain(depth + 1))
        return "\n".join(lines)


@dataclass(frozen=True)
class UnionPlan(Plan):
    """Deduplicated union of the ids of several sub-plans."""

    sources: tuple[Plan, ...]

    def explain(self, depth: int = 0) -> str:
        lines = [f"{'  ' * depth}union"]
        lines.extend(source.explain(depth + 1) for source in self.sources)
        return "\n".join(lines)


@dataclass(frozen=True)
class ScanPlan(Plan):
    """Full scan of the memory-resident dataset, filtered by the expression.

    The fallback for shapes no index probe can drive, e.g. a pure negation.
    """

    predicate: Expr

    def explain(self, depth: int = 0) -> str:
        return f"{'  ' * depth}scan [predicate={self.predicate.canonical_key()!r}]"


@dataclass(frozen=True)
class SlicePlan(Plan):
    """Skip ``offset`` ids of the source stream, then stop after ``count``."""

    source: Plan
    count: "int | None"
    offset: int

    def explain(self, depth: int = 0) -> str:
        lines = [f"{'  ' * depth}slice [offset={self.offset}, count={self.count}]"]
        lines.append(self.source.explain(depth + 1))
        return "\n".join(lines)


class Planner:
    """Plans normalized expressions using one dataset's frequency statistics.

    Parameters
    ----------
    dataset:
        Supplies the item supports and record-length histogram the estimates
        are computed from.
    rarest_first:
        The paper's ordering principle: drive each conjunction with its
        estimated-rarest predicate.  Disable (the ablation knob the planner
        tests use) to drive with the *most frequent* one instead, which can
        only read more pages.
    dense_ratio / hybrid:
        Mirror the owning index's posting-representation config so plans can
        annotate each item with the representation its list decodes under and
        cost intersections accordingly (dense lists are near-free).  The
        annotations never steer the driver choice: the driver determines
        which pages are read, and page counts must stay bit-identical between
        the array-only and hybrid configurations — representation only
        changes decode shape and CPU, never I/O.
    """

    def __init__(
        self,
        dataset: "Dataset",
        rarest_first: bool = True,
        *,
        dense_ratio: float = DEFAULT_DENSE_RATIO,
        hybrid: bool = True,
    ) -> None:
        self.dataset = dataset
        self.rarest_first = rarest_first
        self.dense_ratio = dense_ratio
        self.hybrid = hybrid
        self._num_records = len(dataset)
        vocabulary = dataset.vocabulary
        self._supports = {item: vocabulary.support(item) for item in vocabulary}
        self._dense_support = dense_threshold(max(1, self._num_records), dense_ratio)
        self._length_counts = Counter(record.length for record in dataset)
        self._total_postings = sum(
            length * count for length, count in self._length_counts.items()
        )

    # -- selectivity estimation ------------------------------------------------------

    def selectivity(self, expr: Expr) -> float:
        """Estimated fraction of records matching ``expr`` (clamped to [0, 1])."""
        return min(1.0, max(0.0, self._estimate(expr)))

    def _item_frequency(self, item) -> float:
        return self._supports.get(item, 0) / self._num_records

    def _estimate(self, expr: Expr) -> float:
        if isinstance(expr, Subset):
            # Independence assumption: each required item filters by its
            # frequency, so rare items make the whole conjunct rare.
            product = 1.0
            for item in expr.items:
                product *= self._item_frequency(item)
            return product
        if isinstance(expr, Equality):
            # Equality is the subset predicate restricted to records of the
            # query's exact cardinality.
            length_fraction = self._length_counts.get(len(expr.items), 0) / self._num_records
            return self._estimate(Subset(expr.items)) * length_fraction
        if isinstance(expr, Superset):
            # A record of length L is inside the query set when all of its L
            # items are; approximate the per-item probability by the query
            # items' share of all postings.
            covered = sum(self._supports.get(item, 0) for item in expr.items)
            per_item = covered / self._total_postings if self._total_postings else 0.0
            return sum(
                (per_item**length) * count / self._num_records
                for length, count in self._length_counts.items()
            )
        if isinstance(expr, And):
            product = 1.0
            for child in expr.children():
                product *= self._estimate(child)
            return product
        if isinstance(expr, Or):
            miss = 1.0
            for child in expr.children():
                miss *= 1.0 - min(1.0, self._estimate(child))
            return 1.0 - miss
        if isinstance(expr, Not):
            return 1.0 - min(1.0, self._estimate(expr.operand))
        if isinstance(expr, Limit):
            return self._estimate(expr.operand)
        raise QueryError(f"cannot estimate selectivity of {expr!r}")

    # -- posting-representation awareness ----------------------------------------------

    def representation_of(self, item) -> str:
        """The posting representation ``item``'s list decodes under."""
        if not self.hybrid:
            return REPR_ARRAY
        support = self._supports.get(item, 0)
        return REPR_BITMAP if support >= self._dense_support else REPR_ARRAY

    def probe_cost(self, leaf: Leaf) -> float:
        """Representation-aware CPU estimate for one probe, in posting touches.

        The rarest item seeds the candidate set (one touch per posting);
        every further item then costs a galloping-merge touch per surviving
        candidate when its list decodes as an array, but a near-free O(1)
        bitmap probe — weighted at 1/32 of a merge touch, one word operation
        against ``log``-deep bisects — when it is dense.  This is where the
        cost model knows dense lists are near-free to intersect.

        Annotation only: the driver choice in :meth:`_plan_and` stays purely
        selectivity-based, because the driver determines which pages are
        read and page counts must not differ between the array-only and
        hybrid configurations.
        """
        supports = sorted(
            (self._supports.get(item, 0), self.representation_of(item))
            for item in leaf.items
        )
        if not supports:
            return 0.0
        driver_support, _ = supports[0]
        cost = float(driver_support)
        candidates = float(driver_support)
        for support, repr_tag in supports[1:]:
            if repr_tag == REPR_BITMAP:
                cost += candidates / 32.0
            else:
                cost += min(candidates, support) * math.log2(max(2, support))
            candidates *= self._item_frequency_from_support(support)
        return cost

    def _item_frequency_from_support(self, support: int) -> float:
        return support / self._num_records if self._num_records else 0.0

    def _leaf_reprs(self, leaf: Leaf) -> tuple[str, ...]:
        """Representation tags of the leaf's items, sorted by item name."""
        return tuple(
            self.representation_of(item) for item in sorted(leaf.items, key=str)
        )

    # -- planning --------------------------------------------------------------------

    def plan(self, expr: Expr) -> Plan:
        """Build the physical plan for ``expr`` (normalizing it first)."""
        expr = expr.normalize()
        if isinstance(expr, Limit):
            return SlicePlan(
                self._plan_inner(expr.operand), count=expr.count, offset=expr.offset
            )
        return self._plan_inner(expr)

    def _probe(self, leaf: Leaf) -> ProbePlan:
        return ProbePlan(
            leaf,
            self.selectivity(leaf),
            reprs=self._leaf_reprs(leaf),
            probe_cost=self.probe_cost(leaf),
        )

    def _plan_inner(self, expr: Expr) -> Plan:
        if isinstance(expr, Leaf):
            return self._probe(expr)
        if isinstance(expr, Or):
            # Cheapest branches first, so a limited cursor drains the most
            # selective probes before touching the expensive ones.
            branches = sorted(expr.children(), key=self.selectivity)
            return UnionPlan(tuple(self._plan_inner(child) for child in branches))
        if isinstance(expr, And):
            return self._plan_and(expr)
        if isinstance(expr, Not):
            return ScanPlan(expr)
        raise QueryError(f"cannot plan {expr!r}")

    def _plan_and(self, expr: And) -> Plan:
        """Drive a conjunction with one index probe, demote the rest to filters.

        Only positive leaves can drive (a negation or a disjunction does not
        narrow to an index probe); with ``rarest_first`` the driver is the
        leaf with the *lowest* estimated selectivity — the one whose inverted
        list touches the fewest pages, per the paper's rarest-item-first
        ordering — otherwise the highest.
        """
        drivers = [child for child in expr.children() if isinstance(child, Leaf)]
        if not drivers:
            # No positive leaf: a disjunction can still drive (as a union of
            # probes); an all-negative conjunction degrades to a scan.
            unions = [child for child in expr.children() if isinstance(child, Or)]
            if not unions:
                return ScanPlan(expr)
            driver = min(unions, key=self.selectivity)
            residual = tuple(child for child in expr.children() if child is not driver)
            return FilterPlan(self._plan_inner(driver), residual)
        # Selectivity, never probe_cost, picks the driver: the driver decides
        # which pages are read, and page counts must stay bit-identical
        # between the array-only and hybrid posting representations.
        choose = min if self.rarest_first else max
        driver = choose(drivers, key=self.selectivity)
        residual = tuple(child for child in expr.children() if child is not driver)
        probe = self._probe(driver)
        if not residual:
            return probe
        return FilterPlan(probe, residual)
