"""Immutable query-expression algebra over the three containment predicates.

The paper defines three per-record predicates — subset, equality, superset
(Section 2) — which this module lifts into a small composable algebra:

* **leaves** :class:`Subset`, :class:`Equality`, :class:`Superset` test one
  record's set-value against a query item set;
* **combinators** :class:`And`, :class:`Or`, :class:`Not` build boolean
  expressions over the leaves;
* the **modifier** :class:`Limit` (built with :meth:`Expr.limit` /
  :meth:`Expr.offset`) truncates the result stream; it is only legal at the
  top of an expression because it is not a per-record predicate.

Every node is a frozen dataclass, so expressions are hashable values.
:meth:`Expr.normalize` rewrites an expression into a canonical shape —
nested ``And``/``Or`` chains are flattened, duplicate children dropped,
``Not`` pushed inward via De Morgan until it sits on a leaf, double negation
eliminated, stacked limits composed, and children sorted deterministically —
so two equivalent-by-construction expressions compare (and hash) equal.  The
normalized expression therefore *is* the canonical form: the service layer
keys its result cache and in-flight dedup map on it, and
:meth:`Expr.canonical_key` renders the same identity as plain nested tuples
for logging and tests.

Expressions also serialize to/from the JSON wire format of the query service
(:meth:`Expr.to_dict` / :func:`expr_from_dict`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Iterator

from repro.core.items import Item
from repro.errors import QueryError

__all__ = [
    "Expr",
    "Leaf",
    "Subset",
    "Equality",
    "Superset",
    "And",
    "Or",
    "Not",
    "Limit",
    "expr_from_dict",
    "leaf_for",
    "slice_ids",
    "split_limit",
]


def _item_sort_token(item: Item) -> tuple[str, str]:
    """Deterministic sort key for items of heterogeneous hashable types."""
    return (type(item).__name__, str(item))


def sorted_items(items: Iterable[Item]) -> tuple[Item, ...]:
    """Items as a deterministically ordered tuple (canonical rendering)."""
    return tuple(sorted(items, key=_item_sort_token))


@dataclass(frozen=True)
class Expr:
    """Base class of all query-expression nodes."""

    # -- composition sugar -----------------------------------------------------------

    def __and__(self, other: "Expr") -> "And":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)

    def limit(self, count: int, offset: int = 0) -> "Limit":
        """Truncate the result stream to ``count`` ids after skipping ``offset``."""
        return Limit(self, count=count, offset=offset)

    def offset(self, count: int) -> "Limit":
        """Skip the first ``count`` result ids (no upper bound)."""
        return Limit(self, count=None, offset=count)

    # -- semantics -------------------------------------------------------------------

    def matches(self, record_items: frozenset) -> bool:
        """Evaluate the expression against one record's set-value.

        This is the brute-force per-record semantics every plan must agree
        with; residual filters and the naive fallback use it directly.
        """
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions (empty for leaves)."""
        return ()

    def iter_leaves(self) -> Iterator["Leaf"]:
        """All predicate leaves, in syntactic order."""
        for child in self.children():
            yield from child.iter_leaves()

    def referenced_items(self) -> frozenset:
        """Union of every leaf's query items (used for size-grouped reports)."""
        out: set = set()
        for leaf in self.iter_leaves():
            out |= leaf.items
        return frozenset(out)

    # -- canonical form --------------------------------------------------------------

    def normalize(self) -> "Expr":
        """Rewrite into the canonical shape (idempotent).

        The result is memoized on the returned node, so the layers that each
        defensively normalize (request coercion, ``execute``, the planner)
        pay for the rewrite only once per expression.
        """
        if getattr(self, "_is_normalized", False):
            return self
        result = self._normalize()
        object.__setattr__(result, "_is_normalized", True)
        return result

    def _normalize(self) -> "Expr":
        return self

    def canonical_key(self) -> tuple:
        """The normalized expression rendered as plain nested tuples."""
        return self.normalize()._key()

    def _key(self) -> tuple:
        raise NotImplementedError

    # -- wire format -----------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly rendering, inverse of :func:`expr_from_dict`."""
        raise NotImplementedError


@dataclass(frozen=True)
class Leaf(Expr):
    """A containment predicate over one query item set."""

    items: frozenset = field(default_factory=frozenset)

    #: Wire name of the predicate ("subset" / "equality" / "superset").
    op: ClassVar[str] = ""

    def __post_init__(self) -> None:
        if not isinstance(self.items, frozenset):
            object.__setattr__(self, "items", frozenset(self.items))
        if not self.items:
            raise QueryError("containment queries require a non-empty query set")

    def iter_leaves(self) -> Iterator["Leaf"]:
        yield self

    def referenced_items(self) -> frozenset:
        return self.items

    def _key(self) -> tuple:
        return (self.op, sorted_items(self.items))

    def to_dict(self) -> dict:
        return {"op": self.op, "items": list(sorted_items(self.items))}


@dataclass(frozen=True)
class Subset(Leaf):
    """Records ``t`` with ``items ⊆ t.s`` (the paper's subset query)."""

    op = "subset"

    def matches(self, record_items: frozenset) -> bool:
        return self.items <= record_items


@dataclass(frozen=True)
class Equality(Leaf):
    """Records ``t`` with ``t.s = items``."""

    op = "equality"

    def matches(self, record_items: frozenset) -> bool:
        return self.items == record_items


@dataclass(frozen=True)
class Superset(Leaf):
    """Records ``t`` with ``t.s ⊆ items`` (the paper's superset query)."""

    op = "superset"

    def matches(self, record_items: frozenset) -> bool:
        return record_items <= self.items


def _coerce_children(children: Iterable[Expr], op: str) -> tuple[Expr, ...]:
    out = tuple(children)
    if not out:
        raise QueryError(f"{op} needs at least one operand")
    for child in out:
        if not isinstance(child, Expr):
            raise QueryError(f"{op} operands must be expressions, got {child!r}")
        if isinstance(child, Limit):
            raise QueryError("limit/offset is only allowed at the top of an expression")
    return out


@dataclass(frozen=True)
class And(Expr):
    """Conjunction: a record matches when every operand matches."""

    operands: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", _coerce_children(self.operands, "And"))

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def matches(self, record_items: frozenset) -> bool:
        return all(child.matches(record_items) for child in self.operands)

    def _normalize(self) -> Expr:
        return _normalize_nary(And, self.operands)

    def _key(self) -> tuple:
        return ("and", tuple(child._key() for child in self.operands))

    def to_dict(self) -> dict:
        return {"op": "and", "args": [child.to_dict() for child in self.operands]}


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction: a record matches when any operand matches."""

    operands: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", _coerce_children(self.operands, "Or"))

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def matches(self, record_items: frozenset) -> bool:
        return any(child.matches(record_items) for child in self.operands)

    def _normalize(self) -> Expr:
        return _normalize_nary(Or, self.operands)

    def _key(self) -> tuple:
        return ("or", tuple(child._key() for child in self.operands))

    def to_dict(self) -> dict:
        return {"op": "or", "args": [child.to_dict() for child in self.operands]}


@dataclass(frozen=True)
class Not(Expr):
    """Negation: a record matches when the operand does not."""

    operand: Expr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not isinstance(self.operand, Expr):
            raise QueryError(f"Not needs an expression operand, got {self.operand!r}")
        if isinstance(self.operand, Limit):
            raise QueryError("limit/offset is only allowed at the top of an expression")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def matches(self, record_items: frozenset) -> bool:
        return not self.operand.matches(record_items)

    def _normalize(self) -> Expr:
        inner = self.operand
        if isinstance(inner, Not):  # double negation
            return inner.operand.normalize()
        if isinstance(inner, And):  # De Morgan: push the negation inward
            return Or(tuple(Not(child) for child in inner.operands)).normalize()
        if isinstance(inner, Or):
            return And(tuple(Not(child) for child in inner.operands)).normalize()
        return Not(inner.normalize())

    def _key(self) -> tuple:
        return ("not", self.operand._key())

    def to_dict(self) -> dict:
        return {"op": "not", "arg": self.operand.to_dict()}


@dataclass(frozen=True)
class Limit(Expr):
    """Result-stream truncation: skip ``offset`` ids, then yield at most ``count``.

    Only legal as the outermost node: limits select a prefix of the *result
    stream*, so they compose with each other but not with the boolean algebra
    underneath.
    """

    operand: Expr = None  # type: ignore[assignment]
    count: "int | None" = None
    offset: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.operand, Expr):
            raise QueryError(f"limit needs an expression operand, got {self.operand!r}")
        if self.count is not None and (not isinstance(self.count, int) or self.count < 0):
            raise QueryError(f"limit count must be a non-negative int, got {self.count!r}")
        if not isinstance(self.offset, int) or self.offset < 0:
            raise QueryError(f"offset must be a non-negative int, got {self.offset!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def matches(self, record_items: frozenset) -> bool:
        # Per-record semantics ignore stream truncation; invalidation logic
        # relies on this (a record outside the inner predicate can never
        # enter the limited result either).
        return self.operand.matches(record_items)

    def _normalize(self) -> Expr:
        inner = self.operand.normalize()
        count, offset = self.count, self.offset
        if isinstance(inner, Limit):
            # Stacked limits compose: the outer one slices the inner stream.
            inner_count, inner_offset = inner.count, inner.offset
            new_offset = inner_offset + offset
            remaining = None if inner_count is None else max(inner_count - offset, 0)
            count = remaining if count is None else (
                count if remaining is None else min(count, remaining)
            )
            inner, offset = inner.operand, new_offset
        if count is None and offset == 0:
            return inner
        return Limit(inner, count=count, offset=offset)

    def _key(self) -> tuple:
        return ("limit", self.operand._key(), self.count, self.offset)

    def to_dict(self) -> dict:
        out: dict = {"op": "limit", "arg": self.operand.to_dict(), "offset": self.offset}
        if self.count is not None:
            out["count"] = self.count
        return out


def _normalize_nary(node_type: type, operands: tuple[Expr, ...]) -> Expr:
    """Shared And/Or normalization: flatten, dedupe, sort, collapse singletons."""
    flat: list[Expr] = []
    for child in operands:
        normalized = child.normalize()
        if isinstance(normalized, node_type):
            flat.extend(normalized.children())
        else:
            flat.append(normalized)
    unique: dict[tuple, Expr] = {}
    for child in flat:
        unique.setdefault(child._key(), child)
    ordered = [unique[key] for key in sorted(unique, key=repr)]
    if len(ordered) == 1:
        return ordered[0]
    return node_type(tuple(ordered))


def split_limit(expr: Expr) -> "tuple[Expr, int | None, int]":
    """Normalize ``expr`` and peel a top-level limit off it.

    Returns ``(inner, count, offset)`` with ``count=None, offset=0`` when the
    expression carries no limit.  Every layer that applies stream truncation
    *after* its own merge step (delta-aware evaluation, shard fan-out) uses
    this instead of re-implementing the unwrap.
    """
    normalized = expr.normalize()
    if isinstance(normalized, Limit):
        return normalized.operand, normalized.count, normalized.offset
    return normalized, None, 0


def slice_ids(ids: list, count: "int | None", offset: int) -> list:
    """Apply a peeled ``(count, offset)`` pair to a materialized id list.

    The companion of :func:`split_limit` for layers that slice *after* their
    own merge step, so the limit-after-merge arithmetic exists exactly once.
    """
    if count is None and offset == 0:
        return ids
    upper = None if count is None else offset + count
    return ids[offset:upper]


_LEAF_TYPES = {"subset": Subset, "equality": Equality, "superset": Superset}


def leaf_for(predicate: str, items: Iterable[Item]) -> Leaf:
    """Build the leaf for one of the paper's predicates by wire name."""
    try:
        leaf_type = _LEAF_TYPES[str(predicate).lower()]
    except KeyError:
        raise QueryError(
            f"unknown query type {predicate!r}; expected one of {sorted(_LEAF_TYPES)}"
        ) from None
    return leaf_type(frozenset(items))


def expr_from_dict(payload: object) -> Expr:
    """Parse the JSON wire format back into an expression tree."""
    if not isinstance(payload, dict):
        raise QueryError(f"an expression must be a JSON object, got {payload!r}")
    op = payload.get("op")
    if not isinstance(op, str):
        raise QueryError("an expression object needs a string 'op'")
    op = op.lower()
    if op in _LEAF_TYPES:
        items = payload.get("items")
        if not isinstance(items, (list, tuple)) or not items:
            raise QueryError(f"{op!r} needs a non-empty 'items' list")
        return _LEAF_TYPES[op](frozenset(items))
    if op in ("and", "or"):
        args = payload.get("args")
        if not isinstance(args, list) or not args:
            raise QueryError(f"{op!r} needs a non-empty 'args' list")
        operands = tuple(expr_from_dict(arg) for arg in args)
        return And(operands) if op == "and" else Or(operands)
    if op == "not":
        return Not(expr_from_dict(payload.get("arg")))
    if op == "limit":
        count = payload.get("count")
        offset = payload.get("offset", 0)
        return Limit(expr_from_dict(payload.get("arg")), count=count, offset=offset)
    raise QueryError(f"unknown expression op {op!r}")
