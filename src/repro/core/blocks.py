"""Posting blocks and their B-tree keys.

The OIF splits every inverted list into blocks.  Each block becomes one entry
in a single shared B-tree; its key is the triple

    (item, tag, last record id)

where the *tag* is the sequence form of the last record referenced in the
block (Section 3, "Tagging for inverted lists").  The item acts as a prefix so
that all blocks of one list are consecutive B-tree entries; the tag drives the
Range-of-Interest pruning; the record id makes the key unique and supports the
candidate-range narrowing during merge joins.

Key encoding: ``encode_rank(item_rank) + encode_tag(tag) + encode_rank(last_id)``.
All three components are order-preserving under plain byte comparison (see
:mod:`repro.core.sequence`), so byte order of the keys equals the logical
block order.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.compression import vbyte
from repro.compression.postings import Posting, PostingBlockCodec
from repro.core.sequence import (
    SequenceForm,
    decode_rank,
    decode_tag,
    encode_rank,
    encode_tag,
)
from repro.errors import IndexBuildError


@dataclass(frozen=True)
class BlockKey:
    """Decoded form of an OIF B-tree key."""

    item_rank: int
    tag: SequenceForm
    last_id: int

    def encode(self) -> bytes:
        """Serialize to the order-preserving byte representation."""
        return encode_rank(self.item_rank) + encode_tag(self.tag) + encode_rank(self.last_id)

    @classmethod
    def decode(cls, data: bytes) -> "BlockKey":
        """Parse a key produced by :meth:`encode`.

        The key layout pins the tag between the two fixed-width ranks, so the
        whole tag (including its terminator) is ``data[4:-4]`` and parses
        with one bulk ``struct.unpack`` instead of one call per tag element —
        this runs once per scanned block key, squarely on the query hot path.
        """
        tag_bytes = data[4:-4]
        count = len(tag_bytes) >> 2
        values = (
            struct.unpack(f">{count}I", tag_bytes)
            if len(tag_bytes) == count << 2 and count
            else (1,)
        )
        if values[-1] != 0:
            # Not a self-terminated tag (foreign or corrupt key): fall back to
            # the element-wise parser, which raises the precise error.
            item_rank = decode_rank(data, 0)
            tag, offset = decode_tag(data, 4)
            return cls(item_rank=item_rank, tag=tag, last_id=decode_rank(data, offset))
        tag = tuple(value - 1 for value in values[:-1])
        return cls(
            item_rank=decode_rank(data, 0), tag=tag, last_id=decode_rank(data, len(data) - 4)
        )


def item_prefix(item_rank: int) -> bytes:
    """Key prefix shared by every block of one item's inverted list."""
    return encode_rank(item_rank)


def search_key(item_rank: int, tag: SequenceForm, last_id: int = 0) -> bytes:
    """Build a seek key for "first block of ``item_rank`` with tag >= ``tag``".

    Using ``last_id = 0`` guarantees the key sorts before any real block with
    the same tag (real internal ids start at 1).
    """
    return encode_rank(item_rank) + encode_tag(tag) + encode_rank(last_id)


@dataclass
class PostingBlock:
    """One block of an inverted list: its postings plus the derived key parts."""

    item_rank: int
    postings: list[Posting]
    tag: SequenceForm

    def __post_init__(self) -> None:
        if not self.postings:
            raise IndexBuildError("a posting block cannot be empty")

    @property
    def last_id(self) -> int:
        """Internal id of the last record referenced in the block."""
        return self.postings[-1].record_id

    @property
    def first_id(self) -> int:
        """Internal id of the first record referenced in the block."""
        return self.postings[0].record_id

    def key(self) -> BlockKey:
        """The B-tree key of this block."""
        return BlockKey(item_rank=self.item_rank, tag=self.tag, last_id=self.last_id)


class BlockWriter:
    """Splits one item's posting stream into size-bounded blocks.

    Blocks close when they reach ``block_capacity`` postings or when their
    encoded size would exceed ``max_block_bytes`` — whichever comes first.  The
    byte bound keeps every block (plus its key) within one B-tree page.
    """

    def __init__(
        self,
        item_rank: int,
        codec: PostingBlockCodec,
        tag_for: "TagLookup",
        block_capacity: int = 128,
        max_block_bytes: int = 1024,
        tag_prefix: int | None = None,
    ) -> None:
        if block_capacity <= 0:
            raise IndexBuildError(f"block capacity must be positive, got {block_capacity}")
        if max_block_bytes <= 0:
            raise IndexBuildError(f"max block bytes must be positive, got {max_block_bytes}")
        self.item_rank = item_rank
        self.codec = codec
        self.tag_for = tag_for
        self.block_capacity = block_capacity
        self.max_block_bytes = max_block_bytes
        self.tag_prefix = tag_prefix
        self._pending: list[Posting] = []
        self._pending_bytes = 0
        self._previous_id = 0

    def _posting_size(self, posting: Posting) -> int:
        """Incremental encoded-size estimate of appending ``posting``.

        Matches the codec's layout (d-gap + length, both v-byte); the block's
        leading count varint is covered by a small constant margin.
        """
        if self.codec.compress and self._pending:
            id_bytes = vbyte.encoded_size(posting.record_id - self._previous_id)
        else:
            id_bytes = vbyte.encoded_size(posting.record_id)
        return id_bytes + vbyte.encoded_size(posting.length)

    def add(self, posting: Posting) -> PostingBlock | None:
        """Append a posting; returns a finished block when one closes."""
        extra = self._posting_size(posting)
        if self._pending and self._pending_bytes + extra + 4 > self.max_block_bytes:
            # The newest posting would overflow the byte budget: emit everything
            # before it and start the next block with it.
            block = self._close()
            self._pending.append(posting)
            self._pending_bytes = self._posting_size(posting)
            self._previous_id = posting.record_id
            return block
        self._pending.append(posting)
        self._pending_bytes += extra
        self._previous_id = posting.record_id
        if len(self._pending) >= self.block_capacity:
            return self._close()
        return None

    def finish(self) -> PostingBlock | None:
        """Close and return the trailing partial block, if any."""
        if not self._pending:
            return None
        return self._close()

    def _close(self) -> PostingBlock:
        postings = self._pending
        self._pending = []
        self._pending_bytes = 0
        self._previous_id = 0
        tag = self.tag_for(postings[-1].record_id)
        if self.tag_prefix is not None:
            tag = tag[: self.tag_prefix]
        return PostingBlock(item_rank=self.item_rank, postings=postings, tag=tag)


class TagLookup:
    """Callable returning the sequence form (tag) for an internal record id."""

    def __init__(self, sequence_forms: Sequence[SequenceForm]) -> None:
        self._sequence_forms = sequence_forms

    def __call__(self, internal_id: int) -> SequenceForm:
        return self._sequence_forms[internal_id - 1]


def encode_block(block: PostingBlock, codec: PostingBlockCodec) -> tuple[bytes, bytes]:
    """Return the ``(key, value)`` pair to store for ``block``."""
    return block.key().encode(), codec.encode(block.postings)


def decode_block_entry(
    key: bytes, value: bytes, codec: PostingBlockCodec
) -> tuple[BlockKey, list[Posting]]:
    """Inverse of :func:`encode_block` for entries read back from the B-tree."""
    return BlockKey.decode(key), codec.decode_columns(value).postings()


def iter_list_blocks(
    cursor: Iterator[tuple[bytes, bytes]],
    item_rank: int,
    codec: PostingBlockCodec,
) -> Iterator[tuple[BlockKey, list[Posting]]]:
    """Yield decoded blocks from ``cursor`` while they still belong to ``item_rank``.

    Blocks are batch-decoded (:meth:`PostingBlockCodec.decode_columns`); the
    materialized ``list[Posting]`` form is kept for the callers' benefit.
    """
    for key, value in cursor:
        block_key = BlockKey.decode(key)
        if block_key.item_rank != item_rank:
            return
        yield block_key, codec.decode_columns(value).postings()
