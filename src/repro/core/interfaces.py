"""Public interface shared by every set-containment index in the library.

The paper compares several access methods (the OIF, the classic inverted
file, an unordered B-tree variant, and — in related work — signature files).
All of them answer the same three predicates, so they implement one abstract
base class, :class:`SetContainmentIndex`, and the experiment runner treats
them interchangeably.

Since the query-expression redesign, the single entry point is
:meth:`SetContainmentIndex.execute`: it accepts any
:class:`~repro.core.query.expr.Expr` (leaves, ``And``/``Or``/``Not``
combinations, ``limit``/``offset`` modifiers), plans it rarest-conjunct-first
with the dataset's item-frequency statistics and returns a streaming
:class:`~repro.core.query.cursor.Cursor`.  Subclasses implement only the
three per-predicate probe primitives (``_probe_subset`` /
``_probe_equality`` / ``_probe_superset``); the historical ``subset_query`` /
``equality_query`` / ``superset_query`` / ``query`` / ``measured_query``
methods remain as thin compatibility shims over ``execute``.
"""

from __future__ import annotations

import enum
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.items import Item
from repro.core.query.cursor import Cursor
from repro.core.query.expr import (
    Equality,
    Expr,
    Leaf,
    Subset,
    Superset,
    leaf_for,
)
from repro.core.query.planner import Planner
from repro.core.records import Dataset
from repro.errors import QueryError
from repro.obs import trace
from repro.storage.kvstore import Environment
from repro.storage.stats import IOSnapshot, IOStatistics, ReadContext


class QueryType(enum.Enum):
    """The three containment predicates of Section 2."""

    SUBSET = "subset"
    EQUALITY = "equality"
    SUPERSET = "superset"

    @classmethod
    def parse(cls, value: "QueryType | str") -> "QueryType":
        """Accept either an enum member or its string name/value."""
        if isinstance(value, cls):
            return value
        if not isinstance(value, str):
            raise QueryError(
                f"unknown query type {value!r}; expected one of "
                f"{[member.value for member in cls]}"
            )
        try:
            return cls(value.lower())
        except ValueError:
            raise QueryError(
                f"unknown query type {value!r}; expected one of "
                f"{[member.value for member in cls]}"
            ) from None

    def leaf(self, items: Iterable[Item]) -> Leaf:
        """The expression leaf evaluating this predicate over ``items``."""
        return leaf_for(self.value, items)


@dataclass(frozen=True)
class QueryResult:
    """Answer of one query expression plus the I/O it caused.

    ``query_type`` is the predicate for single-leaf expressions and ``None``
    for composite ones; ``query_items`` is the union of all items the
    expression references (what the figures group by).
    """

    query_type: "QueryType | None"
    query_items: frozenset
    record_ids: tuple[int, ...]
    page_accesses: int
    random_reads: int
    sequential_reads: int
    io_time_ms: float
    cpu_time_ms: float
    expr: "Expr | None" = None
    #: Decoded-block cache lookups of this traversal (CPU-side counters; a
    #: hit skips the v-byte decode but still pays its page access).
    decoded_hits: int = 0
    decoded_misses: int = 0

    @property
    def cardinality(self) -> int:
        """Number of matching records."""
        return len(self.record_ids)

    @property
    def total_time_ms(self) -> float:
        """Simulated I/O time plus measured CPU time."""
        return self.io_time_ms + self.cpu_time_ms


class SetContainmentIndex(ABC):
    """Abstract base class for indexes answering containment queries.

    Subclasses implement the three ``_probe_*`` primitives, returning record
    ids of the *source dataset* (never internal ids) as a sorted list; an
    access method with a cheaper streaming path may additionally override
    :meth:`probe` to yield ids lazily (the OIF streams single-item subset
    probes block by block, which is what makes ``limit`` stop early).
    """

    #: Human-readable name used in experiment reports ("IF", "OIF", ...).
    name: str = "index"

    def __init__(self, dataset: Dataset, env: Environment) -> None:
        self.dataset = dataset
        self.env = env
        self._planner: "Planner | None" = None

    # -- probe primitives (implemented by each access method) ------------------------

    @abstractmethod
    def _probe_subset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        """Records ``t`` with ``items ⊆ t.s``; page reads charged to ``ctx``."""

    @abstractmethod
    def _probe_equality(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        """Records ``t`` with ``items = t.s``; page reads charged to ``ctx``."""

    @abstractmethod
    def _probe_superset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        """Records ``t`` with ``t.s ⊆ items``; page reads charged to ``ctx``."""

    def probe(self, leaf: Leaf, ctx: "ReadContext | None" = None) -> Iterator[int]:
        """Stream the record ids answering one predicate leaf.

        ``ctx`` is the read context of the traversal this probe belongs to
        (the owning cursor's); every page access the probe causes is charged
        to it in addition to the pool-wide totals.
        """
        if isinstance(leaf, Subset):
            return iter(self._probe_subset(leaf.items, ctx))
        if isinstance(leaf, Equality):
            return iter(self._probe_equality(leaf.items, ctx))
        if isinstance(leaf, Superset):
            return iter(self._probe_superset(leaf.items, ctx))
        raise QueryError(f"cannot probe non-leaf expression {leaf!r}")

    # -- the expression API ----------------------------------------------------------

    @property
    def planner(self) -> Planner:
        """The selectivity-aware planner over this index's dataset statistics.

        Indexes with an adaptive posting-representation config (``posting_repr``
        / ``dense_ratio``) pass it through so plans annotate each item with the
        representation its list decodes under.
        """
        if self._planner is None:
            from repro.core.postings import DEFAULT_DENSE_RATIO

            self._planner = Planner(
                self.dataset,
                dense_ratio=getattr(self, "dense_ratio", DEFAULT_DENSE_RATIO),
                hybrid=getattr(self, "posting_repr", "auto") != "array",
            )
        return self._planner

    def execute(
        self,
        expr: Expr,
        planner: "Planner | None" = None,
        ctx: "ReadContext | None" = None,
    ) -> Cursor:
        """Plan ``expr`` and return a streaming cursor over its record ids.

        The cursor yields ids lazily in plan order; pass a custom ``planner``
        to override the default rarest-conjunct-first strategy.  ``ctx``
        seeds the cursor's read context (a fresh one is created when
        omitted), so callers can pre-own the accounting of a traversal.
        """
        if not isinstance(expr, Expr):
            raise QueryError(f"execute() needs a query expression, got {expr!r}")
        normalized = expr.normalize()
        with trace.span("plan"):
            plan = (planner or self.planner).plan(normalized)
        return Cursor(self, plan, normalized, ctx=ctx)

    def evaluate(self, expr: Expr) -> list[int]:
        """Answer ``expr`` fully materialized, as an ascending id list."""
        return sorted(self.execute(expr))

    def explain(self, expr: Expr, planner: "Planner | None" = None) -> str:
        """Render the physical plan for ``expr`` without executing it.

        Unlike ``execute(expr).explain()``, no cursor is opened, so the
        buffer pool stays untouched; composite access methods (sharding)
        override this to render their fan-out structure.
        """
        return (planner or self.planner).plan(expr.normalize()).explain()

    def measured_execute(
        self, expr: Expr, planner: "Planner | None" = None
    ) -> QueryResult:
        """Run an expression and package the answer together with its cost.

        The cost is read from the cursor's own read context, so it is exact
        for this query even when other queries interleave on the same
        storage environment.  The buffer pool is *not* dropped here; the
        experiment runner decides the caching regime (the paper keeps a
        minimal cache across queries).
        """
        cursor = self.execute(expr, planner=planner)
        start = time.perf_counter()
        with trace.span("fetch", index=self.name):
            record_ids = tuple(sorted(cursor.fetch_all()))
        cpu_seconds = time.perf_counter() - start
        delta = cursor.io_delta()
        normalized = cursor.expr
        leaf = normalized if isinstance(normalized, Leaf) else None
        return QueryResult(
            query_type=QueryType(leaf.op) if leaf else None,
            query_items=normalized.referenced_items(),
            record_ids=record_ids,
            page_accesses=delta.page_reads,
            random_reads=delta.random_reads,
            sequential_reads=delta.sequential_reads,
            io_time_ms=delta.io_time_ms(self.stats.disk_model),
            cpu_time_ms=cpu_seconds * 1000.0,
            expr=normalized,
            decoded_hits=delta.decoded_hits,
            decoded_misses=delta.decoded_misses,
        )

    # -- compatibility shims over the expression API ---------------------------------

    def subset_query(self, items: Iterable[Item]) -> list[int]:
        """Records ``t`` with ``qs ⊆ t.s``."""
        return self.evaluate(Subset(frozenset(items)))

    def equality_query(self, items: Iterable[Item]) -> list[int]:
        """Records ``t`` with ``qs = t.s``."""
        return self.evaluate(Equality(frozenset(items)))

    def superset_query(self, items: Iterable[Item]) -> list[int]:
        """Records ``t`` with ``t.s ⊆ qs``."""
        return self.evaluate(Superset(frozenset(items)))

    def query(self, query_type: "QueryType | str", items: Iterable[Item]) -> list[int]:
        """Dispatch to the right predicate by :class:`QueryType`."""
        return self.evaluate(QueryType.parse(query_type).leaf(items))

    def measured_query(
        self, query_type: "QueryType | str", items: Iterable[Item]
    ) -> QueryResult:
        """Single-predicate :meth:`measured_execute` (kept for compatibility)."""
        return self.measured_execute(QueryType.parse(query_type).leaf(items))

    # -- instrumentation -----------------------------------------------------------

    @property
    def stats(self) -> IOStatistics:
        """The I/O counters shared with the index's storage environment."""
        return self.env.stats

    def io_snapshot(self) -> IOSnapshot:
        """Aggregate I/O counters over *every* storage environment this index reads.

        This is the *pool-wide totals* contract: deltas between two calls
        cover all pages touched in between, by anyone.  Single-environment
        indexes (the default) return their environment's counters; composite
        access methods such as :class:`~repro.core.shard.ShardedIndex`
        override it to sum the per-shard snapshots
        (:meth:`IOSnapshot.__add__`).  Per-*query* accounting does not go
        through here any more — each cursor carries a
        :class:`~repro.storage.stats.ReadContext` charged with exactly its
        own traversal (sharded cursors one per shard), and the contexts sum
        to these totals; snapshot diffs are only exact while nothing else
        runs, which single-threaded experiment phases still rely on.
        """
        return self.stats.snapshot()

    @property
    def index_size_bytes(self) -> int:
        """On-disk footprint of the index structures (allocated pages)."""
        return self.env.size_bytes

    def drop_cache(self) -> None:
        """Empty the buffer pool so the next query starts cold."""
        self.env.drop_cache()
