"""Public interface shared by every set-containment index in the library.

The paper compares several access methods (the OIF, the classic inverted
file, an unordered B-tree variant, and — in related work — signature files).
All of them answer the same three predicates, so they implement one abstract
base class, :class:`SetContainmentIndex`, and the experiment runner treats
them interchangeably.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable

from repro.core.items import Item
from repro.core.records import Dataset
from repro.errors import QueryError
from repro.storage.kvstore import Environment
from repro.storage.stats import IOStatistics


class QueryType(enum.Enum):
    """The three containment predicates of Section 2."""

    SUBSET = "subset"
    EQUALITY = "equality"
    SUPERSET = "superset"

    @classmethod
    def parse(cls, value: "QueryType | str") -> "QueryType":
        """Accept either an enum member or its string name/value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise QueryError(
                f"unknown query type {value!r}; expected one of "
                f"{[member.value for member in cls]}"
            ) from None


@dataclass(frozen=True)
class QueryResult:
    """Answer of one containment query plus the I/O it caused."""

    query_type: QueryType
    query_items: frozenset
    record_ids: tuple[int, ...]
    page_accesses: int
    random_reads: int
    sequential_reads: int
    io_time_ms: float
    cpu_time_ms: float

    @property
    def cardinality(self) -> int:
        """Number of matching records."""
        return len(self.record_ids)

    @property
    def total_time_ms(self) -> float:
        """Simulated I/O time plus measured CPU time."""
        return self.io_time_ms + self.cpu_time_ms


class SetContainmentIndex(ABC):
    """Abstract base class for indexes answering containment queries.

    Subclasses must implement the three ``*_query`` methods, returning record
    ids of the *source dataset* (never internal ids) as a sorted list.
    """

    #: Human-readable name used in experiment reports ("IF", "OIF", ...).
    name: str = "index"

    def __init__(self, dataset: Dataset, env: Environment) -> None:
        self.dataset = dataset
        self.env = env

    # -- queries -------------------------------------------------------------------

    @abstractmethod
    def subset_query(self, items: Iterable[Item]) -> list[int]:
        """Records ``t`` with ``qs ⊆ t.s``."""

    @abstractmethod
    def equality_query(self, items: Iterable[Item]) -> list[int]:
        """Records ``t`` with ``qs = t.s``."""

    @abstractmethod
    def superset_query(self, items: Iterable[Item]) -> list[int]:
        """Records ``t`` with ``t.s ⊆ qs``."""

    def query(self, query_type: "QueryType | str", items: Iterable[Item]) -> list[int]:
        """Dispatch to the right predicate by :class:`QueryType`."""
        query_type = QueryType.parse(query_type)
        if query_type is QueryType.SUBSET:
            return self.subset_query(items)
        if query_type is QueryType.EQUALITY:
            return self.equality_query(items)
        return self.superset_query(items)

    # -- instrumentation -----------------------------------------------------------

    @property
    def stats(self) -> IOStatistics:
        """The I/O counters shared with the index's storage environment."""
        return self.env.stats

    @property
    def index_size_bytes(self) -> int:
        """On-disk footprint of the index structures (allocated pages)."""
        return self.env.size_bytes

    def drop_cache(self) -> None:
        """Empty the buffer pool so the next query starts cold."""
        self.env.drop_cache()

    def measured_query(
        self, query_type: "QueryType | str", items: Iterable[Item]
    ) -> QueryResult:
        """Run a query and package the answer together with its cost.

        The buffer pool is *not* dropped here; the experiment runner decides
        the caching regime (the paper keeps a minimal cache across queries).
        """
        import time

        query_type = QueryType.parse(query_type)
        item_set = frozenset(items)
        before = self.stats.snapshot()
        start = time.perf_counter()
        record_ids = tuple(self.query(query_type, item_set))
        cpu_seconds = time.perf_counter() - start
        delta = self.stats.since(before)
        return QueryResult(
            query_type=query_type,
            query_items=item_set,
            record_ids=record_ids,
            page_accesses=delta.page_reads,
            random_reads=delta.random_reads,
            sequential_reads=delta.sequential_reads,
            io_time_ms=delta.io_time_ms(self.stats.disk_model),
            cpu_time_ms=cpu_seconds * 1000.0,
        )
