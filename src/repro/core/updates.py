"""Batch updates for disk-resident inverted indexes (Section 4.4).

Both the classic inverted file and the OIF keep their lists contiguous on
disk, so neither supports cheap in-place insertion.  The standard technique —
which the paper adopts — is to buffer fresh records in a small **memory
resident** delta index so they are immediately queryable, and to merge them
into the disk index in batch when the buffer fills up.

The difference between the two structures lies in the merge step:

* the classic IF appends the new postings to the end of each affected list;
* the OIF must re-sort the records (new ids!) and rebuild its blocks, which is
  why the paper measures its updates to be roughly 3–5x slower — a price that
  is paid back because queries vastly outnumber updates in the target
  workloads (the break-even ratio reported is ~766 updates per query).

This module provides the delta buffer, updatable wrappers around both index
types and the :class:`UpdateReport` used by the update experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.baselines.inverted_file import InvertedFile
from repro.concurrency import ReadWriteLock
from repro.core.interfaces import QueryType, SetContainmentIndex
from repro.core.items import Item
from repro.core.oif import OrderedInvertedFile
from repro.core.records import Dataset, Record
from repro.core.shard import Partitioner, ShardedIndex
from repro.errors import QueryError
from repro.obs import trace
from repro.storage.kvstore import Environment
from repro.storage.stats import IOSnapshot


class DeltaInvertedFile:
    """Small, memory-resident inverted file holding not-yet-merged records."""

    def __init__(self) -> None:
        self._lists: dict[Item, list[tuple[int, int]]] = {}
        self._records: dict[int, frozenset] = {}

    def add(self, record: Record) -> None:
        """Index one fresh record."""
        self._records[record.record_id] = record.items
        for item in record.items:
            self._lists.setdefault(item, []).append((record.record_id, record.length))

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._records

    def remove(self, record_id: int) -> frozenset:
        """Un-buffer one pending record (a delete caught it before any merge)."""
        items = self._records.pop(record_id)
        for item in items:
            postings = [entry for entry in self._lists[item] if entry[0] != record_id]
            if postings:
                self._lists[item] = postings
            else:
                del self._lists[item]
        return items

    @property
    def records(self) -> list[Record]:
        """The buffered records, in insertion order of their ids."""
        return [Record(record_id, items) for record_id, items in sorted(self._records.items())]

    def clear(self) -> None:
        """Drop the buffer (after a successful merge)."""
        self._lists.clear()
        self._records.clear()

    # -- queries over the buffered records ------------------------------------------

    def subset_query(self, items: Iterable[Item]) -> list[int]:
        query = frozenset(items)
        lists = [self._lists.get(item, []) for item in query]
        if any(not postings for postings in lists):
            return []
        lists.sort(key=len)
        result = {record_id for record_id, _ in lists[0]}
        for postings in lists[1:]:
            result &= {record_id for record_id, _ in postings}
        return sorted(result)

    def equality_query(self, items: Iterable[Item]) -> list[int]:
        query = frozenset(items)
        return sorted(
            record_id
            for record_id in self.subset_query(query)
            if self._records[record_id] == query
        )

    def superset_query(self, items: Iterable[Item]) -> list[int]:
        query = frozenset(items)
        counts: dict[int, int] = {}
        lengths: dict[int, int] = {}
        for item in query:
            for record_id, length in self._lists.get(item, []):
                counts[record_id] = counts.get(record_id, 0) + 1
                lengths[record_id] = length
        return sorted(rid for rid, count in counts.items() if count == lengths[rid])

    def query(self, query_type: "QueryType | str", items: Iterable[Item]) -> list[int]:
        """Dispatch helper mirroring :class:`SetContainmentIndex.query`.

        Goes through :meth:`QueryType.parse`, so the delta path shares the
        disk path's validation (and its error message) instead of duplicating
        string comparisons.
        """
        query_type = QueryType.parse(query_type)
        if query_type is QueryType.SUBSET:
            return self.subset_query(items)
        if query_type is QueryType.EQUALITY:
            return self.equality_query(items)
        return self.superset_query(items)


class ShardedDeltaBuffer:
    """Per-shard delta buffers behind the :class:`DeltaInvertedFile` interface.

    Fresh records are routed by the owning index's partitioner on ``add``, so
    at flush time each shard's pending records are already grouped — the
    merge rebuilds exactly the shards with a non-empty buffer and leaves the
    rest untouched.  The query/iteration surface aggregates over all buffers,
    keeping :class:`_UpdatableBase`'s delta-aware paths oblivious to the
    partitioning.
    """

    def __init__(self, partitioner: Partitioner) -> None:
        self.partitioner = partitioner
        self._buffers = [DeltaInvertedFile() for _ in range(partitioner.num_shards)]

    def add(self, record: Record) -> None:
        """Buffer one fresh record in its shard's delta."""
        self._buffers[self.partitioner.shard_of(record.record_id)].add(record)

    def __len__(self) -> int:
        return sum(len(buffer) for buffer in self._buffers)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._buffers[self.partitioner.shard_of(record_id)]

    def remove(self, record_id: int) -> frozenset:
        """Un-buffer one pending record from its shard's delta."""
        return self._buffers[self.partitioner.shard_of(record_id)].remove(record_id)

    @property
    def records(self) -> list[Record]:
        """All buffered records across shards, ordered by id."""
        merged = [record for buffer in self._buffers for record in buffer.records]
        merged.sort(key=lambda record: record.record_id)
        return merged

    def clear(self) -> None:
        for buffer in self._buffers:
            buffer.clear()

    def pending_per_shard(self) -> list[int]:
        """Buffered record count per shard position."""
        return [len(buffer) for buffer in self._buffers]

    def query(self, query_type: "QueryType | str", items: Iterable[Item]) -> list[int]:
        """Aggregate one predicate over every shard's buffer (ids ascending)."""
        query_type = QueryType.parse(query_type)
        out: list[int] = []
        for buffer in self._buffers:
            if len(buffer):
                out.extend(buffer.query(query_type, items))
        out.sort()
        return out


@dataclass(frozen=True)
class UpdateReport:
    """Cost of one batch merge."""

    index_name: str
    records_merged: int
    merge_seconds: float
    page_writes: int
    page_reads: int

    @property
    def seconds_per_record(self) -> float:
        """Amortised merge cost per record (the paper reports ms/record)."""
        if not self.records_merged:
            return 0.0
        return self.merge_seconds / self.records_merged


#: Callback invoked with the set-values of freshly inserted records.  The
#: serving layer registers these to invalidate affected result-cache entries.
UpdateListener = Callable[[list[frozenset]], None]


class _UpdatableBase:
    """Shared plumbing for the updatable index wrappers.

    Every wrapper carries a :class:`~repro.concurrency.ReadWriteLock`
    (``rwlock``): queries take the read side — any number run concurrently,
    the storage engine below is reader-safe — while ``insert`` and ``flush``
    take the exclusive write side (they mutate the delta buffer and swap the
    disk index).
    """

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self.delta = DeltaInvertedFile()
        #: Concurrent readers / exclusive insert+flush.
        self.rwlock = ReadWriteLock()
        self._next_id = max(dataset.record_ids) + 1
        #: Ids of base-index records deleted but not yet merged out: queries
        #: filter them, :meth:`flush` drops them from the rebuilt dataset.
        self._tombstones: set[int] = set()
        self._update_listeners: list[UpdateListener] = []

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Register a callback fired after each :meth:`insert` batch.

        Buffered records are immediately queryable through the delta index, so
        any cached result affected by them is stale from the moment ``insert``
        returns — which is why the hook fires on insert, not on flush (the
        merge changes the physical layout but not any query answer).
        """
        self._update_listeners.append(listener)

    def insert(self, transactions: Iterable[Iterable[Item]]) -> list[int]:
        """Buffer new records in the memory-resident delta; returns their ids.

        Exclusive: takes the write side of :attr:`rwlock`, so no query reads
        the delta structures mid-mutation.  Listeners fire while the lock is
        still held — a cache invalidation is therefore ordered after every
        result cached under the pre-insert state.
        """
        # Validate the whole batch before touching the delta, so a bad
        # transaction cannot leave a partially applied (and unannounced) batch.
        inserted = [frozenset(transaction) for transaction in transactions]
        if any(not items for items in inserted):
            raise QueryError("cannot insert an empty transaction")
        with self.rwlock.write_locked():
            new_ids: list[int] = []
            for items in inserted:
                self.delta.add(Record(self._next_id, items))
                new_ids.append(self._next_id)
                self._next_id += 1
            if inserted:
                for listener in self._update_listeners:
                    listener(inserted)
            return new_ids

    def delete(self, record_ids: Iterable[int]) -> list[frozenset]:
        """Delete records by id; returns the deleted item sets (listener payload).

        A delete of a still-buffered record simply un-buffers it; a delete of
        a merged record adds a tombstone that every query path filters until
        the next :meth:`flush` rebuilds without it.  The whole batch is
        validated before any mutation, mirroring :meth:`insert`: an unknown or
        already-deleted id raises :class:`~repro.errors.QueryError` and leaves
        the index untouched.
        """
        ids = list(record_ids)
        with self.rwlock.write_locked():
            seen: set[int] = set()
            for record_id in ids:
                if record_id in seen:
                    raise QueryError(f"record {record_id} deleted twice in one batch")
                seen.add(record_id)
                in_delta = record_id in self.delta
                in_base = (
                    self.dataset.has_id(record_id) and record_id not in self._tombstones
                )
                if not in_delta and not in_base:
                    raise QueryError(f"cannot delete unknown record {record_id}")
            removed: list[frozenset] = []
            for record_id in ids:
                if record_id in self.delta:
                    removed.append(self.delta.remove(record_id))
                else:
                    self._tombstones.add(record_id)
                    removed.append(self.dataset.get(record_id).items)
            if removed:
                for listener in self._update_listeners:
                    listener(removed)
            return removed

    @property
    def pending_updates(self) -> int:
        """Records waiting to be merged: buffered inserts plus tombstones."""
        return len(self.delta) + len(self._tombstones)

    @property
    def pending_deletes(self) -> int:
        """Tombstoned base records awaiting the next merge."""
        return len(self._tombstones)

    def live_dataset(self) -> Dataset:
        """Snapshot of the records a query can currently return.

        Base records minus tombstones, plus the buffered inserts — the
        dataset a rebuild must be built over to preserve every answer.
        """
        with self.rwlock.read_locked():
            records = [
                record
                for record in self.dataset
                if record.record_id not in self._tombstones
            ]
            records.extend(self.delta.records)
            return Dataset(records)

    def _combined(self, index: SetContainmentIndex, query_type: str, items: Iterable[Item]) -> list[int]:
        with self.rwlock.read_locked():
            item_set = frozenset(items)
            base = index.query(query_type, item_set)
            if self._tombstones:
                base = [rid for rid in base if rid not in self._tombstones]
            fresh = self.delta.query(query_type, item_set) if len(self.delta) else []
            return sorted(set(base) | set(fresh))

    def query(self, query_type, items: Iterable[Item]) -> list[int]:
        """Dispatch helper mirroring :meth:`SetContainmentIndex.query`."""
        return self._combined(self.index, QueryType.parse(query_type).value, items)

    # -- the delta-aware point predicates (shared by every wrapper) ------------------

    def subset_query(self, items: Iterable[Item]) -> list[int]:
        return self._combined(self.index, "subset", items)

    def equality_query(self, items: Iterable[Item]) -> list[int]:
        return self._combined(self.index, "equality", items)

    def superset_query(self, items: Iterable[Item]) -> list[int]:
        return self._combined(self.index, "superset", items)

    def evaluate(self, expr) -> list[int]:
        """Answer a query expression over the disk index *and* the delta buffer.

        The base index evaluates the expression through its planner/cursor
        machinery; the buffered records — memory resident and few — are
        checked with the expression's per-record semantics.  A ``limit`` is
        applied only after merging, so a buffered record cannot be shadowed
        by an early-stopping disk cursor.
        """
        from repro.core.query.expr import Expr, split_limit

        if not isinstance(expr, Expr):
            raise QueryError(f"evaluate() needs a query expression, got {expr!r}")
        with self.rwlock.read_locked():
            normalized, count, offset = split_limit(expr)
            return self._merge_delta_and_slice(
                self.index.evaluate(normalized), normalized, count, offset
            )

    def flush(self) -> UpdateReport:
        """Merge the delta buffer into the disk index, exclusively.

        Holds the write side of :attr:`rwlock` for the whole merge (each
        wrapper's ``_flush_locked`` does the structure-specific work).
        Serving deployments that cannot afford the pause rebuild outside the
        lock instead and swap atomically
        (:meth:`repro.service.index_manager.IndexManager.rebuild`).
        """
        with self.rwlock.write_locked():
            return self._flush_locked()

    def _flush_locked(self) -> UpdateReport:
        raise NotImplementedError

    def measured_evaluate(self, expr) -> "tuple[list[int], IOSnapshot]":
        """Like :meth:`evaluate`, plus the exact I/O delta of this query.

        The disk index evaluates through a cursor whose read context is
        charged with exactly this traversal, so the returned
        :class:`~repro.storage.stats.IOSnapshot` stays correct when many
        queries run concurrently on the same handle; the delta-buffer merge
        is memory resident and costs no pages.
        """
        from repro.core.query.expr import Expr, split_limit

        if not isinstance(expr, Expr):
            raise QueryError(f"measured_evaluate() needs a query expression, got {expr!r}")
        with self.rwlock.read_locked():
            normalized, count, offset = split_limit(expr)
            cursor = self.index.execute(normalized)
            with trace.span("fetch", index=self.index.name):
                base = sorted(cursor.fetch_all())
            ids = self._merge_delta_and_slice(base, normalized, count, offset)
            return ids, cursor.io_delta()

    def _merge_delta_and_slice(
        self, base: list[int], normalized, count: "int | None", offset: int
    ) -> list[int]:
        """Union buffered delta matches into ``base`` (sorted), then slice.

        The single definition of the delta-visibility and limit-after-merge
        semantics; both the monolithic and the sharded evaluation paths go
        through it.
        """
        from repro.core.query.expr import slice_ids

        if self._tombstones:
            base = [rid for rid in base if rid not in self._tombstones]
        if len(self.delta):
            fresh = [
                record.record_id
                for record in self.delta.records
                if normalized.matches(record.items)
            ]
            base = sorted(set(base) | set(fresh))
        return slice_ids(base, count, offset)


class UpdatableOIF(_UpdatableBase):
    """OIF with a delta buffer; the merge re-sorts and rebuilds the index.

    ``env_factory`` (optional) supplies the storage environment for the
    initial build *and* every flush rebuild.  The durability layer uses it to
    keep every generation of the index on catalog-enabled environments whose
    page images can be snapshotted verbatim; when omitted, rebuilds land on
    plain in-memory environments sized like the current one.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        env_factory: "Callable[[], Environment] | None" = None,
        **oif_kwargs,
    ) -> None:
        super().__init__(dataset)
        self._oif_kwargs = dict(oif_kwargs)
        self._env_factory = env_factory
        if env_factory is not None:
            self.index = OrderedInvertedFile(dataset, env=env_factory(), **self._oif_kwargs)
        else:
            self.index = OrderedInvertedFile(dataset, **self._oif_kwargs)

    @classmethod
    def from_existing(
        cls,
        index: OrderedInvertedFile,
        dataset: Dataset,
        *,
        env_factory: "Callable[[], Environment] | None" = None,
        **oif_kwargs,
    ) -> "UpdatableOIF":
        """Wrap an already-built OIF (e.g. one reopened from disk) — no rebuild."""
        wrapper = cls.__new__(cls)
        _UpdatableBase.__init__(wrapper, dataset)
        wrapper._oif_kwargs = dict(oif_kwargs)
        wrapper._env_factory = env_factory
        wrapper.index = index
        return wrapper

    def _flush_locked(self) -> UpdateReport:
        """Merge the delta into the OIF by rebuilding it over the merged data."""
        merged_count = len(self.delta) + len(self._tombstones)
        start = time.perf_counter()
        survivors = (
            [record for record in self.dataset if record.record_id not in self._tombstones]
            if self._tombstones
            else list(self.dataset)
        )
        combined = Dataset(survivors + self.delta.records)
        if self._env_factory is not None:
            env = self._env_factory()
        else:
            env = Environment(
                page_size=self.index.env.page_size,
                cache_bytes=self.index.env.cache_pages * self.index.env.page_size,
            )
        before = env.stats.snapshot()
        new_index = OrderedInvertedFile(combined, env=env, **self._oif_kwargs)
        delta_stats = env.stats.since(before)
        elapsed = time.perf_counter() - start

        self.dataset = combined
        self.index = new_index
        self.delta.clear()
        self._tombstones.clear()
        return UpdateReport(
            index_name=new_index.name,
            records_merged=merged_count,
            merge_seconds=elapsed,
            page_writes=delta_stats.page_writes,
            page_reads=delta_stats.page_reads,
        )


def _shard_factory(
    env_factory: "Callable[[], Environment]", oif_kwargs: dict
) -> "Callable[[Dataset], OrderedInvertedFile]":
    """Shard builder that places every shard on an environment from the factory."""

    def build(shard_dataset: Dataset) -> OrderedInvertedFile:
        return OrderedInvertedFile(shard_dataset, env=env_factory(), **oif_kwargs)

    return build


class UpdatableShardedOIF(_UpdatableBase):
    """Sharded OIF with per-shard delta buffers and independent shard flushes.

    Inserts route to the delta buffer of the shard that will own the record
    (same deterministic partitioner as the index), so :meth:`flush` merges by
    rebuilding *only the shards with pending records* — typically a fraction
    of the monolithic ``UpdatableOIF.flush`` rebuild.  With ``max_workers``
    (or a pool-sized default from the service layer) the affected shards
    rebuild concurrently.
    """

    def __init__(
        self,
        dataset: Dataset,
        num_shards: int = 4,
        *,
        strategy: str = "hash",
        max_workers: "int | None" = None,
        env_factory: "Callable[[], Environment] | None" = None,
        **oif_kwargs,
    ) -> None:
        super().__init__(dataset)
        self._oif_kwargs = dict(oif_kwargs)
        self._env_factory = env_factory
        if env_factory is not None:
            self.index = ShardedIndex(
                dataset,
                num_shards,
                strategy=strategy,
                max_workers=max_workers,
                factory=_shard_factory(env_factory, self._oif_kwargs),
            )
        else:
            self.index = ShardedIndex(
                dataset,
                num_shards,
                strategy=strategy,
                max_workers=max_workers,
                **self._oif_kwargs,
            )
        self.delta = ShardedDeltaBuffer(self.index.partitioner)

    @classmethod
    def from_existing(
        cls,
        index: ShardedIndex,
        dataset: Dataset,
        *,
        env_factory: "Callable[[], Environment] | None" = None,
        **oif_kwargs,
    ) -> "UpdatableShardedOIF":
        """Wrap an already-built sharded index (e.g. reopened shards) — no rebuild."""
        wrapper = cls.__new__(cls)
        _UpdatableBase.__init__(wrapper, dataset)
        wrapper._oif_kwargs = dict(oif_kwargs)
        wrapper._env_factory = env_factory
        wrapper.index = index
        wrapper.delta = ShardedDeltaBuffer(index.partitioner)
        return wrapper

    @property
    def num_shards(self) -> int:
        return self.index.num_shards

    def pending_per_shard(self) -> list[int]:
        """Buffered record count per shard position (flush planning, /stats)."""
        return self.delta.pending_per_shard()

    def flush(self, max_workers: "int | None" = None) -> UpdateReport:
        """Merge the per-shard deltas by rebuilding only the affected shards."""
        with self.rwlock.write_locked():
            merged_count = len(self.delta) + len(self._tombstones)
            start = time.perf_counter()
            report = self.index.absorb(
                self.delta.records,
                max_workers=max_workers,
                removed_ids=self._tombstones,
            )
            elapsed = time.perf_counter() - start
            self.dataset = self.index.dataset
            self.delta.clear()
            self._tombstones.clear()
            return UpdateReport(
                index_name=self.index.name,
                records_merged=merged_count,
                merge_seconds=elapsed,
                page_writes=report.io.page_writes,
                page_reads=report.io.page_reads,
            )

    @property
    def process_pool(self):
        """The attached :class:`ShardProcessPool`, or ``None`` (delegated)."""
        return self.index.process_pool

    def attach_process_pool(self, pool) -> None:
        """Route shard fan-out through a multiprocess backend.

        Writes (``insert``/``delete``/``flush``) stay in the parent: the delta
        buffer is merged after the workers' base-shard results come home, and
        ``flush`` re-images the rebuilt shards into the pool automatically via
        :meth:`ShardedIndex.absorb`.
        """
        self.index.attach_process_pool(pool)

    def detach_process_pool(self):
        """Detach and return the process pool (does not close it)."""
        return self.index.detach_process_pool()

    def evaluate_detail(self, expr, pool=None):
        """Like :meth:`evaluate`, plus the per-shard cost breakdown.

        The shards are materialized through
        :meth:`ShardedIndex.fanout_evaluate` (concurrently when ``pool`` is
        given); buffered delta records merge in with zero page cost and the
        top-level limit slices the combined, sorted stream — identical
        semantics to the base ``evaluate``.
        """
        from repro.core.query.expr import Expr, split_limit

        if not isinstance(expr, Expr):
            raise QueryError(f"evaluate_detail() needs a query expression, got {expr!r}")
        with self.rwlock.read_locked():
            normalized, count, offset = split_limit(expr)
            base, shard_stats = self.index.fanout_evaluate(normalized, pool=pool)
            return self._merge_delta_and_slice(base, normalized, count, offset), shard_stats


class UpdatableIF(_UpdatableBase):
    """Classic inverted file with a delta buffer; the merge appends to the lists."""

    def __init__(self, dataset: Dataset, **if_kwargs) -> None:
        super().__init__(dataset)
        self._if_kwargs = dict(if_kwargs)
        self.index = InvertedFile(dataset, **self._if_kwargs)

    def _flush_locked(self) -> UpdateReport:
        """Merge the delta into the IF by appending postings to the lists.

        The merge rewrites list pages in place, which no concurrent reader
        may observe half-done — hence the base class's exclusive hold.
        """
        merged_count = len(self.delta) + len(self._tombstones)
        fresh_records = self.delta.records
        start = time.perf_counter()
        if self._tombstones:
            # Deletions cannot be merged by appending: the contiguous lists
            # still hold the dead postings.  Rebuild the whole IF over the
            # surviving records instead (the classic IF's compaction story).
            survivors = [
                record
                for record in self.dataset
                if record.record_id not in self._tombstones
            ]
            combined = Dataset(survivors + fresh_records)
            new_index = InvertedFile(combined, **self._if_kwargs)
            delta_stats = new_index.stats.snapshot()
            elapsed = time.perf_counter() - start
            self.dataset = combined
            self.index = new_index
            self.delta.clear()
            self._tombstones.clear()
            return UpdateReport(
                index_name=new_index.name,
                records_merged=merged_count,
                merge_seconds=elapsed,
                page_writes=delta_stats.page_writes,
                page_reads=delta_stats.page_reads,
            )
        before = self.index.stats.snapshot()
        self.index.merge_records(fresh_records)
        delta_stats = self.index.stats.since(before)
        elapsed = time.perf_counter() - start

        self.dataset = Dataset(list(self.dataset) + fresh_records)
        self.index.dataset = self.dataset
        # The cached planner was built from the pre-merge frequency stats;
        # drop it so new items are not mistaken for maximally rare ones.
        self.index._planner = None
        self.delta.clear()
        return UpdateReport(
            index_name=self.index.name,
            records_merged=merged_count,
            merge_seconds=elapsed,
            page_writes=delta_stats.page_writes,
            page_reads=delta_stats.page_reads,
        )
