"""Batch updates for disk-resident inverted indexes (Section 4.4).

Both the classic inverted file and the OIF keep their lists contiguous on
disk, so neither supports cheap in-place insertion.  The standard technique —
which the paper adopts — is to buffer fresh records in a small **memory
resident** delta index so they are immediately queryable, and to merge them
into the disk index in batch when the buffer fills up.

The difference between the two structures lies in the merge step:

* the classic IF appends the new postings to the end of each affected list;
* the OIF must re-sort the records (new ids!) and rebuild its blocks, which is
  why the paper measures its updates to be roughly 3–5x slower — a price that
  is paid back because queries vastly outnumber updates in the target
  workloads (the break-even ratio reported is ~766 updates per query).

This module provides the delta buffer, updatable wrappers around both index
types and the :class:`UpdateReport` used by the update experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.baselines.inverted_file import InvertedFile
from repro.core.interfaces import QueryType, SetContainmentIndex
from repro.core.items import Item
from repro.core.oif import OrderedInvertedFile
from repro.core.records import Dataset, Record
from repro.errors import QueryError
from repro.storage.kvstore import Environment


class DeltaInvertedFile:
    """Small, memory-resident inverted file holding not-yet-merged records."""

    def __init__(self) -> None:
        self._lists: dict[Item, list[tuple[int, int]]] = {}
        self._records: dict[int, frozenset] = {}

    def add(self, record: Record) -> None:
        """Index one fresh record."""
        self._records[record.record_id] = record.items
        for item in record.items:
            self._lists.setdefault(item, []).append((record.record_id, record.length))

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[Record]:
        """The buffered records, in insertion order of their ids."""
        return [Record(record_id, items) for record_id, items in sorted(self._records.items())]

    def clear(self) -> None:
        """Drop the buffer (after a successful merge)."""
        self._lists.clear()
        self._records.clear()

    # -- queries over the buffered records ------------------------------------------

    def subset_query(self, items: Iterable[Item]) -> list[int]:
        query = frozenset(items)
        lists = [self._lists.get(item, []) for item in query]
        if any(not postings for postings in lists):
            return []
        lists.sort(key=len)
        result = {record_id for record_id, _ in lists[0]}
        for postings in lists[1:]:
            result &= {record_id for record_id, _ in postings}
        return sorted(result)

    def equality_query(self, items: Iterable[Item]) -> list[int]:
        query = frozenset(items)
        return sorted(
            record_id
            for record_id in self.subset_query(query)
            if self._records[record_id] == query
        )

    def superset_query(self, items: Iterable[Item]) -> list[int]:
        query = frozenset(items)
        counts: dict[int, int] = {}
        lengths: dict[int, int] = {}
        for item in query:
            for record_id, length in self._lists.get(item, []):
                counts[record_id] = counts.get(record_id, 0) + 1
                lengths[record_id] = length
        return sorted(rid for rid, count in counts.items() if count == lengths[rid])

    def query(self, query_type: str, items: Iterable[Item]) -> list[int]:
        """Dispatch helper mirroring :class:`SetContainmentIndex.query`."""
        if query_type == "subset":
            return self.subset_query(items)
        if query_type == "equality":
            return self.equality_query(items)
        if query_type == "superset":
            return self.superset_query(items)
        raise QueryError(f"unknown query type {query_type!r}")


@dataclass(frozen=True)
class UpdateReport:
    """Cost of one batch merge."""

    index_name: str
    records_merged: int
    merge_seconds: float
    page_writes: int
    page_reads: int

    @property
    def seconds_per_record(self) -> float:
        """Amortised merge cost per record (the paper reports ms/record)."""
        if not self.records_merged:
            return 0.0
        return self.merge_seconds / self.records_merged


#: Callback invoked with the set-values of freshly inserted records.  The
#: serving layer registers these to invalidate affected result-cache entries.
UpdateListener = Callable[[list[frozenset]], None]


class _UpdatableBase:
    """Shared plumbing for the updatable index wrappers."""

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self.delta = DeltaInvertedFile()
        self._next_id = max(dataset.record_ids) + 1
        self._update_listeners: list[UpdateListener] = []

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Register a callback fired after each :meth:`insert` batch.

        Buffered records are immediately queryable through the delta index, so
        any cached result affected by them is stale from the moment ``insert``
        returns — which is why the hook fires on insert, not on flush (the
        merge changes the physical layout but not any query answer).
        """
        self._update_listeners.append(listener)

    def insert(self, transactions: Iterable[Iterable[Item]]) -> list[int]:
        """Buffer new records in the memory-resident delta; returns their ids."""
        # Validate the whole batch before touching the delta, so a bad
        # transaction cannot leave a partially applied (and unannounced) batch.
        inserted = [frozenset(transaction) for transaction in transactions]
        if any(not items for items in inserted):
            raise QueryError("cannot insert an empty transaction")
        new_ids: list[int] = []
        for items in inserted:
            self.delta.add(Record(self._next_id, items))
            new_ids.append(self._next_id)
            self._next_id += 1
        if inserted:
            for listener in self._update_listeners:
                listener(inserted)
        return new_ids

    @property
    def pending_updates(self) -> int:
        """Number of records waiting in the delta buffer."""
        return len(self.delta)

    def _combined(self, index: SetContainmentIndex, query_type: str, items: Iterable[Item]) -> list[int]:
        item_set = frozenset(items)
        base = index.query(query_type, item_set)
        fresh = self.delta.query(query_type, item_set) if len(self.delta) else []
        return sorted(set(base) | set(fresh))

    def query(self, query_type, items: Iterable[Item]) -> list[int]:
        """Dispatch helper mirroring :meth:`SetContainmentIndex.query`."""
        return self._combined(self.index, QueryType.parse(query_type).value, items)

    def evaluate(self, expr) -> list[int]:
        """Answer a query expression over the disk index *and* the delta buffer.

        The base index evaluates the expression through its planner/cursor
        machinery; the buffered records — memory resident and few — are
        checked with the expression's per-record semantics.  A ``limit`` is
        applied only after merging, so a buffered record cannot be shadowed
        by an early-stopping disk cursor.
        """
        from repro.core.query.expr import Expr, Limit

        if not isinstance(expr, Expr):
            raise QueryError(f"evaluate() needs a query expression, got {expr!r}")
        normalized = expr.normalize()
        count, offset = None, 0
        if isinstance(normalized, Limit):
            count, offset = normalized.count, normalized.offset
            normalized = normalized.operand
        base = self.index.evaluate(normalized)
        if len(self.delta):
            fresh = [
                record.record_id
                for record in self.delta.records
                if normalized.matches(record.items)
            ]
            base = sorted(set(base) | set(fresh))
        if count is None and offset == 0:
            return base
        upper = None if count is None else offset + count
        return base[offset:upper]


class UpdatableOIF(_UpdatableBase):
    """OIF with a delta buffer; the merge re-sorts and rebuilds the index."""

    def __init__(self, dataset: Dataset, **oif_kwargs) -> None:
        super().__init__(dataset)
        self._oif_kwargs = dict(oif_kwargs)
        self.index = OrderedInvertedFile(dataset, **self._oif_kwargs)

    def flush(self) -> UpdateReport:
        """Merge the delta into the OIF by rebuilding it over the merged data."""
        merged_count = len(self.delta)
        start = time.perf_counter()
        combined = Dataset(
            list(self.dataset) + self.delta.records
        )
        env = Environment(
            page_size=self.index.env.page_size,
            cache_bytes=self.index.env.cache_pages * self.index.env.page_size,
        )
        before = env.stats.snapshot()
        new_index = OrderedInvertedFile(combined, env=env, **self._oif_kwargs)
        delta_stats = env.stats.since(before)
        elapsed = time.perf_counter() - start

        self.dataset = combined
        self.index = new_index
        self.delta.clear()
        return UpdateReport(
            index_name=new_index.name,
            records_merged=merged_count,
            merge_seconds=elapsed,
            page_writes=delta_stats.page_writes,
            page_reads=delta_stats.page_reads,
        )

    def subset_query(self, items: Iterable[Item]) -> list[int]:
        return self._combined(self.index, "subset", items)

    def equality_query(self, items: Iterable[Item]) -> list[int]:
        return self._combined(self.index, "equality", items)

    def superset_query(self, items: Iterable[Item]) -> list[int]:
        return self._combined(self.index, "superset", items)


class UpdatableIF(_UpdatableBase):
    """Classic inverted file with a delta buffer; the merge appends to the lists."""

    def __init__(self, dataset: Dataset, **if_kwargs) -> None:
        super().__init__(dataset)
        self._if_kwargs = dict(if_kwargs)
        self.index = InvertedFile(dataset, **self._if_kwargs)

    def flush(self) -> UpdateReport:
        """Merge the delta into the IF by appending postings to the lists."""
        merged_count = len(self.delta)
        fresh_records = self.delta.records
        start = time.perf_counter()
        before = self.index.stats.snapshot()
        self.index.merge_records(fresh_records)
        delta_stats = self.index.stats.since(before)
        elapsed = time.perf_counter() - start

        self.dataset = Dataset(list(self.dataset) + fresh_records)
        self.index.dataset = self.dataset
        # The cached planner was built from the pre-merge frequency stats;
        # drop it so new items are not mistaken for maximally rare ones.
        self.index._planner = None
        self.delta.clear()
        return UpdateReport(
            index_name=self.index.name,
            records_merged=merged_count,
            merge_seconds=elapsed,
            page_writes=delta_stats.page_writes,
            page_reads=delta_stats.page_reads,
        )

    def subset_query(self, items: Iterable[Item]) -> list[int]:
        return self._combined(self.index, "subset", items)

    def equality_query(self, items: Iterable[Item]) -> list[int]:
        return self._combined(self.index, "equality", items)

    def superset_query(self, items: Iterable[Item]) -> list[int]:
        return self._combined(self.index, "superset", items)
