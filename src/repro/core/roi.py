"""Range-of-Interest (RoI) computation for the three containment predicates.

The RoI of a query is the region of the ordered id space that can possibly
contain answers (Section 4).  Because records are sorted by sequence form, an
RoI is expressed here as a pair of sequence-form bounds ``(lower, upper)``
over item *ranks*; the query evaluators translate these bounds into B-tree
seek keys and block-scan stop conditions.

* Subset queries (Definition 2): one range per query; the lower bound is
  ``{o_1, ..., o_qn}`` (every domain item up to the query's largest item) and
  the upper bound is ``qs ∪ {o_N}`` (the query plus the domain's largest
  item).
* Equality queries (Definition 3): a single point — the query itself.
* Superset queries (Definition 4): a different set of ranges per inverted
  list.  For the i-th query item there is one range per possible smallest item
  ``o_qj`` (j <= i); the last of them coincides with the metadata region of
  ``o_qi`` and is therefore served from the metadata table instead of the
  list.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sequence import SequenceForm
from repro.errors import QueryError


@dataclass(frozen=True)
class RangeOfInterest:
    """A closed range of sequence forms ``[lower, upper]``."""

    lower: SequenceForm
    upper: SequenceForm

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise QueryError(
                f"inverted range of interest: lower {self.lower} > upper {self.upper}"
            )

    def contains(self, form: SequenceForm) -> bool:
        """Whether a sequence form falls inside the range."""
        return self.lower <= form <= self.upper


def _validate_query(query_ranks: SequenceForm, domain_size: int) -> None:
    if not query_ranks:
        raise QueryError("query sets must contain at least one item")
    if list(query_ranks) != sorted(set(query_ranks)):
        raise QueryError(f"query ranks must be strictly increasing, got {query_ranks}")
    if query_ranks[-1] >= domain_size:
        raise QueryError(
            f"query rank {query_ranks[-1]} outside the domain of {domain_size} items"
        )


def subset_roi(query_ranks: SequenceForm, domain_size: int) -> RangeOfInterest:
    """RoI for a subset query (Definition 2).

    ``query_ranks`` is the query's sequence form; ``domain_size`` is ``|I|``.
    """
    _validate_query(query_ranks, domain_size)
    largest_query_rank = query_ranks[-1]
    lower = tuple(range(largest_query_rank + 1))
    max_rank = domain_size - 1
    upper = query_ranks if largest_query_rank == max_rank else query_ranks + (max_rank,)
    return RangeOfInterest(lower=lower, upper=upper)


def equality_roi(query_ranks: SequenceForm, domain_size: int) -> RangeOfInterest:
    """RoI for an equality query (Definition 3): the single point ``qs``."""
    _validate_query(query_ranks, domain_size)
    return RangeOfInterest(lower=query_ranks, upper=query_ranks)


def superset_rois(
    query_ranks: SequenceForm, domain_size: int
) -> dict[int, list[RangeOfInterest]]:
    """RoIs for a superset query (Definition 4), one list of ranges per query item.

    For the query item with rank ``q_i`` the returned ranges are ordered by
    their position in the id space and grouped by the candidate's smallest
    item ``q_j`` (j <= i):

    * ranges for ``j < i`` cover records whose smallest item is ``q_j``; these
      are scanned from ``q_i``'s inverted list;
    * the final range (``j = i``) covers records whose smallest item is
      ``q_i`` itself; those records carry no posting for ``q_i`` (the metadata
      table replaces it), so the evaluator serves that range from the metadata
      instead of returning it here.

    The dictionary therefore maps each query rank ``q_i`` to its *list* ranges
    only (possibly empty for the smallest query item).
    """
    _validate_query(query_ranks, domain_size)
    largest = query_ranks[-1]
    rois: dict[int, list[RangeOfInterest]] = {}
    for i, rank_i in enumerate(query_ranks):
        ranges: list[RangeOfInterest] = []
        for j in range(i):
            rank_j = query_ranks[j]
            lower = tuple(query_ranks[j : i + 1])
            upper = tuple(sorted({rank_j, rank_i, largest}))
            ranges.append(RangeOfInterest(lower=lower, upper=upper))
        rois[rank_i] = ranges
    return rois
