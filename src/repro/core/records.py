"""Records and datasets of set-valued data.

A record has a unique id and a set-valued attribute (Section 2's relation
``D(id, s)``).  A :class:`Dataset` is an in-memory collection of records plus
the derived vocabulary; it is the input to every index in the library and to
the brute-force oracle used for testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.items import Item, Vocabulary
from repro.errors import DatasetError


@dataclass(frozen=True)
class Record:
    """One row of the relation: a unique id and a set-valued attribute."""

    record_id: int
    items: frozenset

    def __post_init__(self) -> None:
        if self.record_id < 0:
            raise DatasetError(f"record ids must be non-negative, got {self.record_id}")
        if not isinstance(self.items, frozenset):
            object.__setattr__(self, "items", frozenset(self.items))

    @property
    def length(self) -> int:
        """Cardinality of the set-value (the ``l`` stored in postings)."""
        return len(self.items)

    def contains_all(self, items: Iterable[Item]) -> bool:
        """Subset predicate: does this record contain every item of ``items``?"""
        return set(items) <= self.items

    def contained_in(self, items: Iterable[Item]) -> bool:
        """Superset predicate: are all of this record's items inside ``items``?"""
        return self.items <= set(items)

    def equals(self, items: Iterable[Item]) -> bool:
        """Equality predicate: is the set-value exactly ``items``?"""
        return self.items == set(items)


class Dataset:
    """An ordered collection of records sharing one item domain."""

    def __init__(self, records: Sequence[Record]) -> None:
        if not records:
            raise DatasetError("a dataset must contain at least one record")
        self._records: list[Record] = list(records)
        seen: set[int] = set()
        for record in self._records:
            if record.record_id in seen:
                raise DatasetError(f"duplicate record id {record.record_id}")
            seen.add(record.record_id)
        self._by_id: dict[int, Record] = {r.record_id: r for r in self._records}
        self._vocabulary: Vocabulary | None = None

    @classmethod
    def from_transactions(
        cls,
        transactions: Iterable[Iterable[Item]],
        start_id: int = 1,
        allow_empty: bool = False,
    ) -> "Dataset":
        """Build a dataset from raw item collections, assigning dense ids.

        Empty transactions are rejected unless ``allow_empty`` is set, because
        the paper's data (market baskets, web sessions) always has at least one
        item per record.
        """
        records: list[Record] = []
        next_id = start_id
        for transaction in transactions:
            items = frozenset(transaction)
            if not items and not allow_empty:
                raise DatasetError(
                    f"transaction at position {next_id - start_id} is empty; "
                    "pass allow_empty=True to keep empty records"
                )
            records.append(Record(next_id, items))
            next_id += 1
        return cls(records)

    # -- container protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    def get(self, record_id: int) -> Record:
        """Fetch a record by id; raises :class:`DatasetError` if missing."""
        try:
            return self._by_id[record_id]
        except KeyError:
            raise DatasetError(f"no record with id {record_id}") from None

    def has_id(self, record_id: int) -> bool:
        """Return whether a record with ``record_id`` exists."""
        return record_id in self._by_id

    @property
    def record_ids(self) -> list[int]:
        """All record ids, in dataset order."""
        return [record.record_id for record in self._records]

    # -- statistics ----------------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        """The active domain with support counts (computed lazily, then cached)."""
        if self._vocabulary is None:
            self._vocabulary = Vocabulary.from_transactions(
                record.items for record in self._records
            )
        return self._vocabulary

    @property
    def domain_size(self) -> int:
        """Number of distinct items across all records (``|I|``)."""
        return len(self.vocabulary)

    @property
    def average_length(self) -> float:
        """Average set-value cardinality (the ``l`` of Section 3's metadata analysis)."""
        return sum(record.length for record in self._records) / len(self._records)

    @property
    def total_postings(self) -> int:
        """Total number of (record, item) pairs, i.e. the size of a plain inverted file."""
        return sum(record.length for record in self._records)

    def data_size_bytes(self, bytes_per_value: int = 4) -> int:
        """Rough size of the raw data, used as the denominator of the space experiment.

        Each record is charged ``bytes_per_value`` for its id plus
        ``bytes_per_value`` per item, mirroring how the paper relates index
        size to "the original data".
        """
        return sum(
            bytes_per_value * (1 + record.length) for record in self._records
        )

    def extend(self, transactions: Iterable[Iterable[Item]]) -> list[Record]:
        """Append new records (used by the update experiments); returns them."""
        next_id = max(self._by_id) + 1 if self._by_id else 1
        added: list[Record] = []
        for transaction in transactions:
            items = frozenset(transaction)
            if not items:
                raise DatasetError("cannot append an empty transaction")
            record = Record(next_id, items)
            self._records.append(record)
            self._by_id[next_id] = record
            added.append(record)
            next_id += 1
        self._vocabulary = None
        return added
