"""Adaptive posting representations: packed bitmaps next to sorted-id columns.

The paper's whole premise is skewed item distributions, and the hottest
inverted lists are exactly where a sorted-id column is the wrong shape: for
an item appearing in more than ``1/64`` of the records, a packed bitset
intersects in ``O(|D| / wordsize)`` *regardless of list length*, while a
galloping merge still pays one Python-level bisect per element.  This module
supplies the second representation and the policy that picks between them:

* :class:`DensePostings` — one posting run as a packed 64-bit-word bitmap
  over the record-id space plus the parallel ``lengths`` column, behind the
  same protocol as :class:`~repro.compression.postings.PostingColumns`
  (``len``/iterate/index yield :class:`~repro.compression.postings.Posting`
  views; ``to_columns()`` materializes the sorted-id form).
* :func:`choose_representation` — the per-item policy: an item whose support
  reaches ``dense_ratio`` of the record count (default ``1/64``) is tagged
  :data:`REPR_BITMAP`; everything else stays :data:`REPR_ARRAY`.  Indexes
  record the tag in their list metadata at build/flush time so decode picks
  the right shape without re-inspecting frequencies.
* :func:`to_dense` — the geometry-guarded conversion: a list that is
  frequent but whose ids sprawl over a huge span would make a bitmap
  *larger* than the id column, so conversion only happens when the packed
  words fit in the id column's budget.
* :func:`pack_sorted_ids` / :func:`unpack_ids` — the wire codec used by the
  multiprocess shard backend: dense result sets ship as packed words and are
  converted back to sorted ids at the boundary.

The intersection kernels pairing the two representations live in
:mod:`repro.core.intersect`; this module also keeps the process-wide
representation/kernel counters that back the ``repro_postings_repr_total``
and bitmap-kernel families on ``/metrics``.

Results are representation-independent by construction: every kernel and
every conversion yields exactly the same sorted id sets, and no code path
here touches storage — page counts and ``IOSnapshot`` accounting cannot
differ between the array-only and hybrid configurations.
"""

from __future__ import annotations

import math
import sys
import threading
from array import array
from typing import Iterator, Sequence

from repro.compression.postings import Posting, PostingColumns, numpy_module
from repro.errors import CompressionError

#: Representation tags recorded in list/block metadata (and persisted by the
#: durability layer, which bumps its format version for them).
REPR_ARRAY = "array"
REPR_BITMAP = "bitmap"

#: Default density threshold: an item appearing in at least ``1/64`` of the
#: records gets the bitmap representation — the point where one AND over
#: ``|D|/64`` words beats a per-element merge no matter how long the list is.
DEFAULT_DENSE_RATIO = 1.0 / 64.0

#: Set-bit positions per byte value, for the pure-Python bit extraction.
_BYTE_BITS: tuple[tuple[int, ...], ...] = tuple(
    tuple(bit for bit in range(8) if value >> bit & 1) for value in range(256)
)


def dense_threshold(num_records: int, dense_ratio: float = DEFAULT_DENSE_RATIO) -> int:
    """Minimum support at which an item's list is tagged :data:`REPR_BITMAP`."""
    if dense_ratio <= 0:
        raise CompressionError(f"dense_ratio must be positive, got {dense_ratio}")
    return max(1, math.ceil(num_records * dense_ratio))


def choose_representation(
    support: int, num_records: int, dense_ratio: float = DEFAULT_DENSE_RATIO
) -> str:
    """Pick the representation tag for one item from its frequency stats."""
    if dense_ratio <= 0:
        raise CompressionError(f"dense_ratio must be positive, got {dense_ratio}")
    if num_records <= 0 or support <= 0:
        return REPR_ARRAY
    return (
        REPR_BITMAP
        if support >= dense_threshold(num_records, dense_ratio)
        else REPR_ARRAY
    )


class DensePostings:
    """One posting run as a packed bitmap plus the parallel ``lengths`` column.

    Bit ``i`` of word ``w`` is set exactly when record id ``base + 64*w + i``
    appears in the run; ``base`` is word-aligned so two bitmaps AND over
    their overlapping words without shifting.  ``lengths`` stays a plain
    column aligned with the set bits in ascending id order, so
    :meth:`to_columns` reproduces the exact
    :class:`~repro.compression.postings.PostingColumns` the array decoder
    would have produced.

    Like ``PostingColumns``, the class is a lazy :class:`Posting` view:
    ``len``, iteration and indexing materialize postings on demand.
    """

    __slots__ = ("words", "base", "nbits", "lengths", "first_id", "last_id")

    def __init__(
        self,
        words: "array",
        base: int,
        nbits: int,
        lengths: Sequence[int],
        first_id: int,
        last_id: int,
    ) -> None:
        self.words = words
        self.base = base
        self.nbits = nbits
        self.lengths = lengths
        self.first_id = first_id
        self.last_id = last_id

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_sorted_ids(
        cls, ids: Sequence[int], lengths: "Sequence[int] | None" = None
    ) -> "DensePostings":
        """Build a bitmap from a strictly increasing id run (O(n))."""
        if not len(ids):
            return cls(array("Q"), 0, 0, array("Q"), 0, -1)
        first_id = ids[0]
        last_id = ids[-1]
        if first_id < 0:
            raise CompressionError(f"record ids must be non-negative, got {first_id}")
        base = (first_id >> 6) << 6
        nbits = last_id - base + 1
        nwords = (nbits + 63) >> 6
        np = numpy_module()
        if np is not None and len(ids) >= 64:
            if isinstance(ids, array) and ids.typecode == "Q":
                relative = np.frombuffer(ids, np.int64) - base
            else:
                relative = np.asarray(ids, np.int64) - base
            bits = np.zeros(nwords << 6, dtype=np.bool_)
            bits[relative] = True
            words = array("Q")
            words.frombytes(np.packbits(bits, bitorder="little").tobytes())
        else:
            words = array("Q", bytes(8) * nwords)
            for record_id in ids:
                offset = record_id - base
                words[offset >> 6] |= 1 << (offset & 63)
        if lengths is None:
            lengths = array("Q")
        column = (
            lengths
            if isinstance(lengths, array)
            else array("Q", list(lengths))
        )
        if len(column) and len(column) != len(ids):
            raise CompressionError(
                f"column length mismatch: {len(ids)} ids vs {len(column)} lengths"
            )
        return cls(words, base, nbits, column, first_id, last_id)

    @classmethod
    def from_columns(cls, columns: PostingColumns) -> "DensePostings":
        """Build a bitmap from a decoded columnar run (ids strictly increasing)."""
        return cls.from_sorted_ids(columns.ids, columns.lengths)

    # -- the shared posting-run protocol ----------------------------------------------

    def __len__(self) -> int:
        if len(self.lengths):
            return len(self.lengths)
        return popcount_words(self.words)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.to_columns())

    def __getitem__(self, index: int) -> Posting:
        return self.to_columns()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (DensePostings, PostingColumns)):
            mine = self.to_columns()
            theirs = other.to_columns() if isinstance(other, DensePostings) else other
            return mine == theirs
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"DensePostings({len(self)} postings over "
            f"[{self.first_id}, {self.last_id}], {len(self.words)} words)"
        )

    @property
    def ids(self) -> "array":
        """Materialize the sorted id column (each call extracts afresh)."""
        return extract_set_bits(self.words, self.base)

    def to_columns(self) -> PostingColumns:
        """Materialize the exact columnar form the array decoder would produce."""
        ids = extract_set_bits(self.words, self.base)
        if len(self.lengths) and len(self.lengths) != len(ids):
            raise CompressionError(
                f"corrupt dense run: {len(ids)} set bits vs {len(self.lengths)} lengths"
            )
        return PostingColumns(ids, self.lengths)

    def postings(self) -> list[Posting]:
        """Materialize the classic ``list[Posting]`` form."""
        return self.to_columns().postings()

    def contains(self, record_id: int) -> bool:
        """O(1) membership probe."""
        offset = record_id - self.base
        if offset < 0 or offset >= self.nbits:
            return False
        return bool(self.words[offset >> 6] >> (offset & 63) & 1)

    @property
    def nbytes(self) -> int:
        """True cached footprint: packed words, lengths column and object header."""
        return (
            sys.getsizeof(self.words)
            + sys.getsizeof(self.lengths)
            + sys.getsizeof(self)
        )


def to_dense(columns: PostingColumns) -> "DensePostings | None":
    """Convert a columnar run to a bitmap when the geometry pays off.

    Returns ``None`` when the run is empty or its packed words would exceed
    the id column's own byte budget (one word per posting) — the case of a
    frequent item whose ids sprawl over a sparse span, where a bitmap would
    waste memory *and* kernel time.  The caller then keeps the array form;
    the representation tag is advisory, never load-bearing for correctness.
    """
    count = len(columns.ids)
    if not count:
        return None
    first = columns.ids[0]
    last = columns.ids[-1]
    if first < 0:
        return None
    nwords = ((last - ((first >> 6) << 6)) >> 6) + 1
    if nwords > count:
        return None
    return DensePostings.from_columns(columns)


# -- bit extraction / popcount ---------------------------------------------------------


def extract_set_bits(words: "array | Sequence[int]", base: int) -> "array":
    """Ascending ids of the set bits in ``words`` (bit 0 of word 0 = ``base``)."""
    np = numpy_module()
    if np is not None and len(words) >= 8:
        if isinstance(words, array) and words.typecode == "Q":
            packed = np.frombuffer(words, np.uint8)
        else:
            packed = np.frombuffer(array("Q", list(words)), np.uint8)
        positions = np.flatnonzero(np.unpackbits(packed, bitorder="little"))
        out = array("Q")
        out.frombytes((positions.astype(np.uint64) + base).tobytes())
        return out
    table = _BYTE_BITS
    ids: list[int] = []
    extend = ids.extend
    raw = words.tobytes() if isinstance(words, array) else array("Q", list(words)).tobytes()
    offset = base
    for byte in raw:
        if byte:
            extend(offset + bit for bit in table[byte])
        offset += 8
    return array("Q", ids)


def popcount_words(words: "array | Sequence[int]") -> int:
    """Total set bits across ``words``."""
    return sum(word.bit_count() for word in words)


# -- wire codec (multiprocess shard backend) -------------------------------------------


def pack_sorted_ids(ids: Sequence[int]) -> "tuple[int, bytes] | None":
    """Pack a strictly increasing id run into ``(base, words_bytes)``.

    Returns ``None`` when the run is empty, not strictly increasing, or too
    sparse for the packed words to undercut the raw ``array('Q')`` bytes by
    at least 2x — the caller then ships the id column unchanged.  Round trip
    via :func:`unpack_ids` reproduces the exact input order, which is why the
    monotonicity check is part of the contract (an unsorted run would come
    back reordered).
    """
    count = len(ids)
    if count < 64:
        return None
    first = ids[0]
    last = ids[-1]
    if first < 0 or last < first:
        return None
    base = (first >> 6) << 6
    nwords = ((last - base) >> 6) + 1
    if nwords * 2 > count:  # packed words must be at least 2x smaller
        return None
    np = numpy_module()
    if np is not None:
        if isinstance(ids, array) and ids.typecode == "Q":
            column = np.frombuffer(ids, np.uint64)
        else:
            try:
                column = np.asarray(ids, np.uint64)
            except (TypeError, OverflowError):
                return None
        if not bool((column[1:] > column[:-1]).all()):
            return None
    else:
        previous = -1
        for record_id in ids:
            if record_id <= previous:
                return None
            previous = record_id
    dense = DensePostings.from_sorted_ids(ids)
    if popcount_words(dense.words) != count:
        return None  # belt and braces: duplicates would fold into one bit
    return base, dense.words.tobytes()


def unpack_ids(base: int, words_bytes: bytes) -> "array":
    """Inverse of :func:`pack_sorted_ids`: the ascending id column."""
    words = array("Q")
    words.frombytes(words_bytes)
    return extract_set_bits(words, base)


# -- process-wide representation / kernel telemetry ------------------------------------

_counter_lock = threading.Lock()
_repr_counts: dict[str, int] = {REPR_ARRAY: 0, REPR_BITMAP: 0}
#: kernel name -> [invocations, cumulative seconds]
_kernel_stats: dict[str, list] = {}


def record_repr_choice(repr_tag: str, count: int = 1) -> None:
    """Count one posting run decoded under ``repr_tag`` (feeds ``/metrics``)."""
    with _counter_lock:
        _repr_counts[repr_tag] = _repr_counts.get(repr_tag, 0) + count


def record_kernel(kernel: str, seconds: float) -> None:
    """Accumulate one bitmap-kernel invocation's wall time (feeds ``/metrics``)."""
    with _counter_lock:
        slot = _kernel_stats.get(kernel)
        if slot is None:
            slot = _kernel_stats[kernel] = [0, 0.0]
        slot[0] += 1
        slot[1] += seconds


def repr_counters() -> dict[str, int]:
    """Snapshot of decoded-run counts by representation."""
    with _counter_lock:
        return dict(_repr_counts)


def kernel_counters() -> dict[str, tuple[int, float]]:
    """Snapshot of ``kernel -> (calls, cumulative seconds)``."""
    with _counter_lock:
        return {name: (slot[0], slot[1]) for name, slot in _kernel_stats.items()}
