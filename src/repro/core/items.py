"""Item vocabulary and the frequency-based total order ``<_D`` (Equation 1).

The OIF orders the items of the active domain by *support* (how many records
contain the item), breaking ties by the items' natural (alphanumeric) order:

    o_i <_D o_j  iff  s(o_i) > s(o_j), or s(o_i) = s(o_j) and o_i < o_j

The most frequent item is therefore the *smallest* in ``<_D``.  Internally the
library works with **ranks**: rank 0 is the smallest (most frequent) item,
rank ``|I| - 1`` the largest (least frequent).  Every sequence form, tag, RoI
bound and metadata region is expressed in rank space, which makes comparisons
cheap and key encodings compact.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro.errors import DatasetError, QueryError

Item = Hashable


class Vocabulary:
    """The active domain of the set-valued attribute, with support counts."""

    def __init__(self, supports: Mapping[Item, int]) -> None:
        if not supports:
            raise DatasetError("a vocabulary cannot be empty")
        for item, support in supports.items():
            if support <= 0:
                raise DatasetError(f"item {item!r} has non-positive support {support}")
        self._supports: dict[Item, int] = dict(supports)

    @classmethod
    def from_transactions(cls, transactions: Iterable[Iterable[Item]]) -> "Vocabulary":
        """Count item supports over an iterable of item collections."""
        counter: Counter = Counter()
        for transaction in transactions:
            for item in set(transaction):
                counter[item] += 1
        return cls(counter)

    def support(self, item: Item) -> int:
        """Number of records that contain ``item`` (0 if unknown)."""
        return self._supports.get(item, 0)

    def __contains__(self, item: Item) -> bool:
        return item in self._supports

    def __len__(self) -> int:
        return len(self._supports)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._supports)

    def items_with_support(self) -> Iterator[tuple[Item, int]]:
        """Iterate ``(item, support)`` pairs in unspecified order."""
        return iter(self._supports.items())

    def frequency_order(self) -> "ItemOrder":
        """Build the ``<_D`` total order of Equation 1 over this vocabulary."""
        ordered = sorted(
            self._supports.items(), key=lambda pair: (-pair[1], _sort_token(pair[0]))
        )
        return ItemOrder([item for item, _ in ordered], supports=self._supports)


def _sort_token(item: Item) -> tuple[str, str]:
    """Tie-break key for items of heterogeneous types (alphabetic order)."""
    return (type(item).__name__, str(item))


class ItemOrder:
    """A total order over items; position 0 is the smallest item in ``<_D``.

    Besides the paper's frequency order, any explicit item sequence can be
    used (e.g. alphanumeric order), which the ablation experiments exploit.
    """

    def __init__(self, items_in_order: Sequence[Item], supports: Mapping[Item, int] | None = None) -> None:
        if not items_in_order:
            raise DatasetError("an item order cannot be empty")
        self._items: list[Item] = list(items_in_order)
        self._rank: dict[Item, int] = {}
        for rank, item in enumerate(self._items):
            if item in self._rank:
                raise DatasetError(f"item {item!r} appears twice in the order")
            self._rank[item] = rank
        self._supports = dict(supports) if supports is not None else {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Item) -> bool:
        return item in self._rank

    @property
    def max_rank(self) -> int:
        """Rank of the largest (least frequent) item, i.e. ``|I| - 1``."""
        return len(self._items) - 1

    def rank_of(self, item: Item) -> int:
        """Return the rank of ``item``; raises :class:`QueryError` if unknown."""
        try:
            return self._rank[item]
        except KeyError:
            raise QueryError(f"item {item!r} is not part of the indexed vocabulary") from None

    def try_rank_of(self, item: Item) -> int | None:
        """Return the rank of ``item`` or ``None`` if it is not in the domain."""
        return self._rank.get(item)

    def item_at(self, rank: int) -> Item:
        """Inverse of :meth:`rank_of`."""
        if not 0 <= rank < len(self._items):
            raise QueryError(f"rank {rank} out of range for a domain of {len(self._items)} items")
        return self._items[rank]

    def support(self, item: Item) -> int:
        """Support recorded for ``item`` at order-construction time (0 if unknown)."""
        return self._supports.get(item, 0)

    def ranks_of(self, items: Iterable[Item]) -> tuple[int, ...]:
        """Map ``items`` to their ranks, sorted ascending (the sequence form order)."""
        return tuple(sorted(self._rank[item] for item in items))

    def items_of(self, ranks: Iterable[int]) -> tuple[Item, ...]:
        """Map ranks back to items, preserving the given order."""
        return tuple(self.item_at(rank) for rank in ranks)

    def compare(self, left: Item, right: Item) -> int:
        """Three-way ``<_D`` comparison: negative if ``left <_D right``."""
        return self.rank_of(left) - self.rank_of(right)

    def items_in_order(self) -> tuple[Item, ...]:
        """All items, smallest (most frequent) first."""
        return tuple(self._items)
