"""Sequence forms and their order-preserving byte encoding.

Definition 1 of the paper: the *sequence form* ``sf(v)`` of a set-value ``v``
lists its items in increasing ``<_D`` order.  Set-values are then compared
lexicographically on their sequence forms; the empty set is smallest and a
proper prefix precedes any of its extensions.

In this library a sequence form is simply a tuple of item **ranks** sorted in
ascending order, so Python's native tuple comparison *is* the lexicographic
order of Definition 1.  What this module adds is an **order-preserving byte
encoding** used for B-tree keys: plain ``bytes`` comparison of the encodings
must agree with tuple comparison of the sequence forms, including the
prefix-comes-first rule.

Encoding
--------
Each rank ``r`` is written as the 4-byte big-endian value ``r + 1`` (so the
value 0 never appears inside a tag) and the tag ends with a 4-byte zero
terminator.  Because the terminator is smaller than any encoded rank, a
proper prefix sorts before its extensions, exactly like the tuples do.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from repro.core.items import Item, ItemOrder
from repro.errors import IndexBuildError

SequenceForm = tuple[int, ...]

_RANK = struct.Struct(">I")
_RANK_SIZE = _RANK.size
_TERMINATOR = b"\x00\x00\x00\x00"
#: Upper bound on ranks imposed by the fixed-width encoding (4 bytes minus the +1 shift).
MAX_RANK = 0xFFFFFFFE


def sequence_form(items: Iterable[Item], order: ItemOrder) -> SequenceForm:
    """Return the sequence form (sorted rank tuple) of a set of items."""
    return tuple(sorted(order.rank_of(item) for item in items))


def sequence_form_from_ranks(ranks: Iterable[int]) -> SequenceForm:
    """Normalise an iterable of ranks into a sorted, duplicate-free tuple."""
    return tuple(sorted(set(ranks)))


def compare(left: SequenceForm, right: SequenceForm) -> int:
    """Three-way lexicographic comparison of two sequence forms."""
    if left == right:
        return 0
    return -1 if left < right else 1


def encode_tag(ranks: Sequence[int]) -> bytes:
    """Encode a sequence form as an order-preserving, self-terminated byte string."""
    out = bytearray()
    previous = -1
    for rank in ranks:
        if rank < 0 or rank > MAX_RANK:
            raise IndexBuildError(f"rank {rank} cannot be encoded in a 4-byte tag element")
        if rank <= previous:
            raise IndexBuildError(
                f"tag ranks must be strictly increasing, got {previous} then {rank}"
            )
        out += _RANK.pack(rank + 1)
        previous = rank
    out += _TERMINATOR
    return bytes(out)


def decode_tag(data: bytes, offset: int = 0) -> tuple[SequenceForm, int]:
    """Decode a tag previously produced by :func:`encode_tag`.

    Returns ``(ranks, next_offset)`` where ``next_offset`` points just past the
    terminator.
    """
    ranks: list[int] = []
    pos = offset
    while True:
        if pos + _RANK_SIZE > len(data):
            raise IndexBuildError("truncated tag encoding")
        (value,) = _RANK.unpack_from(data, pos)
        pos += _RANK_SIZE
        if value == 0:
            return tuple(ranks), pos
        ranks.append(value - 1)


def encode_rank(rank: int) -> bytes:
    """Encode a single rank (or record id) as 4-byte big-endian."""
    if rank < 0 or rank > 0xFFFFFFFF:
        raise IndexBuildError(f"value {rank} does not fit in 4 bytes")
    return _RANK.pack(rank)


def decode_rank(data: bytes, offset: int = 0) -> int:
    """Inverse of :func:`encode_rank`."""
    (value,) = _RANK.unpack_from(data, offset)
    return value
