"""The OIF metadata table (Theorem 1).

After records are renumbered in lexicographic sequence-form order, all records
whose *smallest* (most frequent) item is ``o`` occupy one contiguous region
``[l, u]`` of the id space.  The OIF therefore never stores a posting for a
record's smallest item; it stores the region boundaries in a small metadata
table instead, which removes one posting per record (``1/l`` of all postings,
with ``l`` the average record length).

For superset queries the table also needs the boundary ``u1`` of the
sub-region ``[l, u1]`` that holds the *single-item* records ``{o}`` (see the
footnote to Definition 4): these records appear in no inverted list at all, so
the superset algorithm adds them straight from the metadata.

The metadata table is tiny (one entry per item) and, as in the paper, is kept
in main memory; consulting it costs no page accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping


@dataclass(frozen=True)
class MetadataRegion:
    """Id region of the records whose smallest item has a given rank.

    Attributes
    ----------
    item_rank:
        Rank of the smallest item shared by every record in the region.
    lower / upper:
        First and last record id of the region (inclusive).
    singleton_upper:
        Last id of the single-item records ``{item}``; equals ``lower - 1``
        when the region contains no single-item record (so the singleton range
        ``[lower, singleton_upper]`` is empty).
    """

    item_rank: int
    lower: int
    upper: int
    singleton_upper: int

    def __contains__(self, record_id: int) -> bool:
        return self.lower <= record_id <= self.upper

    @property
    def size(self) -> int:
        """Number of record ids covered by the region."""
        return self.upper - self.lower + 1

    @property
    def singleton_ids(self) -> range:
        """Ids of the single-item records ``{item}`` inside the region."""
        return range(self.lower, self.singleton_upper + 1)

    @property
    def multi_item_ids(self) -> range:
        """Ids of the records in the region that have two or more items."""
        return range(self.singleton_upper + 1, self.upper + 1)


class MetadataTable:
    """In-memory map from item rank to its :class:`MetadataRegion`."""

    def __init__(self, regions: Mapping[int, MetadataRegion]) -> None:
        self._regions: dict[int, MetadataRegion] = dict(regions)

    def region_for(self, item_rank: int) -> MetadataRegion | None:
        """Region of records whose smallest item has ``item_rank`` (or ``None``)."""
        return self._regions.get(item_rank)

    def contains(self, item_rank: int, record_id: int) -> bool:
        """Is ``record_id`` a record whose smallest item has ``item_rank``?"""
        region = self._regions.get(item_rank)
        return region is not None and record_id in region

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[MetadataRegion]:
        return iter(self._regions.values())

    def covered_postings(self) -> int:
        """Total number of postings the metadata table replaces."""
        return sum(region.size for region in self._regions.values())

    def validate_partition(self, num_records: int) -> None:
        """Check that the regions partition ``[1, num_records]`` without gaps.

        Used by the test suite: the regions must be disjoint, contiguous and
        ordered by item rank (more frequent items own earlier regions).
        """
        regions = sorted(self._regions.values(), key=lambda region: region.lower)
        expected_next = 1
        previous_rank = -1
        for region in regions:
            if region.lower != expected_next:
                raise AssertionError(
                    f"metadata regions leave a gap before id {region.lower} "
                    f"(expected {expected_next})"
                )
            if region.upper < region.lower:
                raise AssertionError(f"region for rank {region.item_rank} is inverted")
            if not region.lower - 1 <= region.singleton_upper <= region.upper:
                raise AssertionError(
                    f"singleton boundary {region.singleton_upper} outside region "
                    f"[{region.lower}, {region.upper}]"
                )
            if region.item_rank <= previous_rank:
                raise AssertionError("metadata regions are not ordered by item rank")
            previous_rank = region.item_rank
            expected_next = region.upper + 1
        if expected_next != num_records + 1:
            raise AssertionError(
                f"metadata regions cover ids up to {expected_next - 1}, "
                f"but the dataset has {num_records} records"
            )
