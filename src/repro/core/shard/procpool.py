"""Multiprocess shard execution: per-worker processes owning fixed shard sets.

Threaded fan-out (:func:`~repro.core.shard.sharded.run_sharing_pool`) keeps
page counts exact but buys little wall clock for CPU-bound probes — the GIL
serializes the decode/intersect work.  Shards are shared-nothing (one private
storage environment each), so the process boundary is natural: this module
runs each shard inside a long-lived worker process that holds the shard
*open*, and ships only expressions in and columnar results out.

How a :class:`ShardProcessPool` works:

* **images** — every shard's environment is snapshotted verbatim
  (:func:`~repro.durability.state.copy_environment` +
  :func:`~repro.durability.state.dump_state`, the PR-7 on-disk format) into a
  pool-private temp directory, or borrowed from a durable store's current
  generation files.  Page ids are preserved, so the worker's page-access
  accounting is bit-identical to the parent's;
* **workers** — one spawn-context, single-process executor per worker slot.
  Each worker opens a fixed subset of shards at startup
  (:func:`~repro.durability.state.load_environment` +
  :func:`~repro.durability.state.load_oif`) and keeps them warm across
  queries.  Pinning shards to workers is what makes targeted invalidation
  (and targeted respawn after a crash) possible — the stdlib pool cannot
  route tasks to a chosen process;
* **IPC** — queries travel as canonical expression dicts
  (:meth:`~repro.core.query.expr.Expr.to_dict`); results come back as the
  wire shape of ``PostingColumns``: flat ``array('Q')`` buffers, inlined as
  bytes or placed in :mod:`multiprocessing.shared_memory` above a size
  threshold.  Each shard's answer carries its exact
  :class:`~repro.storage.stats.IOSnapshot`, which the parent absorbs into
  both the caller's read context and the shard's own buffer-pool totals — so
  ``sum(contexts) == totals`` keeps holding across the process boundary;
* **updates** — writes never cross the boundary.  Delta buffers and
  tombstones live in the parent (see
  :meth:`repro.core.updates._UpdatableBase._merge_delta_and_slice`); after a
  flush rebuilds shards, :meth:`ShardProcessPool.refresh` re-images exactly
  the rebuilt positions and tells their owning workers to reopen them;
* **faults** — a worker killed mid-query breaks only its own executor: the
  in-flight query fails with a clear :class:`~repro.errors.QueryError`, the
  pool respawns that worker from the current images, and the next query is
  served normally.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import tempfile
import threading
import time
from array import array
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import TYPE_CHECKING, Iterator, Sequence

from repro import deadline as _deadline
from repro.core.query.expr import Expr, Limit, expr_from_dict
from repro.errors import QueryError
from repro.obs import trace
from repro.storage.stats import IOSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.query.planner import Plan
    from repro.core.shard.sharded import ShardedIndex

#: Result buffers at or above this many bytes ride in shared memory instead
#: of being pickled inline through the result pipe.
DEFAULT_SHM_THRESHOLD = 1 << 20

#: Raw id columns at or above this many bytes are considered for the packed
#: bitmap wire form (below it the conversion costs more than it saves).
_BITMAP_WIRE_BYTES = 1 << 12

#: Option value types that survive the JSON state file round trip.
_JSON_SCALARS = (str, int, float, bool)


@dataclass(frozen=True)
class ShardImage:
    """Pointer to one shard's on-disk snapshot (pages + JSON state).

    ``owned`` marks images written by the pool itself (into its temp
    directory) — those are deleted when superseded; borrowed images (a
    durable store's generation files) are left alone.
    """

    position: int
    pages_path: str
    state_path: str
    page_size: int
    cache_bytes: int
    owned: bool = True


@dataclass(frozen=True)
class _Task:
    """One worker's slice of a fanned-out query (all shards it owns)."""

    positions: tuple[int, ...]
    expr: dict
    cap: "int | None"
    sort: bool
    shm_threshold: int
    traced: bool
    #: Remaining wall-clock budget in ms (a monotonic deadline cannot cross
    #: the process boundary; the worker re-arms a local one from this).
    deadline_ms: "float | None" = None


@dataclass
class RemoteShardResult:
    """One shard's answer as received from its worker."""

    position: int
    ids: Sequence[int]
    io: IOSnapshot
    elapsed_ms: float
    trace_tree: "dict | None" = None


# -- columnar IPC payloads -------------------------------------------------------------


def _pack_raw(raw: bytes, shm_threshold: int) -> tuple:
    """Ship raw bytes inline, or through shared memory at/above the threshold."""
    if shm_threshold and len(raw) >= shm_threshold:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=max(1, len(raw)))
        try:
            segment.buf[: len(raw)] = raw
        finally:
            segment.close()
        return ("shm", segment.name, len(raw))
    return ("inline", raw)


def _unpack_raw(payload: tuple) -> bytes:
    """Inverse of :func:`_pack_raw` (unlinking any shared-memory segment)."""
    if payload[0] == "inline":
        return payload[1]
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=payload[1])
    try:
        return bytes(segment.buf[: payload[2]])
    finally:
        segment.close()
        segment.unlink()


def _pack_ids(ids: Sequence[int], shm_threshold: int) -> tuple:
    """Encode a sorted/produced id sequence as a u64 column payload.

    Dense, strictly increasing runs ship as a packed bitmap —
    ``("bitmap", base, words_payload)`` via
    :func:`repro.core.postings.pack_sorted_ids`, which only engages when the
    packed words undercut the raw column by at least 2x; the parent converts
    back to the identical ascending column at the boundary.  Everything else
    ships as the raw ``array('Q')`` bytes.  Either form rides inline in the
    pickled return value below ``shm_threshold`` bytes and through a
    shared-memory segment at or above it (the worker creates and fills the
    segment, the parent unlinks it after copying out).  Ids that overflow u64
    fall back to a plain pickled list — correctness over compactness.
    """
    try:
        raw = array("Q", ids).tobytes()
    except (OverflowError, TypeError):
        return ("object", list(ids))
    if len(raw) >= _BITMAP_WIRE_BYTES:
        from repro.core.postings import pack_sorted_ids

        packed = pack_sorted_ids(
            ids if isinstance(ids, array) else array("Q", ids)
        )
        if packed is not None:
            base, words = packed
            return ("bitmap", base, _pack_raw(words, shm_threshold))
    return _pack_raw(raw, shm_threshold)


def _unpack_ids(payload: tuple) -> Sequence[int]:
    """Decode a payload produced by :func:`_pack_ids` (unlinking any shm)."""
    kind = payload[0]
    if kind == "object":
        return payload[1]
    if kind == "bitmap":
        from repro.core.postings import unpack_ids

        return unpack_ids(payload[1], _unpack_raw(payload[2]))
    out = array("Q")
    out.frombytes(_unpack_raw(payload))
    return out


# -- worker-side entry points ----------------------------------------------------------
#
# These run inside the worker process.  State lives in a module-level dict:
# each worker process is single-threaded and owns exactly the shards its
# initializer (or a later reload) opened.

_WORKER_SHARDS: dict = {}


def _open_image(image: ShardImage) -> None:
    from repro.durability.state import load_environment, load_oif

    env = load_environment(image.pages_path, image.page_size, image.cache_bytes)
    with open(image.state_path, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    _WORKER_SHARDS[image.position] = load_oif(env, state)


def _worker_init(images: "tuple[ShardImage, ...]") -> None:
    # A foreground Ctrl-C is delivered to the whole process group; the
    # parent coordinates shutdown (executor close / SIGTERM), so workers
    # ignoring SIGINT just avoids a KeyboardInterrupt traceback race.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    for image in images:
        _open_image(image)


def _worker_reload(
    images: "tuple[ShardImage, ...]", removed: "tuple[int, ...]" = ()
) -> list:
    """Reopen refreshed shards and drop positions that became empty."""
    for position in removed:
        _WORKER_SHARDS.pop(position, None)
    for image in images:
        _open_image(image)
    return sorted(_WORKER_SHARDS)


def _worker_evaluate(task: _Task) -> list:
    """Evaluate one expression on every shard this worker owns."""
    inner = expr_from_dict(task.expr)
    expr = inner if task.cap is None else Limit(inner, count=task.cap)
    token = None
    if task.deadline_ms is not None:
        # Arm a local deadline from the shipped remaining budget; an already
        # exhausted budget raises here, before any page is read.  The page
        # accesses each shard *did* perform before expiry are still counted
        # in its cursor context — but an expired worker raises instead of
        # returning, so the parent absorbs nothing and the worker-side pool
        # totals (discarded with the image on refresh) stay self-consistent.
        token = _deadline.activate(_deadline.Deadline.after_ms(task.deadline_ms))
    out = []
    try:
        out = _worker_evaluate_shards(task, expr)
    finally:
        if token is not None:
            _deadline.deactivate(token)
    return out


def _worker_evaluate_shards(task: _Task, expr: Expr) -> list:
    out = []
    for position in task.positions:
        shard = _WORKER_SHARDS.get(position)
        if shard is None:
            raise QueryError(
                f"shard worker (pid {os.getpid()}) does not hold shard {position}"
            )
        root = None
        if task.traced:
            trace.configure(enabled=True)
            root = trace.begin("shard", shard=position, pid=os.getpid())
        started = time.perf_counter()
        try:
            cursor = shard.execute(expr)
            ids = cursor.fetch_all()
        finally:
            tree = trace.finish(root)
            if task.traced:
                trace.disable()
        if task.sort:
            ids.sort()
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        out.append(
            {
                "position": position,
                "ids": _pack_ids(ids, task.shm_threshold),
                "io": cursor.io_delta(),
                "elapsed_ms": elapsed_ms,
                "trace": tree,
            }
        )
    return out


def _worker_drop_caches() -> int:
    """Drop every held shard's buffer-pool and decoded caches (benchmarks)."""
    for shard in _WORKER_SHARDS.values():
        shard.drop_cache()
    return len(_WORKER_SHARDS)


def _worker_pid() -> int:
    return os.getpid()


# -- the parent-side pool --------------------------------------------------------------


@dataclass
class _Worker:
    """One worker slot: its single-process executor plus the shards it holds."""

    executor: ProcessPoolExecutor
    images: dict = field(default_factory=dict)


class RemoteShardCursor:
    """Parent-side stand-in for one shard's cursor, fed from a worker result.

    Quacks like a :class:`~repro.core.query.cursor.Cursor` for everything the
    merge layer touches: iteration in the shard's production order, the
    physical ``plan`` (computed by the parent's planner — planning reads no
    pages) and ``io_delta`` reporting the worker's exact snapshot.
    """

    def __init__(self, plan: "Plan", ids: Sequence[int], io: IOSnapshot) -> None:
        self.plan = plan
        self._ids = iter(ids)
        self._io = io

    def __iter__(self) -> Iterator[int]:
        return self

    def __next__(self) -> int:
        return next(self._ids)

    def fetch_all(self) -> list:
        return list(self)

    def io_delta(self) -> IOSnapshot:
        return self._io


class ShardProcessPool:
    """Persistent process backend executing a :class:`ShardedIndex`'s shards.

    Parameters
    ----------
    index:
        The sharded index to serve.  Every live shard must sit on a
        catalog-enabled environment (``Environment(catalog=True)``) — the
        page-image format needs the page-0 catalog to reopen tables.
    num_workers:
        Worker processes; defaults to ``min(cpu_count, live shards)``.
        Shards are pinned round-robin: position *i* (in live order) belongs
        to worker ``i % num_workers``.
    options:
        The index keyword arguments the shards were built with (``compress``,
        ``use_metadata``, ...), recorded in each image's state file so the
        worker-side reopen decodes blocks identically.  Defaults to the
        options captured by the index itself.
    images:
        Optional pre-existing images (position → :class:`ShardImage`), e.g.
        a durable store's checkpointed generation files; positions not named
        are materialized into the pool's temp directory as usual.
    shm_threshold:
        Byte size at which result columns switch from inline pickling to
        shared memory; ``0`` disables shared memory entirely.
    """

    def __init__(
        self,
        index: "ShardedIndex",
        num_workers: "int | None" = None,
        *,
        options: "dict | None" = None,
        images: "dict[int, ShardImage] | None" = None,
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
    ) -> None:
        self.index = index
        if options is None:
            options = getattr(index, "_index_options", None)
        if options is None:
            raise QueryError(
                "the process backend needs the shards' index options to "
                "reopen them; pass options= (or build the index without a "
                "custom factory)"
            )
        for key, value in options.items():
            if value is not None and not isinstance(value, _JSON_SCALARS):
                raise QueryError(
                    f"index option {key}={value!r} is not JSON-representable; "
                    "the process backend cannot ship it to workers"
                )
        self._options = dict(options)
        self._shm_threshold = shm_threshold
        self._dir = tempfile.mkdtemp(prefix="repro-procpool-")
        self._version = 0
        self._closed = False
        self._lock = threading.Lock()
        self._ctx = get_context("spawn")
        positions = [
            position
            for position in range(index.num_shards)
            if index.shard_at(position) is not None
        ]
        if not positions:
            raise QueryError("the process backend needs at least one live shard")
        if num_workers is None:
            num_workers = min(os.cpu_count() or 1, len(positions))
        if num_workers < 1:
            raise QueryError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = min(num_workers, len(positions))
        borrowed = dict(images or {})
        self._workers: list[_Worker] = []
        try:
            for worker_idx in range(self.num_workers):
                owned = positions[worker_idx :: self.num_workers]
                worker_images = {
                    position: borrowed.get(position) or self._materialize(position)
                    for position in owned
                }
                self._workers.append(self._spawn(worker_images))
            # Force every worker process to start (and run its initializer
            # over today's images) now: the stdlib executor spawns lazily on
            # first submit, and a later refresh() may have replaced the image
            # files the frozen initargs point at.  Spawns overlap.
            for future in [
                worker.executor.submit(_worker_pid) for worker in self._workers
            ]:
                future.result()
        except BaseException:
            self.close()
            raise

    # -- image management --------------------------------------------------------------

    def _materialize(self, position: int) -> ShardImage:
        """Snapshot one live shard's pages + state into the pool's temp dir."""
        from repro.durability.state import copy_environment, dump_state

        shard = self.index.shard_at(position)
        env = getattr(shard, "env", None)
        if env is None or not getattr(env, "has_catalog", False):
            raise QueryError(
                "the process backend opens shards from page images, which "
                f"requires catalog-enabled environments; shard {position} "
                "has none (build the index with Environment(catalog=True) "
                "envs, e.g. via durable_env_factory)"
            )
        self._version += 1
        base = os.path.join(self._dir, f"shard-{position:02d}-v{self._version}")
        pages_path = base + ".pages.db"
        state_path = base + ".state.json"
        copy_environment(env, pages_path)
        with open(state_path, "w", encoding="utf-8") as handle:
            json.dump(dump_state(shard, self._options), handle, separators=(",", ":"))
        return ShardImage(
            position=position,
            pages_path=pages_path,
            state_path=state_path,
            page_size=env.page_size,
            cache_bytes=env.cache_pages * env.page_size,
        )

    def _discard_image(self, image: "ShardImage | None") -> None:
        if image is None or not image.owned:
            return
        for path in (image.pages_path, image.state_path):
            try:
                os.remove(path)
            except OSError:
                pass

    # -- worker lifecycle --------------------------------------------------------------

    def _spawn(self, images: "dict[int, ShardImage]") -> _Worker:
        executor = ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._ctx,
            initializer=_worker_init,
            initargs=(tuple(images.values()),),
        )
        return _Worker(executor=executor, images=dict(images))

    def _respawn(self, worker_idx: int) -> None:
        """Replace a broken worker with a fresh one over the current images."""
        with self._lock:
            if self._closed:
                return
            old = self._workers[worker_idx]
            old.executor.shutdown(wait=False, cancel_futures=True)
            self._workers[worker_idx] = self._spawn(old.images)

    def worker_pids(self) -> "list[int]":
        """The live worker process ids, in worker-slot order."""
        self._check_open()
        futures = [worker.executor.submit(_worker_pid) for worker in self._workers]
        return [future.result() for future in futures]

    def drop_caches(self) -> None:
        """Drop every worker-held shard cache (cold-cache benchmark runs)."""
        self._check_open()
        futures = [
            worker.executor.submit(_worker_drop_caches) for worker in self._workers
        ]
        for future in futures:
            future.result()

    def _check_open(self) -> None:
        if self._closed:
            raise QueryError("the shard process pool is closed")

    # -- execution ---------------------------------------------------------------------

    def evaluate(
        self, inner: Expr, *, cap: "int | None" = None, sort: bool = True
    ) -> "dict[int, RemoteShardResult]":
        """Run ``inner`` on every held shard; returns per-position results.

        ``cap`` pushes a per-shard ``Limit(count=cap)`` down to the workers
        (the streaming-execute path: no shard can contribute more than the
        whole slice needs); ``sort`` asks workers to sort ids ascending (the
        fanout-evaluate path) instead of keeping production order.

        A worker that dies mid-query (OOM-killed, segfaulted, ``kill -9``)
        fails *this* query with a :class:`QueryError` naming the worker; the
        pool respawns it from the current images before raising, so the next
        query runs normally.

        When the calling context has a :mod:`repro.deadline` armed, the
        *remaining* budget ships with each task and every worker arms a local
        deadline from it — an expired query stops reading pages inside the
        workers and the fan-out raises
        :class:`~repro.errors.DeadlineExceededError` here.
        """
        self._check_open()
        armed = _deadline.current()
        deadline_ms: "float | None" = None
        if armed is not None:
            # Fail before paying the IPC round trip on a spent budget.
            armed.check()
            deadline_ms = armed.remaining_ms()
        wire = inner.to_dict()
        traced = trace.is_active()
        submitted: list = []
        with self._lock:
            workers = list(self._workers)
        for worker_idx, worker in enumerate(workers):
            if not worker.images:
                continue
            task = _Task(
                positions=tuple(sorted(worker.images)),
                expr=wire,
                cap=cap,
                sort=sort,
                shm_threshold=self._shm_threshold,
                traced=traced,
                deadline_ms=deadline_ms,
            )
            try:
                submitted.append(
                    (worker_idx, worker.executor.submit(_worker_evaluate, task))
                )
            except (BrokenProcessPool, RuntimeError) as error:
                self._respawn(worker_idx)
                raise QueryError(
                    f"shard worker {worker_idx} is unavailable "
                    f"({error}); it has been respawned — retry the query"
                ) from error
        results: dict[int, RemoteShardResult] = {}
        broken: list[int] = []
        failure: "BaseException | None" = None
        for worker_idx, future in submitted:
            try:
                entries = future.result()
            except BrokenProcessPool as error:
                broken.append(worker_idx)
                failure = failure or error
                continue
            except BaseException as error:  # worker-raised (e.g. QueryError)
                failure = failure or error
                continue
            for entry in entries:
                results[entry["position"]] = RemoteShardResult(
                    position=entry["position"],
                    ids=_unpack_ids(entry["ids"]),
                    io=entry["io"],
                    elapsed_ms=entry["elapsed_ms"],
                    trace_tree=entry["trace"],
                )
        for worker_idx in broken:
            self._respawn(worker_idx)
        if broken:
            raise QueryError(
                f"shard worker(s) {broken} died mid-query; the in-flight "
                "query failed and the worker(s) have been respawned — retry "
                "the query"
            ) from failure
        if failure is not None:
            raise failure
        return results

    # -- invalidation ------------------------------------------------------------------

    def refresh(self, positions: "Sequence[int]") -> None:
        """Re-image rebuilt shard positions and reopen them in their workers.

        Called after :meth:`ShardedIndex.absorb` (under the updatable
        wrapper's write lock, so no query races the reload).  Positions whose
        shard became empty are dropped from their worker; positions that
        newly came alive are assigned to the least-loaded worker.
        """
        self._check_open()
        by_worker: dict[int, tuple[list, list]] = {}
        stale: list = []
        with self._lock:
            owner_of = {
                position: worker_idx
                for worker_idx, worker in enumerate(self._workers)
                for position in worker.images
            }
            for position in sorted(set(positions)):
                shard = self.index.shard_at(position)
                worker_idx = owner_of.get(position)
                if worker_idx is None:
                    if shard is None:
                        continue
                    worker_idx = min(
                        range(len(self._workers)),
                        key=lambda idx: len(self._workers[idx].images),
                    )
                fresh, removed = by_worker.setdefault(worker_idx, ([], []))
                worker = self._workers[worker_idx]
                # Superseded images are deleted only after the reloads land:
                # a worker that hasn't spawned yet would run its initializer
                # over the old files and die on startup.
                stale.append(worker.images.pop(position, None))
                if shard is None:
                    removed.append(position)
                else:
                    image = self._materialize(position)
                    worker.images[position] = image
                    fresh.append(image)
            futures = [
                (
                    worker_idx,
                    self._workers[worker_idx].executor.submit(
                        _worker_reload, tuple(fresh), tuple(removed)
                    ),
                )
                for worker_idx, (fresh, removed) in by_worker.items()
            ]
        try:
            for worker_idx, future in futures:
                try:
                    future.result()
                except BrokenProcessPool as error:
                    # The respawn initializer reopens the *current* images,
                    # which already include the refreshed ones — recovery is
                    # complete.
                    self._respawn(worker_idx)
                    raise QueryError(
                        f"shard worker {worker_idx} died during refresh; it "
                        "has been respawned over the refreshed images"
                    ) from error
        finally:
            for image in stale:
                self._discard_image(image)

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Shut every worker down and remove the pool's image directory."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            self._workers = []
        for worker in workers:
            worker.executor.shutdown(wait=True, cancel_futures=True)
        shutil.rmtree(self._dir, ignore_errors=True)

    def __enter__(self) -> "ShardProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
