"""Partition-aware index layer: deterministic sharding with merged cursors.

The package splits a dataset over per-shard indexes (each with its own
storage environment), fans query expressions out to all shards, and merges
the per-shard streaming cursors while preserving ``limit``'s early-stop
semantics.  See :class:`ShardedIndex` for the entry point and
:mod:`repro.core.updates` for the delta-buffer wrapper
(``UpdatableShardedOIF``) that flushes shards independently.
"""

from repro.core.shard.merge import FanoutPlan, MergedShardCursor, merge_cursors
from repro.core.shard.partitioner import (
    HashPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    make_partitioner,
    stable_id_hash,
)
from repro.core.shard.procpool import (
    RemoteShardCursor,
    ShardImage,
    ShardProcessPool,
)
from repro.core.shard.sharded import (
    AbsorbReport,
    AggregateIOStatistics,
    ShardedIndex,
    ShardQueryStat,
    run_sharing_pool,
)

__all__ = [
    "AbsorbReport",
    "AggregateIOStatistics",
    "FanoutPlan",
    "HashPartitioner",
    "MergedShardCursor",
    "Partitioner",
    "RemoteShardCursor",
    "RoundRobinPartitioner",
    "ShardImage",
    "ShardProcessPool",
    "ShardQueryStat",
    "ShardedIndex",
    "make_partitioner",
    "merge_cursors",
    "run_sharing_pool",
    "stable_id_hash",
]
