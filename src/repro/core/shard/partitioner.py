"""Deterministic record partitioners for the sharded index layer.

A partitioner maps every record id to one of ``num_shards`` shards.  The
assignment must be a pure function of the id (never of insertion order or the
process' hash seed), because three independent code paths have to agree on it
forever:

* the initial sharded build splits the base dataset;
* the delta layer routes freshly inserted records to per-shard buffers;
* a rebuild re-partitions the merged dataset from scratch and must land every
  record in the shard its buffered inserts were already routed to.

Two strategies are provided.  ``hash`` scrambles ids through a splitmix64
finisher, giving a balanced pseudo-random spread that is robust to any id
pattern; ``round_robin`` stripes ids cyclically (``id % num_shards``), which
for the dense ids produced by :meth:`Dataset.from_transactions` yields
perfectly balanced, locality-preserving shards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Iterable

from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.records import Record

_MASK64 = (1 << 64) - 1


def stable_id_hash(record_id: int) -> int:
    """Scramble a record id with the splitmix64 finisher (seed-independent).

    Unlike the builtin ``hash``, the result never varies across processes, so
    shard assignments survive restarts and rebuilds.
    """
    z = (record_id + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class Partitioner:
    """Base class: a deterministic ``record id -> shard position`` mapping."""

    #: Wire/CLI name of the strategy ("hash" / "round_robin").
    strategy: ClassVar[str] = ""

    def __init__(self, num_shards: int) -> None:
        if not isinstance(num_shards, int) or num_shards < 1:
            raise QueryError(f"num_shards must be a positive int, got {num_shards!r}")
        self.num_shards = num_shards

    def shard_of(self, record_id: int) -> int:
        """The shard position (``0 <= position < num_shards``) owning ``record_id``."""
        raise NotImplementedError

    def split(self, records: Iterable["Record"]) -> list[list["Record"]]:
        """Partition records into ``num_shards`` groups (some may be empty)."""
        groups: list[list["Record"]] = [[] for _ in range(self.num_shards)]
        for record in records:
            groups[self.shard_of(record.record_id)].append(record)
        return groups

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class HashPartitioner(Partitioner):
    """Pseudo-random but deterministic spread via splitmix64 on the id."""

    strategy = "hash"

    def shard_of(self, record_id: int) -> int:
        return stable_id_hash(record_id) % self.num_shards


class RoundRobinPartitioner(Partitioner):
    """Cyclic striping of ids; dense ids land one-per-shard in rotation."""

    strategy = "round_robin"

    def shard_of(self, record_id: int) -> int:
        return record_id % self.num_shards


_STRATEGIES = {cls.strategy: cls for cls in (HashPartitioner, RoundRobinPartitioner)}


def make_partitioner(strategy: "str | Partitioner", num_shards: int) -> Partitioner:
    """Resolve a strategy name (or pass an instance through) into a partitioner."""
    if isinstance(strategy, Partitioner):
        if strategy.num_shards != num_shards:
            raise QueryError(
                f"partitioner covers {strategy.num_shards} shards, expected {num_shards}"
            )
        return strategy
    try:
        partitioner_class = _STRATEGIES[str(strategy).lower()]
    except KeyError:
        raise QueryError(
            f"unknown shard strategy {strategy!r}; expected one of {sorted(_STRATEGIES)}"
        ) from None
    return partitioner_class(num_shards)
