"""K-way merging of per-shard streaming cursors.

A sharded query fans one expression out to every shard and combines the
per-shard cursors into a single stream.  The merge must preserve the property
that makes cursors worth having: a ``limit k`` query stops reading pages as
soon as ``k`` ids have been produced.  :func:`merge_cursors` therefore pulls
from the shard cursors lazily and round-robin — no shard is drained beyond
the pulls the slice actually needs, and shards that cannot contribute are
dropped from the rotation the moment they run dry.

Shards partition the dataset, so the per-shard streams are disjoint and the
merge needs no deduplication.  Like every cursor, the merged stream yields in
*production* order (here: rotation order over the shards' plan orders), not
ascending id order; materializing callers sort afterwards.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.core.query.cursor import Cursor
from repro.core.query.expr import Expr
from repro.core.query.planner import Plan
from repro.storage.stats import IOSnapshot, ReadContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.shard.sharded import ShardedIndex


@dataclass(frozen=True)
class FanoutPlan(Plan):
    """Physical plan of a sharded execution: one sub-plan per live shard."""

    shard_plans: tuple[Plan, ...]
    count: "int | None" = None
    offset: int = 0

    def explain(self, depth: int = 0) -> str:
        header = f"{'  ' * depth}fanout over {len(self.shard_plans)} shard(s)"
        if self.count is not None or self.offset:
            header += f" [offset={self.offset}, count={self.count}]"
        lines = [header]
        for position, plan in enumerate(self.shard_plans):
            lines.append(f"{'  ' * (depth + 1)}shard {position}:")
            lines.append(plan.explain(depth + 2))
        return "\n".join(lines)


def merge_cursors(
    cursors: Sequence[Iterator[int]], count: "int | None" = None, offset: int = 0
) -> Iterator[int]:
    """Lazily interleave the shard streams, applying the slice while pulling.

    Exactly ``offset + count`` ids are pulled in total (fewer when the streams
    run dry), one at a time in rotation — the early-stop guarantee: a shard
    is never advanced further than the slice needs, so its underlying probe
    never reads pages for ids the query will not return.
    """
    live = deque(cursors)
    to_skip = offset
    remaining = count
    if remaining is not None and remaining <= 0:
        return
    while live:
        cursor = live.popleft()
        try:
            record_id = next(cursor)
        except StopIteration:
            continue
        live.append(cursor)
        if to_skip > 0:
            to_skip -= 1
            continue
        yield record_id
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                return


class MergedShardCursor(Cursor):
    """Cursor over the k-way merged streams of a sharded execution.

    Reuses every :class:`Cursor` affordance (``fetch``/``fetch_all``,
    ``io_delta`` via the owning index's aggregated snapshot, ``explain``),
    replacing only the plan interpreter with the round-robin merge.
    """

    def __init__(
        self,
        index: "ShardedIndex",
        shard_cursors: Sequence[Cursor],
        expr: Expr,
        count: "int | None" = None,
        offset: int = 0,
        ctx: "ReadContext | None" = None,
    ) -> None:
        self.index = index
        self.plan = FanoutPlan(
            tuple(cursor.plan for cursor in shard_cursors), count=count, offset=offset
        )
        self.expr = expr
        #: ``None`` by default — each shard cursor then owns a private
        #: context and ``io_delta`` sums them.  A caller-supplied context is
        #: the one every shard cursor shares, so it must be read directly
        #: (summing the per-cursor views would count it once per shard).
        self.ctx = ctx
        self.shard_cursors = tuple(shard_cursors)
        self._iterator = merge_cursors(self.shard_cursors, count=count, offset=offset)
        self._consumed = 0
        self._exhausted = False

    def io_delta(self) -> "IOSnapshot":
        """Sum of the shard cursors' per-context deltas.

        Each shard cursor owns a :class:`~repro.storage.stats.ReadContext`
        charged with exactly its traversal, so the sum is this query's exact
        page cost — immune both to other queries interleaving on the same
        shards and to an ``absorb``/flush swapping a shard mid-traversal
        (the context travels with the cursor, not with the owner's counters).
        """
        if self.ctx is not None:
            # Caller-shared context: every shard cursor charged this one
            # object, so read it once instead of summing N aliased views.
            return self.ctx.snapshot()
        total = IOSnapshot()
        for cursor in self.shard_cursors:
            total = total + cursor.io_delta()
        return total
