"""K-way merging of per-shard streaming cursors.

A sharded query fans one expression out to every shard and combines the
per-shard cursors into a single stream.  The merge must preserve the property
that makes cursors worth having: a ``limit k`` query stops reading pages as
soon as ``k`` ids have been produced.  :func:`merge_cursors` therefore pulls
from the shard cursors lazily and round-robin — no shard is drained beyond
the pulls the slice actually needs, and shards that cannot contribute are
dropped from the rotation the moment they run dry.

Shards partition the dataset, so the per-shard streams are disjoint and the
merge needs no deduplication.  Like every cursor, the merged stream yields in
*production* order (here: rotation order over the shards' plan orders), not
ascending id order; materializing callers sort afterwards.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.core.query.cursor import Cursor
from repro.core.query.expr import Expr
from repro.core.query.planner import Plan
from repro.storage.stats import IOSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.shard.sharded import ShardedIndex


@dataclass(frozen=True)
class FanoutPlan(Plan):
    """Physical plan of a sharded execution: one sub-plan per live shard."""

    shard_plans: tuple[Plan, ...]
    count: "int | None" = None
    offset: int = 0

    def explain(self, depth: int = 0) -> str:
        header = f"{'  ' * depth}fanout over {len(self.shard_plans)} shard(s)"
        if self.count is not None or self.offset:
            header += f" [offset={self.offset}, count={self.count}]"
        lines = [header]
        for position, plan in enumerate(self.shard_plans):
            lines.append(f"{'  ' * (depth + 1)}shard {position}:")
            lines.append(plan.explain(depth + 2))
        return "\n".join(lines)


def merge_cursors(
    cursors: Sequence[Iterator[int]], count: "int | None" = None, offset: int = 0
) -> Iterator[int]:
    """Lazily interleave the shard streams, applying the slice while pulling.

    Exactly ``offset + count`` ids are pulled in total (fewer when the streams
    run dry), one at a time in rotation — the early-stop guarantee: a shard
    is never advanced further than the slice needs, so its underlying probe
    never reads pages for ids the query will not return.
    """
    live = deque(cursors)
    to_skip = offset
    remaining = count
    if remaining is not None and remaining <= 0:
        return
    while live:
        cursor = live.popleft()
        try:
            record_id = next(cursor)
        except StopIteration:
            continue
        live.append(cursor)
        if to_skip > 0:
            to_skip -= 1
            continue
        yield record_id
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                return


class MergedShardCursor(Cursor):
    """Cursor over the k-way merged streams of a sharded execution.

    Reuses every :class:`Cursor` affordance (``fetch``/``fetch_all``,
    ``io_delta`` via the owning index's aggregated snapshot, ``explain``),
    replacing only the plan interpreter with the round-robin merge.
    """

    def __init__(
        self,
        index: "ShardedIndex",
        shard_cursors: Sequence[Cursor],
        expr: Expr,
        count: "int | None" = None,
        offset: int = 0,
    ) -> None:
        self.index = index
        self.plan = FanoutPlan(
            tuple(cursor.plan for cursor in shard_cursors), count=count, offset=offset
        )
        self.expr = expr
        self.shard_cursors = tuple(shard_cursors)
        self._iterator = merge_cursors(self.shard_cursors, count=count, offset=offset)
        self._consumed = 0
        self._exhausted = False

    def io_delta(self) -> "IOSnapshot":
        """Sum of the shard cursors' deltas (pinned to *their* shard indexes).

        Deliberately not a diff of the owning index's live aggregate view:
        an ``absorb``/flush that swaps a shard in mid-traversal would replace
        the counters an open-time snapshot was taken against.  Each shard
        cursor holds the shard object it reads, so its delta stays correct
        even after the owner moved on.
        """
        total = IOSnapshot()
        for cursor in self.shard_cursors:
            total = total + cursor.io_delta()
        return total
