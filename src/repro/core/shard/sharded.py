"""A partition-aware index that fans queries out over per-shard indexes.

:class:`ShardedIndex` implements the full
:class:`~repro.core.interfaces.SetContainmentIndex` contract by splitting the
dataset with a deterministic :mod:`partitioner <repro.core.shard.partitioner>`
and building one complete index (an OIF by default) per shard, each with its
*own* storage environment — its own pager, buffer pool and I/O counters.
That independence is what the surrounding layers exploit:

* shard builds and rebuilds are embarrassingly parallel and each sorts /
  B-tree-loads a fraction of the data, so even a serial sharded build beats
  the monolithic one on the super-linear parts of construction;
* :meth:`execute` returns a
  :class:`~repro.core.shard.merge.MergedShardCursor` over the per-shard
  streaming cursors, so ``limit k`` still stops reading pages after ``k`` ids;
* :meth:`fanout_evaluate` materializes per shard — optionally on a thread
  pool — and reports a per-shard page/latency breakdown for the service layer;
* :meth:`absorb` merges freshly inserted records by rebuilding *only the
  shards that received any*, which is what shrinks the OIF's batch-update
  merge cost.

I/O accounting is two-level, like everywhere else: per *query*, each shard
cursor (or fanned-out evaluation) carries its own
:class:`~repro.storage.stats.ReadContext` whose counts are exact under
concurrency; pool-wide, :meth:`SetContainmentIndex.io_snapshot` sums the
per-shard totals (:meth:`IOSnapshot.__add__`), so the experiment runner's
phase-level numbers stay comparable with the monolithic indexes.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro import deadline as _deadline
from repro.core.interfaces import SetContainmentIndex
from repro.core.oif import OrderedInvertedFile
from repro.core.query.expr import Expr, Leaf, slice_ids, split_limit
from repro.core.query.planner import Planner
from repro.core.records import Dataset, Record
from repro.core.shard.merge import FanoutPlan, MergedShardCursor
from repro.core.shard.partitioner import Partitioner, make_partitioner
from repro.core.shard.procpool import RemoteShardCursor
from repro.errors import QueryError
from repro.obs import trace
from repro.storage.stats import DiskModel, IOSnapshot, ReadContext

#: Builds one shard's index over that shard's records.
ShardFactory = Callable[[Dataset], SetContainmentIndex]

DEFAULT_NUM_SHARDS = 4


def _merge_sorted(streams: "Sequence[Sequence[int]]") -> list[int]:
    """Merge per-shard ascending id streams into one sorted list.

    Concatenate-then-sort beats ``heapq.merge`` here: Timsort detects the
    pre-sorted runs and gallops through them in C, while the heap pays a
    per-element Python-level comparison.  Only valid for *materialized*
    fan-out (the streaming path keeps its lazy heap merge for early-stop).
    """
    merged: list[int] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort()
    return merged


def run_sharing_pool(pool: "ThreadPoolExecutor | None", run, items: Sequence) -> list:
    """Run ``run(item)`` for every item, borrowing ``pool`` without deadlocking.

    Safe on a *shared* pool whose workers may themselves be blocked waiting
    on fan-outs: every task is submitted, then each is either awaited (it got
    a thread and, being lock-free, will finish) or — if ``Future.cancel()``
    succeeds because no worker ever picked it up — executed inline by the
    caller.  Progress is therefore guaranteed regardless of pool saturation,
    which is what lets the serving layer share one executor pool between
    query workers and shard fan-out instead of keeping a dedicated pool per
    resident index.  Results come back in item order.
    """
    if pool is None or len(items) < 2:
        return [run(item) for item in items]
    futures = []
    for item in items:
        try:
            # Each submission carries its own copy of the caller's trace
            # context *and* the caller's deadline, so spans opened in pool
            # workers nest under the submitting query and an expired query
            # stops reading pages on every shard (both wraps are identity
            # functions when tracing/deadlines are off).
            futures.append((item, pool.submit(trace.wrap(_deadline.wrap(run)), item)))
        except RuntimeError:
            # The pool is shutting down; the remaining items run inline so a
            # query already in flight still completes.
            futures.append((item, None))
    out = []
    for position, (item, future) in enumerate(futures):
        try:
            if future is None or future.cancel():
                out.append(run(item))
            else:
                out.append(future.result())
        except BaseException:
            # Don't abandon siblings on the shared pool: queued ones are
            # cancelled, started ones are drained, so no work outlives the
            # failed call (or its caller's lock scope).
            for _, leftover in futures[position + 1:]:
                if leftover is not None and not leftover.cancel():
                    leftover.exception()
            raise
    return out


class AggregateIOStatistics:
    """Summed, read-only view of the per-shard I/O counters.

    Quacks like :class:`~repro.storage.stats.IOStatistics` for the read-side
    API the query machinery uses (``snapshot`` / ``since`` / ``disk_model``),
    but always reflects the *live* shard set — shards swapped in by a flush
    are picked up automatically.
    """

    def __init__(self, owner: "ShardedIndex") -> None:
        self._owner = owner

    @property
    def disk_model(self) -> DiskModel:
        shards = self._owner.live_shards
        if not shards:
            return DiskModel()
        model = shards[0].stats.disk_model
        for shard in shards[1:]:
            if shard.stats.disk_model != model:
                # Simulated I/O time is summed across shards, which is only
                # meaningful when every shard prices its accesses the same
                # way — answering with shards[0]'s model would silently
                # misprice the others.
                raise QueryError(
                    "shards use different disk models "
                    f"({model} vs {shard.stats.disk_model}); a sharded index "
                    "needs one cost model across all shards"
                )
        return model

    def snapshot(self) -> IOSnapshot:
        total = IOSnapshot()
        for shard in self._owner.live_shards:
            total = total + shard.stats.snapshot()
        return total

    def since(self, snapshot: IOSnapshot) -> IOSnapshot:
        return self.snapshot() - snapshot

    def reset(self) -> None:
        for shard in self._owner.live_shards:
            shard.stats.reset()


@dataclass(frozen=True)
class ShardQueryStat:
    """Per-shard cost of one fanned-out evaluation (the ``/stats`` breakdown).

    Measured through the shard cursor's own read context, so the numbers are
    exact per query even when other queries interleave on the same shard.
    """

    shard: int
    matches: int
    page_accesses: int
    elapsed_ms: float
    random_reads: int = 0
    sequential_reads: int = 0
    decoded_hits: int = 0
    decoded_misses: int = 0

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "matches": self.matches,
            "page_accesses": self.page_accesses,
            "elapsed_ms": round(self.elapsed_ms, 4),
            "random_reads": self.random_reads,
            "sequential_reads": self.sequential_reads,
            "decoded_hits": self.decoded_hits,
            "decoded_misses": self.decoded_misses,
        }


@dataclass(frozen=True)
class AbsorbReport:
    """What one :meth:`ShardedIndex.absorb` merge did."""

    records_absorbed: int
    rebuilt_shards: tuple[int, ...]
    io: IOSnapshot


class ShardedIndex(SetContainmentIndex):
    """Fan-out wrapper satisfying the index contract over partitioned shards.

    Parameters
    ----------
    dataset:
        The full dataset; queries and the planner see it whole, storage is
        partitioned.
    num_shards:
        Number of partitions.  Partitions without records keep an empty slot
        (``None``) until an :meth:`absorb` routes records into them.
    strategy:
        Partitioning strategy name (``"hash"`` / ``"round_robin"``) or a
        ready :class:`Partitioner`.
    factory:
        Optional builder for each shard's index; defaults to an
        :class:`OrderedInvertedFile` with ``index_kwargs`` forwarded.  Every
        shard must own a private environment, so passing ``env`` is rejected.
    max_workers:
        When > 1, shard (re)builds run on an ephemeral thread pool of this
        size; ``None``/1 builds serially.
    """

    name = "ShardedOIF"

    def __init__(
        self,
        dataset: Dataset,
        num_shards: int = DEFAULT_NUM_SHARDS,
        *,
        strategy: "str | Partitioner" = "hash",
        factory: "ShardFactory | None" = None,
        max_workers: "int | None" = None,
        **index_kwargs,
    ) -> None:
        if "env" in index_kwargs:
            raise QueryError(
                "sharded indexes give every shard its own storage environment; "
                "a shared 'env' would break per-shard accounting and parallelism"
            )
        if factory is not None and index_kwargs:
            raise QueryError("pass either a shard factory or index options, not both")
        # Deliberately not calling the base __init__: a sharded index owns no
        # single environment — the env-dependent surface is overridden below.
        self.dataset = dataset
        self.env = None
        self._planner: "Planner | None" = None
        self.partitioner = make_partitioner(strategy, num_shards)
        self.max_workers = max_workers
        #: The OIF options the shards were built with — what the process
        #: backend records in each shard image's state file so workers reopen
        #: with identical decode behavior.  Unknown for custom factories.
        self._index_options: "dict | None" = (
            dict(index_kwargs) if factory is None else None
        )
        self._procpool = None
        self._factory: ShardFactory = factory or (
            lambda shard_dataset: OrderedInvertedFile(shard_dataset, **index_kwargs)
        )
        groups = self.partitioner.split(dataset)
        built = self._map_positions(
            [position for position, group in enumerate(groups) if group],
            lambda position: self._factory(Dataset(groups[position])),
        )
        self._shards: list["SetContainmentIndex | None"] = [None] * num_shards
        for position, shard in built:
            self._shards[position] = shard
        self._stats = AggregateIOStatistics(self)
        template = self.live_shards[0]
        self.name = f"{template.name}x{num_shards}"

    @classmethod
    def from_shards(
        cls,
        dataset: Dataset,
        shards: "Sequence[SetContainmentIndex | None]",
        *,
        strategy: "str | Partitioner" = "hash",
        factory: "ShardFactory | None" = None,
        max_workers: "int | None" = None,
        **index_kwargs,
    ) -> "ShardedIndex":
        """Assemble a sharded index from already-built per-shard indexes.

        The durability layer reopens each shard's environment from disk and
        re-wires them here without any rebuild.  ``shards`` must be position-
        ordered with ``None`` for empty slots and partitioned consistently
        with ``strategy`` — the partitioner routes future inserts, so a
        mismatch would corrupt the shard assignment.
        """
        if factory is not None and index_kwargs:
            raise QueryError("pass either a shard factory or index options, not both")
        index = cls.__new__(cls)
        index.dataset = dataset
        index.env = None
        index._planner = None
        index.partitioner = make_partitioner(strategy, len(shards))
        index.max_workers = max_workers
        index._index_options = dict(index_kwargs) if factory is None else None
        index._procpool = None
        index._factory = factory or (
            lambda shard_dataset: OrderedInvertedFile(shard_dataset, **index_kwargs)
        )
        index._shards = list(shards)
        index._stats = AggregateIOStatistics(index)
        if not index.live_shards:
            raise QueryError("from_shards() needs at least one built shard")
        template = index.live_shards[0]
        index.name = f"{template.name}x{len(shards)}"
        return index

    # -- shard management ------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.partitioner.num_shards

    @property
    def live_shards(self) -> list[SetContainmentIndex]:
        """The built (non-empty) shard indexes, in position order."""
        return [shard for shard in self._shards if shard is not None]

    def shard_at(self, position: int) -> "SetContainmentIndex | None":
        return self._shards[position]

    def shard_record_counts(self) -> list[int]:
        """Records resident per shard position (0 for still-empty slots)."""
        return [
            len(shard.dataset) if shard is not None else 0 for shard in self._shards
        ]

    # -- execution backend (threads vs processes) --------------------------------------

    @property
    def process_pool(self):
        """The attached :class:`~repro.core.shard.procpool.ShardProcessPool`, if any."""
        return self._procpool

    def attach_process_pool(self, pool) -> None:
        """Route :meth:`execute`/:meth:`fanout_evaluate` through ``pool``.

        The pool must have been built over *this* index — its workers hold
        images of these shards' pages; attaching someone else's pool would
        silently answer queries from a different dataset.
        """
        if pool.index is not self:
            raise QueryError("the process pool was built for a different index")
        self._procpool = pool

    def detach_process_pool(self) -> None:
        """Fall back to in-process (threaded) fan-out; the pool stays usable."""
        self._procpool = None

    def _absorb_remote(self, remote, ctx: "ReadContext | None") -> None:
        """Fold one worker-shard result's I/O back into parent accounting.

        Two destinations keep the two-level invariant intact across the
        process boundary: the caller's read context (per-query exactness)
        and the shard's own buffer pool totals (``sum(contexts) == totals``),
        the latter under the pool's frame lock like every other mutation.
        """
        shard = self._shards[remote.position]
        if shard is not None and shard.env is not None:
            shard.env.pool.absorb_snapshot(remote.io)
        if ctx is not None:
            ctx.absorb_snapshot(remote.io)
        trace.attach_rendered(remote.trace_tree)

    def _map_positions(
        self, positions: Sequence[int], build, max_workers: "int | None" = None
    ) -> list[tuple[int, object]]:
        """Run ``build(position)`` for every position, in parallel when asked.

        ``max_workers`` overrides the index default for this call.  Each task
        touches only its own shard's (fresh) environment, so the tasks share
        no mutable state and a plain thread pool is safe.
        """
        workers = self.max_workers if max_workers is None else max_workers
        if workers and workers > 1 and len(positions) > 1:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(positions)),
                thread_name_prefix="repro-shard-build",
            ) as pool:
                results = list(pool.map(build, positions))
        else:
            results = [build(position) for position in positions]
        return list(zip(positions, results))

    # -- probe primitives (fan out + ordered merge) ----------------------------------

    def _probe_subset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        return self._fanned_probe(lambda shard, sub: shard._probe_subset(items, sub), ctx)

    def _probe_equality(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        return self._fanned_probe(lambda shard, sub: shard._probe_equality(items, sub), ctx)

    def _probe_superset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        return self._fanned_probe(lambda shard, sub: shard._probe_superset(items, sub), ctx)

    def _fanned_probe(self, probe, ctx: "ReadContext | None") -> list[int]:
        # Shards are disjoint and each probe returns a sorted list, so an
        # ordered merge reproduces exactly the unsharded answer.  Each shard
        # gets a private sub-context (page ids are per page file, so one
        # shared last-page-id would fake sequentiality across shards); the
        # counts fold back into the caller's context.
        streams = []
        for shard in self.live_shards:
            sub = ReadContext() if ctx is not None else None
            streams.append(probe(shard, sub))
            if ctx is not None and sub is not None:
                ctx.absorb(sub)
        return list(heapq.merge(*streams))

    def probe(self, leaf: Leaf, ctx: "ReadContext | None" = None) -> Iterator[int]:
        """Stream one predicate leaf by chaining the shards' streaming probes."""
        for shard in self.live_shards:
            sub = ReadContext() if ctx is not None else None
            try:
                yield from shard.probe(leaf, sub)
            finally:
                # Runs on exhaustion *and* on early close (GeneratorExit), so
                # a limit-stopped stream still folds its partial reads back.
                if ctx is not None and sub is not None:
                    ctx.absorb(sub)

    # -- execution -------------------------------------------------------------------

    def execute(
        self,
        expr: Expr,
        planner: "Planner | None" = None,
        ctx: "ReadContext | None" = None,
    ) -> MergedShardCursor:
        """Fan ``expr`` out to every shard and merge the streaming cursors.

        A top-level ``limit``/``offset`` is peeled off and applied by the
        merge, so non-contributing shards are never drained; each shard plans
        the inner expression with its own statistics unless an explicit
        ``planner`` overrides them all.

        An explicit ``ctx`` is shared by every shard cursor, so the caller's
        context receives the exact page counts of the whole fan-out (the
        merged cursor's ``io_delta`` then reads from it); because page ids
        are per shard file, the sequential/random split of a shared context
        blurs at shard boundaries — omit ``ctx`` (the default) to keep
        per-shard classification.

        Like every streaming cursor, a limited stream yields a prefix of its
        *production* order — here the shard rotation — so which ``k`` of the
        matching ids come back depends on the physical layout (just as the
        unsharded cursor's prefix depends on page order).  Unlimited answers
        are always exactly the unsharded ones; callers that need a
        layout-independent limited answer slice the sorted result instead,
        which is what the delta-aware wrappers and the service layer do
        (:meth:`repro.core.updates._UpdatableBase.evaluate`).

        With a process pool attached, the shards evaluate eagerly in their
        worker processes instead of streaming lazily: each worker gets the
        whole slice bound pushed down as a per-shard ``limit`` (no shard can
        contribute more than ``offset + count`` ids), so the merged answer —
        including a limited prefix — is byte-identical to the threaded
        stream's.  An explicit ``planner`` cannot cross the process boundary
        and falls back to in-process execution.
        """
        if not isinstance(expr, Expr):
            raise QueryError(f"execute() needs a query expression, got {expr!r}")
        normalized = expr.normalize()
        inner, count, offset = split_limit(normalized)
        procpool = self._procpool
        if procpool is not None and planner is None:
            cap = None if count is None else count + offset
            remotes = procpool.evaluate(inner, cap=cap, sort=False)
            cursors = []
            for position in sorted(remotes):
                remote = remotes[position]
                self._absorb_remote(remote, ctx)
                shard = self._shards[position]
                cursors.append(
                    RemoteShardCursor(shard.planner.plan(inner), remote.ids, remote.io)
                )
            return MergedShardCursor(
                self, cursors, normalized, count=count, offset=offset, ctx=ctx
            )
        cursors = [
            shard.execute(inner, planner=planner, ctx=ctx) for shard in self.live_shards
        ]
        return MergedShardCursor(
            self, cursors, normalized, count=count, offset=offset, ctx=ctx
        )

    def explain(self, expr: Expr, planner: "Planner | None" = None) -> str:
        """Render the fan-out plan without opening any cursor (no I/O)."""
        inner, count, offset = split_limit(expr)
        plans = tuple(
            (planner or shard.planner).plan(inner) for shard in self.live_shards
        )
        return FanoutPlan(plans, count=count, offset=offset).explain()

    def fanout_evaluate(
        self, expr: Expr, pool: "ThreadPoolExecutor | None" = None
    ) -> tuple[list[int], list[ShardQueryStat]]:
        """Materialize ``expr`` shard by shard with a per-shard cost breakdown.

        Each shard evaluates through its own cursor — and therefore its own
        read context — so the per-shard page counts are exact even while
        other queries run against the same shards concurrently.  A top-level
        limit is applied *after* the ordered merge, matching the delta-aware
        evaluation semantics of :meth:`repro.core.updates._UpdatableBase.evaluate`.

        ``pool`` may be any shared executor, including the serving layer's
        query pool: tasks are submitted and then either awaited or — when the
        pool is saturated and never started them — cancelled and run inline
        by the caller, so fan-out can never deadlock on pool exhaustion.

        With a process pool attached, the shards evaluate in their worker
        processes instead (``pool`` is ignored): results and per-shard page
        counts are bit-identical to the threaded fan-out, the workers'
        I/O snapshots are absorbed back into the shard totals, and any trace
        spans the workers record are grafted under the calling query's span.
        """
        inner, count, offset = split_limit(expr)
        procpool = self._procpool
        if procpool is not None:
            remotes = procpool.evaluate(inner, sort=True)
            stats: list[ShardQueryStat] = []
            streams = []
            for position in sorted(remotes):
                remote = remotes[position]
                self._absorb_remote(remote, None)
                delta = remote.io
                stats.append(
                    ShardQueryStat(
                        shard=position,
                        matches=len(remote.ids),
                        page_accesses=delta.page_reads,
                        elapsed_ms=remote.elapsed_ms,
                        random_reads=delta.random_reads,
                        sequential_reads=delta.sequential_reads,
                        decoded_hits=delta.decoded_hits,
                        decoded_misses=delta.decoded_misses,
                    )
                )
                streams.append(remote.ids)
            return slice_ids(_merge_sorted(streams), count, offset), stats
        pairs = [
            (position, shard)
            for position, shard in enumerate(self._shards)
            if shard is not None
        ]

        def run(pair: "tuple[int, SetContainmentIndex]") -> tuple[list[int], ShardQueryStat]:
            position, shard = pair
            started = time.perf_counter()
            with trace.span("shard", shard=position):
                cursor = shard.execute(inner)
                ids = sorted(cursor.fetch_all())
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            delta = cursor.io_delta()
            stat = ShardQueryStat(
                shard=position,
                matches=len(ids),
                page_accesses=delta.page_reads,
                elapsed_ms=elapsed_ms,
                random_reads=delta.random_reads,
                sequential_reads=delta.sequential_reads,
                decoded_hits=delta.decoded_hits,
                decoded_misses=delta.decoded_misses,
            )
            return ids, stat

        outcomes = run_sharing_pool(pool, run, pairs)
        merged = _merge_sorted([ids for ids, _ in outcomes])
        return slice_ids(merged, count, offset), [stat for _, stat in outcomes]

    # -- updates ---------------------------------------------------------------------

    def absorb(
        self,
        fresh_records: Sequence[Record],
        max_workers: "int | None" = None,
        removed_ids: "Iterable[int] | None" = None,
    ) -> AbsorbReport:
        """Merge ``fresh_records`` by rebuilding only the shards that get any.

        ``removed_ids`` names resident records to drop during the merge: the
        shards owning them rebuild over their surviving records (a shard whose
        records all disappear reverts to an empty slot).  The untouched shards
        keep their indexes (and warm buffer pools) as-is — this is the
        per-shard counterpart of the monolithic ``UpdatableOIF.flush`` full
        rebuild.  Rebuilds run on an ephemeral pool when ``max_workers`` (or
        the index default) allows.
        """
        fresh = list(fresh_records)
        removed = set(removed_ids or ())
        if not fresh and not removed:
            return AbsorbReport(records_absorbed=0, rebuilt_shards=(), io=IOSnapshot())
        groups: dict[int, list[Record]] = {}
        for record in fresh:
            groups.setdefault(self.partitioner.shard_of(record.record_id), []).append(record)
        for record_id in removed:
            groups.setdefault(self.partitioner.shard_of(record_id), [])

        def rebuild(position: int) -> "tuple[SetContainmentIndex | None, IOSnapshot]":
            current = self._shards[position]
            existing = list(current.dataset) if current is not None else []
            if removed:
                existing = [
                    record for record in existing if record.record_id not in removed
                ]
            merged = existing + groups[position]
            if not merged:
                return None, IOSnapshot()
            shard = self._factory(Dataset(merged))
            # The shard's environment is brand new, so its counters are
            # exactly the build cost.
            return shard, shard.stats.snapshot()

        built = self._map_positions(sorted(groups), rebuild, max_workers=max_workers)
        total_io = IOSnapshot()
        for position, (shard, build_io) in built:
            self._shards[position] = shard
            total_io = total_io + build_io
        survivors = [
            record for record in self.dataset if record.record_id not in removed
        ] if removed else list(self.dataset)
        self.dataset = Dataset(survivors + fresh)
        # Frequency statistics changed; replan from the merged dataset.
        self._planner = None
        if self._procpool is not None:
            # The rebuilt shards' workers hold stale page images; re-image
            # exactly those positions and have the owners reopen them.  The
            # caller (flush) holds the write lock, so no query races this.
            self._procpool.refresh(sorted(groups))
        return AbsorbReport(
            records_absorbed=len(fresh),
            rebuilt_shards=tuple(sorted(groups)),
            io=total_io,
        )

    # -- instrumentation -------------------------------------------------------------

    @property
    def stats(self) -> AggregateIOStatistics:
        """Aggregated per-shard counters (read-only view, always live)."""
        return self._stats

    def io_snapshot(self) -> IOSnapshot:
        return self._stats.snapshot()

    @property
    def index_size_bytes(self) -> int:
        return sum(shard.index_size_bytes for shard in self.live_shards)

    def drop_cache(self) -> None:
        for shard in self.live_shards:
            shard.drop_cache()
