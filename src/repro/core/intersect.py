"""Sorted-array merge-join kernels for the posting hot path.

Every query algorithm now carries candidates as parallel sorted columns
(ids + payloads) instead of dicts: intersection becomes a merge join over
strictly increasing id runs.  The kernels here walk the *smaller* side and
advance through the larger one with :func:`bisect.bisect_left` restricted to
a moving lower bound — a galloping merge join.  When the sides are balanced
the moving bound keeps each search short; when they are skewed (a 128-entry
block against a million-candidate column, or vice versa) the cost collapses
to ``|small| · log |large|`` with every comparison in C.

All functions require both id runs to be sorted strictly increasing and
return columns in the same order, so the output feeds the next join without
any re-sorting.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Sequence

from repro.obs import trace

try:  # vectorized occurrence counting for large unions; pure paths stand alone
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the dataset layer
    _np = None

#: Unions smaller than this stay on the pure-Python merge: below it the
#: numpy dispatch overhead outweighs the C-level sort.
_VECTOR_UNION_VALUES = 2048


def intersect_ids(a_ids: Sequence[int], b_ids: Sequence[int]) -> list[int]:
    """Ids present in both sorted runs, ascending."""
    token = trace.stage_begin()
    try:
        out: list[int] = []
        la, lb = len(a_ids), len(b_ids)
        if not la or not lb:
            return out
        append = out.append
        if la <= lb:
            small, large, llarge = a_ids, b_ids, lb
        else:
            small, large, llarge = b_ids, a_ids, la
        lo = 0
        for record_id in small:
            lo = bisect_left(large, record_id, lo)
            if lo == llarge:
                break
            if large[lo] == record_id:
                append(record_id)
                lo += 1
        return out
    finally:
        trace.stage_end("intersect", token)


def intersect_window(
    cand_ids: Sequence[int],
    cand_lo: int,
    cand_hi: int,
    run_ids: Sequence[int],
    out_ids: list[int],
) -> bool:
    """Append the ids in both ``cand_ids[cand_lo:cand_hi]`` and ``run_ids``.

    The candidate window is passed by index so callers can gallop a moving
    window over a long candidate column while streaming blocks in physical
    order, without slicing.  Returns whether anything matched.
    """
    token = trace.stage_begin()
    try:
        matched = False
        window = cand_hi - cand_lo
        lrun = len(run_ids)
        if window <= 0 or not lrun:
            return False
        if window <= lrun:
            lo = 0
            for index in range(cand_lo, cand_hi):
                record_id = cand_ids[index]
                lo = bisect_left(run_ids, record_id, lo)
                if lo == lrun:
                    break
                if run_ids[lo] == record_id:
                    out_ids.append(record_id)
                    matched = True
                    lo += 1
        else:
            lo = cand_lo
            for record_id in run_ids:
                lo = bisect_left(cand_ids, record_id, lo, cand_hi)
                if lo == cand_hi:
                    break
                if cand_ids[lo] == record_id:
                    out_ids.append(record_id)
                    matched = True
                    lo += 1
        return matched
    finally:
        trace.stage_end("intersect", token)


def union_count(
    cand_ids: list[int],
    cand_lens: list[int],
    cand_counts: list[int],
    run_ids: Sequence[int],
    run_lens: Sequence[int],
) -> "tuple[list[int], list[int], list[int]]":
    """Merge one sorted posting run into occurrence-counting candidate columns.

    Ids already present get their count bumped; fresh ids join with a count
    of one.  Used by the baselines' superset evaluation, where a record
    qualifies once its count reaches its stored length.  Both inputs must be
    strictly increasing; the result is too.
    """
    if not cand_ids:
        return list(run_ids), list(run_lens), [1] * len(run_ids)
    out_ids: list[int] = []
    out_lens: list[int] = []
    out_counts: list[int] = []
    i = 0
    la = len(cand_ids)
    for index in range(len(run_ids)):
        record_id = run_ids[index]
        while i < la and cand_ids[i] < record_id:
            out_ids.append(cand_ids[i])
            out_lens.append(cand_lens[i])
            out_counts.append(cand_counts[i])
            i += 1
        if i < la and cand_ids[i] == record_id:
            out_ids.append(record_id)
            out_lens.append(cand_lens[i])
            out_counts.append(cand_counts[i] + 1)
            i += 1
        else:
            out_ids.append(record_id)
            out_lens.append(run_lens[index])
            out_counts.append(1)
    while i < la:
        out_ids.append(cand_ids[i])
        out_lens.append(cand_lens[i])
        out_counts.append(cand_counts[i])
        i += 1
    return out_ids, out_lens, out_counts


def _as_uint64(column: Sequence[int]):
    """Zero-copy view of an ``array('Q')`` column, copy for anything else."""
    if isinstance(column, array) and column.typecode == "Q":
        return _np.frombuffer(column, _np.uint64)
    return _np.asarray(column, _np.uint64)


def superset_matches(runs: "Sequence[tuple[Sequence[int], Sequence[int]]]") -> list[int]:
    """Ids whose occurrence count across the runs equals their stored length.

    This is the classic inverted file's superset answer: union every query
    item's ``(ids, lengths)`` run while counting occurrences; a record
    qualifies exactly when all of its items were seen.  Large unions take a
    vectorized path — one concatenate + ``numpy.unique`` with counts — and
    small ones fold through :func:`union_count`.  Returns ascending ids.
    """
    token = trace.stage_begin()
    try:
        live = [(ids, lens) for ids, lens in runs if len(ids)]
        if not live:
            return []
        if _np is not None and sum(len(ids) for ids, _ in live) >= _VECTOR_UNION_VALUES:
            try:
                all_ids = _np.concatenate([_as_uint64(ids) for ids, _ in live])
                all_lens = _np.concatenate([_as_uint64(lens) for _, lens in live])
            except (TypeError, OverflowError):
                pass  # values beyond uint64: fall through to the exact merge
            else:
                unique_ids, first_index, counts = _np.unique(
                    all_ids, return_index=True, return_counts=True
                )
                return unique_ids[counts == all_lens[first_index]].tolist()
        ids: list[int] = []
        lengths: list[int] = []
        counts_list: list[int] = []
        for run_ids, run_lens in live:
            ids, lengths, counts_list = union_count(
                ids, lengths, counts_list, run_ids, run_lens
            )
        return [
            record_id
            for record_id, length, count in zip(ids, lengths, counts_list)
            if count == length
        ]
    finally:
        trace.stage_end("intersect", token)
