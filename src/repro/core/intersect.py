"""Merge-join and bitmap kernels for the posting hot path.

Every query algorithm carries candidates as parallel sorted columns
(ids + payloads) instead of dicts: intersection becomes a merge join over
strictly increasing id runs.  The merge kernels here walk the *smaller* side
and advance through the larger one with :func:`bisect.bisect_left`
restricted to a moving lower bound — a galloping merge join.  When the sides
are balanced the moving bound keeps each search short; when they are skewed
(a 128-entry block against a million-candidate column, or vice versa) the
cost collapses to ``|small| · log |large|`` with every comparison in C.

Dense posting runs (:class:`repro.core.postings.DensePostings`, chosen per
item by the density threshold) get bitmap kernels for every pairing:

* :func:`bitmap_and` — bitmap × bitmap as a word-AND over the overlapping
  word range, ``O(|D| / 64)`` regardless of list lengths;
* :func:`bitmap_probe` / :func:`bitmap_window_probe` — bitmap × array as an
  O(1)-per-candidate membership gather, ``O(|small|)`` total;
* :func:`intersect_postings` — the dispatcher that picks the kernel from the
  runtime types, so mixed joins cost ``O(min)``.

All kernels require id runs sorted strictly increasing and return ids in the
same order, so every pairing yields bit-identical results to the pure merge
join.  The numpy paths are gated on the posting-layer backend knob
(:func:`repro.compression.postings.numpy_module`); pure-Python fallbacks
stand alone.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from repro.compression.postings import numpy_module
from repro.obs import trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.postings import DensePostings

try:  # vectorized occurrence counting for large unions; pure paths stand alone
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Unions smaller than this stay on the pure-Python merge: below it the
#: numpy dispatch overhead outweighs the C-level sort.
_VECTOR_UNION_VALUES = 2048

#: Probes smaller than this stay on the pure-Python O(1)-per-id loop.
_VECTOR_PROBE_VALUES = 32


def intersect_ids(a_ids: Sequence[int], b_ids: Sequence[int]) -> list[int]:
    """Ids present in both sorted runs, ascending."""
    token = trace.stage_begin()
    try:
        out: list[int] = []
        la, lb = len(a_ids), len(b_ids)
        if not la or not lb:
            return out
        append = out.append
        if la <= lb:
            small, large, llarge = a_ids, b_ids, lb
        else:
            small, large, llarge = b_ids, a_ids, la
        lo = 0
        for record_id in small:
            lo = bisect_left(large, record_id, lo)
            if lo == llarge:
                break
            if large[lo] == record_id:
                append(record_id)
                lo += 1
        return out
    finally:
        trace.stage_end("intersect", token)


def intersect_window(
    cand_ids: Sequence[int],
    cand_lo: int,
    cand_hi: int,
    run_ids: Sequence[int],
    out_ids: list[int],
) -> bool:
    """Append the ids in both ``cand_ids[cand_lo:cand_hi]`` and ``run_ids``.

    The candidate window is passed by index so callers can gallop a moving
    window over a long candidate column while streaming blocks in physical
    order, without slicing.  Returns whether anything matched.
    """
    token = trace.stage_begin()
    try:
        matched = False
        window = cand_hi - cand_lo
        lrun = len(run_ids)
        if window <= 0 or not lrun:
            return False
        if window <= lrun:
            lo = 0
            for index in range(cand_lo, cand_hi):
                record_id = cand_ids[index]
                lo = bisect_left(run_ids, record_id, lo)
                if lo == lrun:
                    break
                if run_ids[lo] == record_id:
                    out_ids.append(record_id)
                    matched = True
                    lo += 1
        else:
            lo = cand_lo
            for record_id in run_ids:
                lo = bisect_left(cand_ids, record_id, lo, cand_hi)
                if lo == cand_hi:
                    break
                if cand_ids[lo] == record_id:
                    out_ids.append(record_id)
                    matched = True
                    lo += 1
        return matched
    finally:
        trace.stage_end("intersect", token)


def union_count(
    cand_ids: list[int],
    cand_lens: list[int],
    cand_counts: list[int],
    run_ids: Sequence[int],
    run_lens: Sequence[int],
) -> "tuple[list[int], list[int], list[int]]":
    """Merge one sorted posting run into occurrence-counting candidate columns.

    Ids already present get their count bumped; fresh ids join with a count
    of one.  Used by the baselines' superset evaluation, where a record
    qualifies once its count reaches its stored length.  Both inputs must be
    strictly increasing; the result is too.
    """
    if not cand_ids:
        return list(run_ids), list(run_lens), [1] * len(run_ids)
    out_ids: list[int] = []
    out_lens: list[int] = []
    out_counts: list[int] = []
    i = 0
    la = len(cand_ids)
    for index in range(len(run_ids)):
        record_id = run_ids[index]
        while i < la and cand_ids[i] < record_id:
            out_ids.append(cand_ids[i])
            out_lens.append(cand_lens[i])
            out_counts.append(cand_counts[i])
            i += 1
        if i < la and cand_ids[i] == record_id:
            out_ids.append(record_id)
            out_lens.append(cand_lens[i])
            out_counts.append(cand_counts[i] + 1)
            i += 1
        else:
            out_ids.append(record_id)
            out_lens.append(run_lens[index])
            out_counts.append(1)
    while i < la:
        out_ids.append(cand_ids[i])
        out_lens.append(cand_lens[i])
        out_counts.append(cand_counts[i])
        i += 1
    return out_ids, out_lens, out_counts


def _as_uint64(column: Sequence[int]):
    """Zero-copy view of an ``array('Q')`` column, copy for anything else."""
    if isinstance(column, array) and column.typecode == "Q":
        return _np.frombuffer(column, _np.uint64)
    return _np.asarray(column, _np.uint64)


def superset_matches(runs: "Sequence[tuple[Sequence[int], Sequence[int]]]") -> list[int]:
    """Ids whose occurrence count across the runs equals their stored length.

    This is the classic inverted file's superset answer: union every query
    item's ``(ids, lengths)`` run while counting occurrences; a record
    qualifies exactly when all of its items were seen.  Large unions take a
    vectorized path — one concatenate + ``numpy.unique`` with counts — and
    small ones fold through :func:`union_count`.  Returns ascending ids.
    """
    token = trace.stage_begin()
    try:
        live = [(ids, lens) for ids, lens in runs if len(ids)]
        if not live:
            return []
        np = numpy_module()
        if np is not None and sum(len(ids) for ids, _ in live) >= _VECTOR_UNION_VALUES:
            try:
                all_ids = _np.concatenate([_as_uint64(ids) for ids, _ in live])
                all_lens = _np.concatenate([_as_uint64(lens) for _, lens in live])
            except (TypeError, OverflowError):
                pass  # values beyond uint64: fall through to the exact merge
            else:
                unique_ids, first_index, counts = _np.unique(
                    all_ids, return_index=True, return_counts=True
                )
                return unique_ids[counts == all_lens[first_index]].tolist()
        ids: list[int] = []
        lengths: list[int] = []
        counts_list: list[int] = []
        for run_ids, run_lens in live:
            ids, lengths, counts_list = union_count(
                ids, lengths, counts_list, run_ids, run_lens
            )
        return [
            record_id
            for record_id, length, count in zip(ids, lengths, counts_list)
            if count == length
        ]
    finally:
        trace.stage_end("intersect", token)


# -- bitmap kernels --------------------------------------------------------------------


def _overlap_words(a: "DensePostings", b: "DensePostings") -> "tuple[int, int, int, int]":
    """Word-aligned overlap of two bitmaps: ``(a_start, b_start, nwords, base)``."""
    a_word0 = a.base >> 6
    b_word0 = b.base >> 6
    lo = max(a_word0, b_word0)
    hi = min(a_word0 + len(a.words), b_word0 + len(b.words))
    return lo - a_word0, lo - b_word0, hi - lo, lo << 6


def bitmap_and_dense(a: "DensePostings", b: "DensePostings") -> "DensePostings":
    """Bitmap × bitmap intersection as a new bitmap (no ids materialized).

    Both bases are word-aligned, so the AND runs straight over the
    overlapping word range with no shifting.  The result carries no lengths
    column — it is an intermediate for folding chains of dense lists; extract
    ids once at the end with :func:`~repro.core.postings.extract_set_bits`.
    """
    from repro.core.postings import DensePostings, record_kernel

    started = perf_counter()
    token = trace.stage_begin()
    try:
        a_start, b_start, nwords, base = _overlap_words(a, b)
        words = array("Q")
        first_id = 0
        last_id = -1
        if nwords > 0:
            np = numpy_module()
            if np is not None and nwords >= 8:
                anded = np.frombuffer(a.words, np.uint64)[
                    a_start : a_start + nwords
                ] & np.frombuffer(b.words, np.uint64)[b_start : b_start + nwords]
                words.frombytes(anded.tobytes())
            else:
                a_words = a.words
                b_words = b.words
                words = array(
                    "Q",
                    [
                        a_words[a_start + i] & b_words[b_start + i]
                        for i in range(nwords)
                    ],
                )
            for index in range(len(words)):  # exact id bounds from the word scan
                word = words[index]
                if word:
                    first_id = base + (index << 6) + (word & -word).bit_length() - 1
                    break
            for index in range(len(words) - 1, -1, -1):
                word = words[index]
                if word:
                    last_id = base + (index << 6) + word.bit_length() - 1
                    break
        nbits = last_id - base + 1 if last_id >= base else 0
        record_kernel("bitmap_and", perf_counter() - started)
        return DensePostings(words, base, nbits, array("Q"), first_id, last_id)
    finally:
        trace.stage_end("intersect", token)


def bitmap_and(a: "DensePostings", b: "DensePostings") -> "array":
    """Bitmap × bitmap intersection, materialized as an ascending id column."""
    from repro.core.postings import extract_set_bits

    dense = bitmap_and_dense(a, b)
    return extract_set_bits(dense.words, dense.base)


def bitmap_probe(dense: "DensePostings", ids: Sequence[int]) -> list[int]:
    """Bitmap × array intersection: O(1) membership gather per candidate id.

    ``ids`` must be ascending; the result is the ascending subset present in
    the bitmap — bit-identical to the galloping merge over the same runs.
    """
    from repro.core.postings import record_kernel

    started = perf_counter()
    token = trace.stage_begin()
    try:
        count = len(ids)
        if not count or not len(dense.words):
            return []
        np = numpy_module()
        if np is not None and count >= _VECTOR_PROBE_VALUES:
            if isinstance(ids, array) and ids.typecode == "Q":
                cand = np.frombuffer(ids, np.int64)
            else:
                cand = np.asarray(ids, np.int64)
            relative = cand - dense.base
            in_range = (relative >= 0) & (relative < len(dense.words) << 6)
            scoped = relative[in_range]
            words = np.frombuffer(dense.words, np.uint64)
            hits = (
                words[scoped >> 6] >> (scoped & 63).astype(np.uint64) & 1
            ).astype(np.bool_)
            return cand[in_range][hits].tolist()
        base = dense.base
        nbits = len(dense.words) << 6
        words = dense.words
        out: list[int] = []
        append = out.append
        for record_id in ids:
            offset = record_id - base
            if 0 <= offset < nbits and words[offset >> 6] >> (offset & 63) & 1:
                append(record_id)
        return out
    finally:
        record_kernel("bitmap_probe", perf_counter() - started)
        trace.stage_end("intersect", token)


def bitmap_window_probe(
    cand_ids: Sequence[int],
    cand_lo: int,
    cand_hi: int,
    dense: "DensePostings",
    out_ids: list[int],
) -> bool:
    """Window form of :func:`bitmap_probe`, mirroring :func:`intersect_window`.

    Probes ``cand_ids[cand_lo:cand_hi]`` against the bitmap and appends hits
    to ``out_ids``; returns whether anything matched.  Lets the OIF stream a
    moving candidate window over dense blocks without slicing.
    """
    from repro.core.postings import record_kernel

    started = perf_counter()
    token = trace.stage_begin()
    try:
        matched = False
        if cand_hi <= cand_lo or not len(dense.words):
            return False
        base = dense.base
        nbits = len(dense.words) << 6
        words = dense.words
        np = numpy_module()
        if np is not None and cand_hi - cand_lo >= _VECTOR_PROBE_VALUES:
            if isinstance(cand_ids, array) and cand_ids.typecode == "Q":
                cand = np.frombuffer(cand_ids, np.int64)[cand_lo:cand_hi]
            else:
                cand = np.asarray(cand_ids[cand_lo:cand_hi], np.int64)
            relative = cand - base
            in_range = (relative >= 0) & (relative < nbits)
            scoped = relative[in_range]
            np_words = np.frombuffer(words, np.uint64)
            hits = (
                np_words[scoped >> 6] >> (scoped & 63).astype(np.uint64) & 1
            ).astype(np.bool_)
            found = cand[in_range][hits]
            if len(found):
                out_ids.extend(found.tolist())
                matched = True
            return matched
        for index in range(cand_lo, cand_hi):
            record_id = cand_ids[index]
            offset = record_id - base
            if 0 <= offset < nbits and words[offset >> 6] >> (offset & 63) & 1:
                out_ids.append(record_id)
                matched = True
        return matched
    finally:
        record_kernel("bitmap_probe", perf_counter() - started)
        trace.stage_end("intersect", token)


def intersect_postings(a, b) -> "Sequence[int]":
    """Intersect two posting runs, dispatching on their representations.

    Each side is a :class:`~repro.core.postings.DensePostings`, a
    :class:`~repro.compression.postings.PostingColumns`, or a bare sorted id
    column.  bitmap × bitmap takes the word-AND kernel, bitmap × array the
    membership probe (probing the array side, ``O(min)``), array × array the
    galloping merge — all bit-identical on the same runs.
    """
    from repro.core.postings import DensePostings

    a_dense = isinstance(a, DensePostings)
    b_dense = isinstance(b, DensePostings)
    if a_dense and b_dense:
        return bitmap_and(a, b)
    if a_dense:
        return bitmap_probe(a, getattr(b, "ids", b))
    if b_dense:
        return bitmap_probe(b, getattr(a, "ids", a))
    return intersect_ids(getattr(a, "ids", a), getattr(b, "ids", b))
