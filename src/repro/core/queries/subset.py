"""Subset query evaluation over the OIF (Algorithm 1).

A subset query returns every record that contains *all* query items.  The
evaluation follows the paper:

1. Compute the Range of Interest ``RoI_sub`` (Definition 2).
2. Seed the candidate set from the inverted list of the **largest** (least
   frequent) query item, restricted to the RoI — its list is the shortest, so
   the initial candidate set is small.
3. Intersect with the remaining query items' lists in decreasing rank order.
   Only the blocks whose tags overlap the RoI are fetched via the B-tree, and
   the scanned range is progressively narrowed to the ids still in the
   candidate set (lines 5–15 of Algorithm 1).
4. For the smallest query item, records whose smallest item *is* that item
   carry no posting (the metadata table replaces it), so candidates falling in
   its metadata region are accepted without touching the list (lines 11–14).

The merge itself dispatches on each block's representation: candidates are
parallel sorted columns (ids + lengths); a block decoding as
:class:`~repro.compression.postings.PostingColumns` joins via a galloping
merge over a moving candidate window, while blocks of dense-tagged items
decode as :class:`~repro.core.postings.DensePostings` bitmaps and cost one
O(1) membership probe per candidate in the window
(:func:`~repro.core.intersect.bitmap_window_probe`) — exactly where the
per-element merge hurt most.  Both kernels append identical survivors, and
which blocks are *loaded* depends only on block keys and candidate bounds,
so results and page counts are bit-identical across representations.  Block
ids ascend within a list and across its blocks (records are numbered in tag
order), so survivor columns stay sorted for free.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING

from repro.core.intersect import bitmap_window_probe, intersect_window
from repro.core.postings import DensePostings
from repro.core.roi import RangeOfInterest, subset_roi
from repro.core.sequence import SequenceForm

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.core.oif import OrderedInvertedFile
    from repro.storage.stats import ReadContext


def evaluate_subset(
    oif: "OrderedInvertedFile",
    query_ranks: SequenceForm,
    ctx: "ReadContext | None" = None,
) -> list[int]:
    """Return the internal ids of records containing every rank in ``query_ranks``."""
    roi = subset_roi(query_ranks, oif.domain_size)
    if len(query_ranks) == 1:
        return _single_item_subset(oif, query_ranks[0], ctx)

    smallest = query_ranks[0]
    meta_region = oif.metadata.region_for(smallest) if oif.use_metadata else None

    # Step 1: candidates from the least frequent item's list, inside the RoI.
    # Blocks arrive in tag order, which is id order, so extending the column
    # block by block keeps it sorted.  Only ids are tracked: subset
    # evaluation never consults the stored lengths.
    cand_ids: list[int] = []
    largest = query_ranks[-1]
    for _block_key, block in oif.scan_blocks(largest, roi, ctx=ctx):
        cand_ids.extend(block.columns(ctx).ids)
    if not cand_ids:
        return []

    # Tag bounds observed while scanning: every remaining candidate's sequence
    # form lies between these two block tags, so later scans can be restricted
    # to the corresponding sub-range of each list (line 15 of Algorithm 1 —
    # "using the B-tree we can access only this region").
    narrowed_lower = roi.lower
    narrowed_upper = roi.upper

    # Step 2: merge-join with the remaining lists, least frequent first.
    for position in range(len(query_ranks) - 2, -1, -1):
        item_rank = query_ranks[position]
        lowest_candidate = cand_ids[0]
        highest_candidate = cand_ids[-1]
        out_ids: list[int] = []
        scan_range = (
            RangeOfInterest(lower=narrowed_lower, upper=narrowed_upper)
            if oif.narrow_candidate_range
            else roi
        )
        previous_tag = scan_range.lower
        first_survivor_lower = None
        last_survivor_upper = None
        cand_lo = 0  # moving window start: blocks ascend, so it only advances
        for block_key, block in oif.scan_blocks(item_rank, scan_range, ctx=ctx):
            if oif.narrow_candidate_range and block_key.last_id < lowest_candidate:
                # The block precedes every remaining candidate: its data page
                # is never touched; only its key was read from the leaf.
                previous_tag = block_key.tag
                continue
            run = block.decoded(ctx)
            if isinstance(run, DensePostings):
                first_id, last_id = run.first_id, run.last_id
            else:
                block_ids = run.ids
                first_id, last_id = block_ids[0], block_ids[-1]
            # Restrict the candidate column to this block's id span, then
            # join the window against the block in its native representation.
            cand_lo = bisect_left(cand_ids, first_id, cand_lo)
            cand_hi = bisect_right(cand_ids, last_id, cand_lo)
            matched = (
                bitmap_window_probe(cand_ids, cand_lo, cand_hi, run, out_ids)
                if isinstance(run, DensePostings)
                else intersect_window(cand_ids, cand_lo, cand_hi, block_ids, out_ids)
            )
            if matched:
                if first_survivor_lower is None:
                    first_survivor_lower = previous_tag
                last_survivor_upper = block_key.tag
            previous_tag = block_key.tag
            if oif.narrow_candidate_range and block_key.last_id >= highest_candidate:
                # Every candidate id has been covered: later blocks cannot
                # contribute, so the scan stops early.
                break

        if position == 0 and meta_region is not None:
            # Candidates whose smallest item is the query's smallest item have
            # no posting in its list; the in-memory metadata region vouches for
            # them instead.  Every id in the smallest item's list precedes the
            # region (those records sort under an even smaller item), so the
            # region's survivors append after the list's in sorted order.
            region_lo = bisect_left(cand_ids, meta_region.lower)
            region_hi = bisect_right(cand_ids, meta_region.upper)
            if region_lo < region_hi:
                out_ids.extend(cand_ids[region_lo:region_hi])

        cand_ids = out_ids
        if not cand_ids:
            return []
        if oif.narrow_candidate_range and first_survivor_lower is not None:
            # Tighten the tag window around the surviving candidates.  The
            # bounds come from block tags already read, so this costs nothing.
            # Lower-bound tightening is always safe (even with truncated tags);
            # upper-bound tightening is only exact for full tags, because a
            # truncated tag under-approximates the block's true last record.
            narrowed_lower = max(narrowed_lower, first_survivor_lower)
            if last_survivor_upper is not None and oif.tag_prefix is None:
                narrowed_upper = min(narrowed_upper, last_survivor_upper)

    return cand_ids


def _single_item_subset(
    oif: "OrderedInvertedFile", item_rank: int, ctx: "ReadContext | None" = None
) -> list[int]:
    """Subset query with a single item: the item's full list plus its metadata region.

    Already ascending without any sort: the block scan yields ids in
    increasing order (block tags order exactly like the ids they cover), and
    every list id precedes the metadata region's ids — records in the region
    have ``item_rank`` as their *smallest* item, so they sort after every
    record the list references (whose smallest item is more frequent).
    """
    roi = subset_roi((item_rank,), oif.domain_size)
    result: list[int] = []
    for _block_key, block in oif.scan_blocks(item_rank, roi, ctx=ctx):
        result.extend(block.columns(ctx).ids)
    if oif.use_metadata:
        region = oif.metadata.region_for(item_rank)
        if region is not None:
            result.extend(range(region.lower, region.upper + 1))
    return result
