"""Subset query evaluation over the OIF (Algorithm 1).

A subset query returns every record that contains *all* query items.  The
evaluation follows the paper:

1. Compute the Range of Interest ``RoI_sub`` (Definition 2).
2. Seed the candidate set from the inverted list of the **largest** (least
   frequent) query item, restricted to the RoI — its list is the shortest, so
   the initial candidate set is small.
3. Intersect with the remaining query items' lists in decreasing rank order.
   Only the blocks whose tags overlap the RoI are fetched via the B-tree, and
   the scanned range is progressively narrowed to the ids still in the
   candidate set (lines 5–15 of Algorithm 1).
4. For the smallest query item, records whose smallest item *is* that item
   carry no posting (the metadata table replaces it), so candidates falling in
   its metadata region are accepted without touching the list (lines 11–14).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.roi import RangeOfInterest, subset_roi
from repro.core.sequence import SequenceForm

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.core.oif import OrderedInvertedFile
    from repro.storage.stats import ReadContext


def evaluate_subset(
    oif: "OrderedInvertedFile",
    query_ranks: SequenceForm,
    ctx: "ReadContext | None" = None,
) -> list[int]:
    """Return the internal ids of records containing every rank in ``query_ranks``."""
    roi = subset_roi(query_ranks, oif.domain_size)
    if len(query_ranks) == 1:
        return _single_item_subset(oif, query_ranks[0], ctx)

    smallest = query_ranks[0]
    largest = query_ranks[-1]
    meta_region = oif.metadata.region_for(smallest) if oif.use_metadata else None

    # Step 1: candidates from the least frequent item's list, inside the RoI.
    candidates: dict[int, int] = {}
    for _block_key, block in oif.scan_blocks(largest, roi, ctx=ctx):
        for posting in block.postings(ctx):
            candidates[posting.record_id] = posting.length
    if not candidates:
        return []

    lowest_candidate = min(candidates)
    highest_candidate = max(candidates)
    # Tag bounds observed while scanning: every remaining candidate's sequence
    # form lies between these two block tags, so later scans can be restricted
    # to the corresponding sub-range of each list (line 15 of Algorithm 1 —
    # "using the B-tree we can access only this region").
    narrowed_lower = roi.lower
    narrowed_upper = roi.upper

    # Step 2: merge-join with the remaining lists, least frequent first.
    for position in range(len(query_ranks) - 2, -1, -1):
        item_rank = query_ranks[position]
        survivors: dict[int, int] = {}
        scan_range = (
            RangeOfInterest(lower=narrowed_lower, upper=narrowed_upper)
            if oif.narrow_candidate_range
            else roi
        )
        previous_tag = scan_range.lower
        first_survivor_lower = None
        last_survivor_upper = None
        for block_key, block in oif.scan_blocks(item_rank, scan_range, ctx=ctx):
            if oif.narrow_candidate_range and block_key.last_id < lowest_candidate:
                # The block precedes every remaining candidate: its data page
                # is never touched; only its key was read from the leaf.
                previous_tag = block_key.tag
                continue
            found_here = False
            for posting in block.postings(ctx):
                if posting.record_id in candidates:
                    survivors[posting.record_id] = posting.length
                    found_here = True
            if found_here:
                if first_survivor_lower is None:
                    first_survivor_lower = previous_tag
                last_survivor_upper = block_key.tag
            previous_tag = block_key.tag
            if oif.narrow_candidate_range and block_key.last_id >= highest_candidate:
                # Every candidate id has been covered: later blocks cannot
                # contribute, so the scan stops early.
                break

        if position == 0 and meta_region is not None:
            # Candidates whose smallest item is the query's smallest item have
            # no posting in its list; the in-memory metadata region vouches for
            # them instead.
            for record_id, length in candidates.items():
                if record_id in meta_region:
                    survivors[record_id] = length

        candidates = survivors
        if not candidates:
            return []
        lowest_candidate = min(candidates)
        highest_candidate = max(candidates)
        if oif.narrow_candidate_range and first_survivor_lower is not None:
            # Tighten the tag window around the surviving candidates.  The
            # bounds come from block tags already read, so this costs nothing.
            # Lower-bound tightening is always safe (even with truncated tags);
            # upper-bound tightening is only exact for full tags, because a
            # truncated tag under-approximates the block's true last record.
            narrowed_lower = max(narrowed_lower, first_survivor_lower)
            if last_survivor_upper is not None and oif.tag_prefix is None:
                narrowed_upper = min(narrowed_upper, last_survivor_upper)

    return sorted(candidates)


def _single_item_subset(
    oif: "OrderedInvertedFile", item_rank: int, ctx: "ReadContext | None" = None
) -> list[int]:
    """Subset query with a single item: the item's full list plus its metadata region."""
    roi = subset_roi((item_rank,), oif.domain_size)
    result: list[int] = []
    for _block_key, block in oif.scan_blocks(item_rank, roi, ctx=ctx):
        result.extend(posting.record_id for posting in block.postings(ctx))
    if oif.use_metadata:
        region = oif.metadata.region_for(item_rank)
        if region is not None:
            result.extend(range(region.lower, region.upper + 1))
    return sorted(result)
