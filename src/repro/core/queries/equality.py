"""Equality query evaluation over the OIF (Section 4.2).

An equality query returns the records whose set-value is *exactly* the query
set.  On the OIF the Range of Interest collapses to a single point — the
query's own sequence form — so each involved list contributes only the one or
two blocks whose tag range covers that point.  Together with the cardinality
filter (postings carry the record length) and the metadata region of the
query's smallest item, the cost becomes ``O(|qs| · log |D|)`` page accesses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.roi import equality_roi
from repro.core.sequence import SequenceForm

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.core.oif import OrderedInvertedFile
    from repro.storage.stats import ReadContext


def evaluate_equality(
    oif: "OrderedInvertedFile",
    query_ranks: SequenceForm,
    ctx: "ReadContext | None" = None,
) -> list[int]:
    """Return the internal ids of records whose sequence form equals ``query_ranks``."""
    roi = equality_roi(query_ranks, oif.domain_size)
    cardinality = len(query_ranks)
    smallest = query_ranks[0]

    meta_region = oif.metadata.region_for(smallest) if oif.use_metadata else None
    if oif.use_metadata and meta_region is None:
        # No record has the query's smallest item as its own smallest item,
        # hence no record can equal the query set.
        return []

    if cardinality == 1:
        return _single_item_equality(oif, smallest, ctx)

    # The smallest query item's list never holds postings for records equal to
    # the query (their smallest item is the query's smallest item, which the
    # metadata table covers), so with metadata enabled that list is skipped.
    ranks_to_scan = query_ranks[1:] if oif.use_metadata else query_ranks

    candidates: dict[int, int] | None = None
    for item_rank in reversed(ranks_to_scan):
        found: dict[int, int] = {}
        for _block_key, block in oif.scan_blocks(item_rank, roi, ctx=ctx):
            for posting in block.postings(ctx):
                if posting.length != cardinality:
                    continue
                if candidates is not None and posting.record_id not in candidates:
                    continue
                found[posting.record_id] = posting.length
        candidates = found
        if not candidates:
            return []

    assert candidates is not None
    if oif.use_metadata:
        assert meta_region is not None
        result = [record_id for record_id in candidates if record_id in meta_region]
    else:
        result = list(candidates)
    return sorted(result)


def _single_item_equality(
    oif: "OrderedInvertedFile", item_rank: int, ctx: "ReadContext | None" = None
) -> list[int]:
    """Equality query with a single item: only records equal to ``{item}`` match."""
    if oif.use_metadata:
        region = oif.metadata.region_for(item_rank)
        if region is None:
            return []
        return list(region.singleton_ids)
    roi = equality_roi((item_rank,), oif.domain_size)
    result: list[int] = []
    for _block_key, block in oif.scan_blocks(item_rank, roi, ctx=ctx):
        for posting in block.postings(ctx):
            if posting.length == 1:
                result.append(posting.record_id)
    return sorted(result)
