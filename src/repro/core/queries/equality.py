"""Equality query evaluation over the OIF (Section 4.2).

An equality query returns the records whose set-value is *exactly* the query
set.  On the OIF the Range of Interest collapses to a single point — the
query's own sequence form — so each involved list contributes only the one or
two blocks whose tag range covers that point.  Together with the cardinality
filter (postings carry the record length) and the metadata region of the
query's smallest item, the cost becomes ``O(|qs| · log |D|)`` page accesses.

Candidates live as sorted id columns: each list's blocks are batch-decoded
(:class:`~repro.compression.postings.PostingColumns`), filtered by the
cardinality, and merge-joined against the surviving candidates; the final
metadata-region filter is a :mod:`bisect` window on the sorted column.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING

from repro.core.intersect import intersect_ids
from repro.core.roi import equality_roi
from repro.core.sequence import SequenceForm

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.core.oif import OrderedInvertedFile
    from repro.storage.stats import ReadContext


def evaluate_equality(
    oif: "OrderedInvertedFile",
    query_ranks: SequenceForm,
    ctx: "ReadContext | None" = None,
) -> list[int]:
    """Return the internal ids of records whose sequence form equals ``query_ranks``."""
    roi = equality_roi(query_ranks, oif.domain_size)
    cardinality = len(query_ranks)
    smallest = query_ranks[0]

    meta_region = oif.metadata.region_for(smallest) if oif.use_metadata else None
    if oif.use_metadata and meta_region is None:
        # No record has the query's smallest item as its own smallest item,
        # hence no record can equal the query set.
        return []

    if cardinality == 1:
        return _single_item_equality(oif, smallest, ctx)

    # The smallest query item's list never holds postings for records equal to
    # the query (their smallest item is the query's smallest item, which the
    # metadata table covers), so with metadata enabled that list is skipped.
    ranks_to_scan = query_ranks[1:] if oif.use_metadata else query_ranks

    candidates: "list[int] | None" = None
    for item_rank in reversed(ranks_to_scan):
        matching: list[int] = []
        for _block_key, block in oif.scan_blocks(item_rank, roi, ctx=ctx):
            columns = block.columns(ctx)
            # Cardinality filter on the length column; block ids ascend, so
            # the filtered run stays sorted.
            matching.extend(
                record_id
                for record_id, length in zip(columns.ids, columns.lengths)
                if length == cardinality
            )
        if candidates is None:
            candidates = matching
        else:
            candidates = intersect_ids(candidates, matching)
        if not candidates:
            return []

    assert candidates is not None
    if oif.use_metadata:
        assert meta_region is not None
        lo = bisect_left(candidates, meta_region.lower)
        hi = bisect_right(candidates, meta_region.upper)
        return candidates[lo:hi]
    return candidates


def _single_item_equality(
    oif: "OrderedInvertedFile", item_rank: int, ctx: "ReadContext | None" = None
) -> list[int]:
    """Equality query with a single item: only records equal to ``{item}`` match."""
    if oif.use_metadata:
        region = oif.metadata.region_for(item_rank)
        if region is None:
            return []
        return list(region.singleton_ids)
    roi = equality_roi((item_rank,), oif.domain_size)
    result: list[int] = []
    for _block_key, block in oif.scan_blocks(item_rank, roi, ctx=ctx):
        columns = block.columns(ctx)
        result.extend(
            record_id
            for record_id, length in zip(columns.ids, columns.lengths)
            if length == 1
        )
    return result
