"""Query evaluation algorithms for the Ordered Inverted File.

Each predicate has its own module; all of them operate purely in internal-id /
rank space and return internal record ids.  The :class:`OrderedInvertedFile`
wraps them and translates results back to the caller's original record ids.
"""

from repro.core.queries.equality import evaluate_equality
from repro.core.queries.subset import evaluate_subset
from repro.core.queries.superset import evaluate_superset

__all__ = ["evaluate_subset", "evaluate_equality", "evaluate_superset"]
