"""Superset query evaluation over the OIF (Algorithm 2).

A superset query returns the records whose set-value is contained in the query
set (every item of the record appears in ``qs``).  The evaluation merges the
inverted lists of the query items while counting, for every encountered
record, how many of its items have been seen (``found``).  A record is an
answer exactly when ``found`` reaches its stored length; it is discarded as
soon as the number of *unexamined* query items can no longer make up the
difference.

The Range of Interest differs per list (Definition 4): for the query item
``q_i`` the candidate records are grouped by their smallest item ``q_j``
(``j <= i`` — a record that is a subset of ``qs`` can only have a query item
as its smallest item), and each group occupies one contiguous range of the
ordered id space.  The last group (``j = i``) consists of records whose
smallest item is ``q_i`` itself; those records carry no posting for ``q_i``,
so that group is served from the in-memory metadata table: its single-item
records are immediate answers and its multi-item records get their ``found``
counter bumped for free (lines 22–24 of Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.roi import RangeOfInterest, superset_rois
from repro.core.sequence import SequenceForm

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.core.oif import OrderedInvertedFile
    from repro.storage.stats import ReadContext


@dataclass
class _Candidate:
    """Bookkeeping for one potentially matching record."""

    length: int
    found: int = 0


def evaluate_superset(
    oif: "OrderedInvertedFile",
    query_ranks: SequenceForm,
    ctx: "ReadContext | None" = None,
) -> list[int]:
    """Return the internal ids of records whose items are all in ``query_ranks``."""
    query_size = len(query_ranks)
    rois_per_item = superset_rois(query_ranks, oif.domain_size)
    largest = query_ranks[-1]

    candidates: dict[int, _Candidate] = {}
    results: list[int] = []

    # Items are processed from the least to the most frequent, as in
    # Algorithm 2; after processing the item at position ``idx`` there remain
    # ``idx`` query items that can still contribute one occurrence each.
    for idx in range(query_size - 1, -1, -1):
        item_rank = query_ranks[idx]
        list_ranges = list(rois_per_item[item_rank])
        if not oif.use_metadata:
            # Without the metadata table, the records whose smallest item is
            # ``q_idx`` live in the list too, so their range is scanned as well.
            list_ranges.append(
                RangeOfInterest(lower=(item_rank,), upper=tuple(sorted({item_rank, largest})))
            )

        _scan_item_ranges(
            oif,
            item_rank=item_rank,
            ranges=list_ranges,
            remaining_items=idx,
            candidates=candidates,
            results=results,
            ctx=ctx,
        )

        if oif.use_metadata:
            _apply_metadata_region(oif, item_rank, candidates, results)

        # Prune candidates that cannot reach their full length any more.
        if idx:
            doomed = [
                record_id
                for record_id, candidate in candidates.items()
                if candidate.length - candidate.found > idx
            ]
            for record_id in doomed:
                del candidates[record_id]

    return sorted(results)


def _scan_item_ranges(
    oif: "OrderedInvertedFile",
    *,
    item_rank: int,
    ranges: list[RangeOfInterest],
    remaining_items: int,
    candidates: dict[int, _Candidate],
    results: list[int],
    ctx: "ReadContext | None" = None,
) -> None:
    """Scan one item's list over its Ranges of Interest, updating candidates."""
    # A record first encountered here can collect at most one occurrence now
    # plus one per still-unexamined query item (its smallest item's occurrence
    # is covered by that item's metadata region or list, both not yet visited).
    max_new_length = 1 + remaining_items
    last_processed_id = 0

    for roi in ranges:
        for block_key, block in oif.scan_blocks(item_rank, roi, ctx=ctx):
            if block_key.last_id <= last_processed_id:
                # The previous range's trailing block already covered this one
                # (the check of line 21 in Algorithm 2): skip re-processing.
                continue
            for posting in block.postings(ctx):
                if posting.record_id <= last_processed_id:
                    continue
                candidate = candidates.get(posting.record_id)
                if candidate is not None:
                    candidate.found += 1
                    if candidate.found == candidate.length:
                        results.append(posting.record_id)
                        del candidates[posting.record_id]
                elif posting.length <= max_new_length:
                    if posting.length == 1:
                        # A single-item record found in a list can only be the
                        # item itself, hence an immediate answer.
                        results.append(posting.record_id)
                    else:
                        candidates[posting.record_id] = _Candidate(
                            length=posting.length, found=1
                        )
            last_processed_id = max(last_processed_id, block_key.last_id)


def _apply_metadata_region(
    oif: "OrderedInvertedFile",
    item_rank: int,
    candidates: dict[int, _Candidate],
    results: list[int],
) -> None:
    """Credit the metadata region of ``item_rank`` (lines 22–24 of Algorithm 2)."""
    region = oif.metadata.region_for(item_rank)
    if region is None:
        return
    # Single-item records {item} are answers by definition.
    results.extend(region.singleton_ids)
    # Multi-item records whose smallest item is this one get one more
    # occurrence without any page access.
    if region.multi_item_ids:
        completed: list[int] = []
        for record_id, candidate in candidates.items():
            if region.singleton_upper < record_id <= region.upper:
                candidate.found += 1
                if candidate.found == candidate.length:
                    completed.append(record_id)
        for record_id in completed:
            results.append(record_id)
            del candidates[record_id]
