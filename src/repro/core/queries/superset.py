"""Superset query evaluation over the OIF (Algorithm 2).

A superset query returns the records whose set-value is contained in the query
set (every item of the record appears in ``qs``).  The evaluation merges the
inverted lists of the query items while counting, for every encountered
record, how many of its items have been seen (``found``).  A record is an
answer exactly when ``found`` reaches its stored length; it is discarded as
soon as the number of *unexamined* query items can no longer make up the
difference.

The Range of Interest differs per list (Definition 4): for the query item
``q_i`` the candidate records are grouped by their smallest item ``q_j``
(``j <= i`` — a record that is a subset of ``qs`` can only have a query item
as its smallest item), and each group occupies one contiguous range of the
ordered id space.  The last group (``j = i``) consists of records whose
smallest item is ``q_i`` itself; those records carry no posting for ``q_i``,
so that group is served from the in-memory metadata table: its single-item
records are immediate answers and its multi-item records get their ``found``
counter bumped for free (lines 22–24 of Algorithm 2).

The bookkeeping is array-native: candidates are three parallel sorted
columns (id, length, found).  Each item's ranges are batch-decoded and
concatenated into one ascending run (the ``last_processed_id`` guard of line
21 trims range overlaps with a :mod:`bisect` cut instead of per-posting
checks), then a single two-pointer merge updates the candidate columns,
emits completed answers and admits new candidates — one pass per item, no
dicts, no per-posting objects.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING

from repro.core.roi import RangeOfInterest, superset_rois
from repro.core.sequence import SequenceForm

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.core.oif import OrderedInvertedFile
    from repro.storage.stats import ReadContext


def evaluate_superset(
    oif: "OrderedInvertedFile",
    query_ranks: SequenceForm,
    ctx: "ReadContext | None" = None,
) -> list[int]:
    """Return the internal ids of records whose items are all in ``query_ranks``."""
    query_size = len(query_ranks)
    rois_per_item = superset_rois(query_ranks, oif.domain_size)
    largest = query_ranks[-1]

    cand_ids: list[int] = []
    cand_lens: list[int] = []
    cand_found: list[int] = []
    results: list[int] = []

    # Items are processed from the least to the most frequent, as in
    # Algorithm 2; after processing the item at position ``idx`` there remain
    # ``idx`` query items that can still contribute one occurrence each.
    for idx in range(query_size - 1, -1, -1):
        item_rank = query_ranks[idx]
        list_ranges = list(rois_per_item[item_rank])
        if not oif.use_metadata:
            # Without the metadata table, the records whose smallest item is
            # ``q_idx`` live in the list too, so their range is scanned as well.
            list_ranges.append(
                RangeOfInterest(lower=(item_rank,), upper=tuple(sorted({item_rank, largest})))
            )

        run_ids, run_lens = _collect_item_run(oif, item_rank, list_ranges, ctx)
        cand_ids, cand_lens, cand_found = _merge_item_run(
            cand_ids,
            cand_lens,
            cand_found,
            run_ids,
            run_lens,
            # A record first encountered here can collect at most one
            # occurrence now plus one per still-unexamined query item (its
            # smallest item's occurrence is covered by that item's metadata
            # region or list, both not yet visited).
            max_new_length=1 + idx,
            results=results,
        )

        if oif.use_metadata:
            _apply_metadata_region(
                oif, item_rank, cand_ids, cand_lens, cand_found, results
            )

        # Prune candidates that cannot reach their full length any more.
        if idx:
            keep = [
                position
                for position in range(len(cand_ids))
                if cand_lens[position] - cand_found[position] <= idx
            ]
            if len(keep) != len(cand_ids):
                cand_ids = [cand_ids[position] for position in keep]
                cand_lens = [cand_lens[position] for position in keep]
                cand_found = [cand_found[position] for position in keep]

    return sorted(results)


def _collect_item_run(
    oif: "OrderedInvertedFile",
    item_rank: int,
    ranges: "list[RangeOfInterest]",
    ctx: "ReadContext | None" = None,
) -> "tuple[list[int], list[int]]":
    """One item's postings over its Ranges of Interest as ascending columns.

    The ranges are ordered by their position in the id space, and the
    trailing block of one range may spill into the next (the check of line
    21 in Algorithm 2): blocks whose last id was already covered are skipped
    without touching their data page, and a partially covered block is
    trimmed with one :func:`bisect_right` cut.
    """
    run_ids: list[int] = []
    run_lens: list[int] = []
    last_processed_id = 0
    for roi in ranges:
        for block_key, block in oif.scan_blocks(item_rank, roi, ctx=ctx):
            if block_key.last_id <= last_processed_id:
                # The previous range's trailing block already covered this one:
                # skip re-processing.
                continue
            columns = block.columns(ctx)
            ids = columns.ids
            if ids[0] <= last_processed_id:
                start = bisect_right(ids, last_processed_id)
                run_ids.extend(ids[start:])
                run_lens.extend(columns.lengths[start:])
            else:
                run_ids.extend(ids)
                run_lens.extend(columns.lengths)
            last_processed_id = block_key.last_id
    return run_ids, run_lens


def _merge_item_run(
    cand_ids: "list[int]",
    cand_lens: "list[int]",
    cand_found: "list[int]",
    run_ids: "list[int]",
    run_lens: "list[int]",
    *,
    max_new_length: int,
    results: "list[int]",
) -> "tuple[list[int], list[int], list[int]]":
    """Merge one item's run into the candidate columns (one two-pointer pass).

    Known candidates get their ``found`` bumped — and move to ``results``
    when it reaches their length; unseen records join as new candidates when
    their length is still reachable (single-item records are immediate
    answers).  Returns the new candidate columns, still sorted.
    """
    if not cand_ids:
        out_ids: list[int] = []
        out_lens: list[int] = []
        out_found: list[int] = []
        for position in range(len(run_ids)):
            length = run_lens[position]
            if length > max_new_length:
                continue
            if length == 1:
                results.append(run_ids[position])
            else:
                out_ids.append(run_ids[position])
                out_lens.append(length)
                out_found.append(1)
        return out_ids, out_lens, out_found

    out_ids = []
    out_lens = []
    out_found = []
    i = 0
    num_candidates = len(cand_ids)
    for position in range(len(run_ids)):
        record_id = run_ids[position]
        while i < num_candidates and cand_ids[i] < record_id:
            out_ids.append(cand_ids[i])
            out_lens.append(cand_lens[i])
            out_found.append(cand_found[i])
            i += 1
        if i < num_candidates and cand_ids[i] == record_id:
            found = cand_found[i] + 1
            if found == cand_lens[i]:
                results.append(record_id)
            else:
                out_ids.append(record_id)
                out_lens.append(cand_lens[i])
                out_found.append(found)
            i += 1
        else:
            length = run_lens[position]
            if length <= max_new_length:
                if length == 1:
                    # A single-item record found in a list can only be the
                    # item itself, hence an immediate answer.
                    results.append(record_id)
                else:
                    out_ids.append(record_id)
                    out_lens.append(length)
                    out_found.append(1)
    while i < num_candidates:
        out_ids.append(cand_ids[i])
        out_lens.append(cand_lens[i])
        out_found.append(cand_found[i])
        i += 1
    return out_ids, out_lens, out_found


def _apply_metadata_region(
    oif: "OrderedInvertedFile",
    item_rank: int,
    cand_ids: "list[int]",
    cand_lens: "list[int]",
    cand_found: "list[int]",
    results: "list[int]",
) -> None:
    """Credit the metadata region of ``item_rank`` (lines 22–24 of Algorithm 2).

    Mutates the candidate columns in place: the affected candidates form one
    contiguous :mod:`bisect` window of the sorted id column.
    """
    region = oif.metadata.region_for(item_rank)
    if region is None:
        return
    # Single-item records {item} are answers by definition.
    results.extend(region.singleton_ids)
    # Multi-item records whose smallest item is this one get one more
    # occurrence without any page access.
    if region.multi_item_ids:
        lo = bisect_right(cand_ids, region.singleton_upper)
        hi = bisect_right(cand_ids, region.upper)
        completed: list[int] = []
        for position in range(lo, hi):
            found = cand_found[position] + 1
            if found == cand_lens[position]:
                results.append(cand_ids[position])
                completed.append(position)
            else:
                cand_found[position] = found
        for position in reversed(completed):
            del cand_ids[position]
            del cand_lens[position]
            del cand_found[position]
