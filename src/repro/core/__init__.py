"""Core of the reproduction: the Ordered Inverted File and its building blocks.

The subpackage contains the item order and sequence forms (Section 3), the
metadata table (Theorem 1), the Range-of-Interest machinery (Section 4), the
OIF index itself and the batch-update layer (Section 4.4).
"""

from repro.core.interfaces import QueryResult, QueryType, SetContainmentIndex
from repro.core.items import Item, ItemOrder, Vocabulary
from repro.core.metadata import MetadataRegion, MetadataTable
from repro.core.oif import OIFBuildReport, OrderedInvertedFile
from repro.core.ordering import OrderedDataset, order_dataset
from repro.core.query import (
    And,
    Cursor,
    Equality,
    Expr,
    Not,
    Or,
    Planner,
    Subset,
    Superset,
    expr_from_dict,
)
from repro.core.records import Dataset, Record
from repro.core.roi import RangeOfInterest, equality_roi, subset_roi, superset_rois
from repro.core.sequence import SequenceForm, sequence_form
from repro.core.shard import MergedShardCursor, ShardedIndex

__all__ = [
    "Item",
    "ItemOrder",
    "Vocabulary",
    "Record",
    "Dataset",
    "SequenceForm",
    "sequence_form",
    "OrderedDataset",
    "order_dataset",
    "MetadataRegion",
    "MetadataTable",
    "RangeOfInterest",
    "subset_roi",
    "equality_roi",
    "superset_rois",
    "OrderedInvertedFile",
    "OIFBuildReport",
    "QueryType",
    "QueryResult",
    "SetContainmentIndex",
    "MergedShardCursor",
    "ShardedIndex",
    "And",
    "Cursor",
    "Equality",
    "Expr",
    "Not",
    "Or",
    "Planner",
    "Subset",
    "Superset",
    "expr_from_dict",
]
