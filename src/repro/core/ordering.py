"""Record reordering: from an arbitrary dataset to the OIF's ordered id space.

Building an OIF starts by (1) deriving the frequency order ``<_D`` over the
items, (2) computing each record's sequence form, (3) sorting the records
lexicographically on those sequence forms, and (4) assigning new dense ids
1..N in that order (Figure 3 of the paper).  The result — an
:class:`OrderedDataset` — also carries the metadata table of Theorem 1 and the
mappings between original and internal ids, which the query API uses to return
results in terms of the caller's original ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.items import ItemOrder
from repro.core.metadata import MetadataRegion, MetadataTable
from repro.core.records import Dataset, Record
from repro.core.sequence import SequenceForm, sequence_form
from repro.errors import IndexBuildError


@dataclass
class OrderedDataset:
    """A dataset renumbered into the OIF's lexicographic id space.

    Attributes
    ----------
    order:
        The ``<_D`` item order used for the renumbering.
    sequence_forms:
        ``sequence_forms[i]`` is the sequence form of the record with internal
        id ``i + 1`` (internal ids are dense and start at 1).
    lengths:
        ``lengths[i]`` is the cardinality of record ``i + 1``.
    new_to_old / old_to_new:
        Mappings between internal ids and the ids of the source dataset.
    metadata:
        The Theorem 1 regions, always computed (indexes may ignore it).
    """

    order: ItemOrder
    sequence_forms: list[SequenceForm]
    lengths: list[int]
    new_to_old: list[int]
    old_to_new: dict[int, int]
    metadata: MetadataTable
    source: Dataset = field(repr=False)

    @property
    def num_records(self) -> int:
        """Number of records (internal ids run from 1 to this value)."""
        return len(self.sequence_forms)

    def sequence_form_of(self, internal_id: int) -> SequenceForm:
        """Sequence form of the record with the given internal id."""
        self._check_internal_id(internal_id)
        return self.sequence_forms[internal_id - 1]

    def length_of(self, internal_id: int) -> int:
        """Set cardinality of the record with the given internal id."""
        self._check_internal_id(internal_id)
        return self.lengths[internal_id - 1]

    def original_id(self, internal_id: int) -> int:
        """Map an internal id back to the source dataset's record id."""
        self._check_internal_id(internal_id)
        return self.new_to_old[internal_id - 1]

    def internal_id(self, original_id: int) -> int:
        """Map a source record id to its internal id."""
        try:
            return self.old_to_new[original_id]
        except KeyError:
            raise IndexBuildError(f"unknown original record id {original_id}") from None

    def record(self, internal_id: int) -> Record:
        """Fetch the source record for an internal id."""
        return self.source.get(self.original_id(internal_id))

    def _check_internal_id(self, internal_id: int) -> None:
        if not 1 <= internal_id <= len(self.sequence_forms):
            raise IndexBuildError(
                f"internal id {internal_id} out of range 1..{len(self.sequence_forms)}"
            )


def order_dataset(dataset: Dataset, order: ItemOrder | None = None) -> OrderedDataset:
    """Renumber ``dataset`` into lexicographic sequence-form order.

    Parameters
    ----------
    dataset:
        The source records (ids may be arbitrary).
    order:
        The item order to use.  Defaults to the frequency order of Equation 1
        derived from the dataset itself; the ablation experiments pass other
        orders here.
    """
    if order is None:
        order = dataset.vocabulary.frequency_order()

    keyed: list[tuple[SequenceForm, int, int]] = []
    for record in dataset:
        form = sequence_form(record.items, order)
        keyed.append((form, record.record_id, record.length))
    keyed.sort(key=lambda entry: (entry[0], entry[1]))

    sequence_forms: list[SequenceForm] = []
    lengths: list[int] = []
    new_to_old: list[int] = []
    old_to_new: dict[int, int] = {}
    for internal_id, (form, original_id, length) in enumerate(keyed, start=1):
        sequence_forms.append(form)
        lengths.append(length)
        new_to_old.append(original_id)
        old_to_new[original_id] = internal_id

    metadata = _build_metadata(sequence_forms)
    return OrderedDataset(
        order=order,
        sequence_forms=sequence_forms,
        lengths=lengths,
        new_to_old=new_to_old,
        old_to_new=old_to_new,
        metadata=metadata,
        source=dataset,
    )


def _build_metadata(sequence_forms: Sequence[SequenceForm]) -> MetadataTable:
    """Derive the Theorem 1 regions from the sorted sequence forms."""
    regions: dict[int, MetadataRegion] = {}
    current_rank: int | None = None
    region_start = 1
    singleton_upper = 0

    def close_region(end_id: int) -> None:
        if current_rank is None:
            return
        regions[current_rank] = MetadataRegion(
            item_rank=current_rank,
            lower=region_start,
            upper=end_id,
            singleton_upper=singleton_upper,
        )

    for internal_id, form in enumerate(sequence_forms, start=1):
        if not form:
            raise IndexBuildError(
                f"record with internal id {internal_id} has an empty set-value; "
                "the OIF requires at least one item per record"
            )
        smallest = form[0]
        if smallest != current_rank:
            close_region(internal_id - 1)
            current_rank = smallest
            region_start = internal_id
            singleton_upper = region_start - 1
        if len(form) == 1:
            singleton_upper = internal_id
    close_region(len(sequence_forms))
    return MetadataTable(regions)
