"""Per-request wall-clock deadlines, propagated through query execution.

A :class:`Deadline` is an absolute point on the monotonic clock.  The serving
layer arms one per request (server default, overridable per request on the
wire) in a :mod:`contextvars` context variable; everything below — planner,
cursors, probes — runs inside that context and the storage engine checks it
at every **page-access boundary** (:meth:`BufferPool.get_page
<repro.storage.buffer_pool.BufferPool.get_page>`).  An expired query
therefore stops reading pages at the next access instead of running to
completion, raising :class:`~repro.errors.DeadlineExceededError` out through
the cursor machinery.

Accounting stays exact: the check happens *before* the access is charged, so
every page a query did read is recorded in both its own
:class:`~repro.storage.stats.ReadContext` and the pool totals (the two are
updated atomically under the buffer-pool lock), and no access is ever
half-charged when the deadline fires.

Propagation:

* **threads** — :func:`wrap` captures the submitting thread's deadline so
  shard fan-out tasks running on a shared pool inherit it (the fan-out layer
  composes it with :func:`repro.obs.trace.wrap`);
* **processes** — a deadline cannot cross the process boundary as an
  absolute monotonic instant; the parent ships the *remaining* budget in
  milliseconds and each worker arms a fresh local deadline from it
  (:class:`~repro.core.shard.procpool.ShardProcessPool`).

Checks are cheap when no deadline is armed: one context-variable read.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Callable

from repro.errors import DeadlineExceededError

_CURRENT: "ContextVar[Deadline | None]" = ContextVar("repro_deadline", default=None)


class Deadline:
    """An absolute wall-clock expiry on the monotonic clock."""

    __slots__ = ("_expires_at",)

    def __init__(self, expires_at: float) -> None:
        self._expires_at = expires_at

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        if budget_ms <= 0:
            raise DeadlineExceededError(
                f"deadline budget must be positive, got {budget_ms} ms"
            )
        return cls(time.monotonic() + budget_ms / 1000.0)

    def remaining_ms(self) -> float:
        """Milliseconds until expiry (negative once expired)."""
        return (self._expires_at - time.monotonic()) * 1000.0

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` if this deadline has passed."""
        if time.monotonic() >= self._expires_at:
            raise DeadlineExceededError(
                "query deadline exceeded "
                f"({-self.remaining_ms():.1f} ms past the deadline)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining_ms={self.remaining_ms():.1f})"


def current() -> "Deadline | None":
    """The deadline armed for the calling context, if any."""
    return _CURRENT.get()


def activate(deadline: "Deadline | None"):
    """Arm ``deadline`` for the calling context; returns the reset token."""
    return _CURRENT.set(deadline)


def deactivate(token) -> None:
    """Disarm the deadline armed by the matching :func:`activate` call."""
    _CURRENT.reset(token)


def check() -> None:
    """Raise :class:`DeadlineExceededError` when the armed deadline passed.

    The page-access hook: one context-variable read when no deadline is
    armed, one extra clock read when one is.
    """
    deadline = _CURRENT.get()
    if deadline is not None and time.monotonic() >= deadline._expires_at:
        raise DeadlineExceededError(
            "query deadline exceeded "
            f"({-deadline.remaining_ms():.1f} ms past the deadline)"
        )


def wrap(fn: Callable) -> Callable:
    """Capture the caller's deadline for execution on another thread.

    Identity when no deadline is armed (zero overhead); otherwise the
    returned callable arms the captured deadline around ``fn`` — used by the
    shard fan-out so tasks on a shared pool inherit the submitting query's
    deadline.
    """
    deadline = _CURRENT.get()
    if deadline is None:
        return fn

    def _with_deadline(*args, **kwargs):
        token = _CURRENT.set(deadline)
        try:
            return fn(*args, **kwargs)
        finally:
            _CURRENT.reset(token)

    return _with_deadline
