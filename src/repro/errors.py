"""Exception hierarchy for the OIF reproduction library.

Every error raised by ``repro`` derives from :class:`ReproError`, so callers can
catch a single base class. The subclasses are grouped by subsystem: storage
engine, compression codecs, index construction and query evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class StorageError(ReproError):
    """Base class for failures inside the simulated storage engine."""


class PageError(StorageError):
    """A page id is out of range or a page payload has an illegal size."""


class BufferPoolError(StorageError):
    """The buffer pool was misused (e.g. zero capacity, unknown page)."""


class BTreeError(StorageError):
    """Structural failure or misuse of the disk-resident B+-tree."""


class DuplicateKeyError(BTreeError):
    """An insert tried to add a key that already exists in a unique index."""


class KeyNotFoundError(StorageError):
    """A point lookup did not find the requested key."""


class HashFileError(StorageError):
    """Structural failure or misuse of the hash-organized table."""


class DurabilityError(StorageError):
    """A persisted index directory, manifest or WAL is missing or corrupt."""


class CompressionError(ReproError):
    """A codec was fed malformed data (e.g. truncated v-byte stream)."""


class IndexError_(ReproError):
    """Base class for index construction / usage failures.

    The trailing underscore avoids shadowing the built-in :class:`IndexError`.
    """


class IndexBuildError(IndexError_):
    """The index could not be built from the supplied dataset."""


class IndexNotBuiltError(IndexError_):
    """A query was issued against an index that has not been built yet."""


class QueryError(ReproError):
    """A containment query was malformed (e.g. empty query set, unknown item)."""


class DatasetError(ReproError):
    """A dataset is malformed or a generator received invalid parameters."""


class WorkloadError(ReproError):
    """A query workload could not be generated with the requested parameters."""


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent or cannot be executed."""


class ServiceError(ReproError):
    """The query-serving subsystem was misused (unknown index, bad request...)."""


class UnknownIndexError(ServiceError):
    """A request referenced an index name the manager does not hold.

    Distinguished from :class:`ServiceError` so the HTTP layer can map it to
    404 without sniffing error messages.
    """


class OverloadedError(ServiceError):
    """The server shed this request instead of queueing it (HTTP 429).

    ``reason`` names the admission gate that rejected the request
    (``"queue_full"`` / ``"index_limit"``) and ``retry_after`` is the
    server's hint — derived from observed service time and backlog — for how
    many seconds the client should wait before retrying.
    """

    def __init__(self, message: str, *, reason: str, retry_after: float) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class DeadlineExceededError(ServiceError):
    """A request's wall-clock deadline expired before it finished (HTTP 408).

    Raised at page-access boundaries deep in the storage engine, so an
    expired query stops reading pages instead of running to completion.  The
    single ``message`` argument keeps the exception picklable — it must
    cross the multiprocess shard-backend boundary intact.
    """


class ServiceHTTPError(ServiceError):
    """Client-side view of a non-2xx server response, typed by status.

    ``status`` is the HTTP status code; ``retry_after`` carries the server's
    ``Retry-After`` hint in seconds when one was sent (429 sheds).
    """

    def __init__(
        self, message: str, *, status: int, retry_after: "float | None" = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ServiceOverloadedError(ServiceHTTPError):
    """The server answered 429: the request was shed, retry after backoff."""


class ServiceTimeoutError(ServiceHTTPError):
    """The server answered 408: the request's deadline expired mid-execution."""
