"""repro — a reproduction of the Ordered Inverted File (OIF), EDBT 2011.

The package implements Terrovitis et al., "Efficient Answering of Set
Containment Queries for Skewed Item Distributions": the OIF index, the classic
inverted-file baseline, an unordered B-tree ablation, a signature-file
extension baseline, a simulated disk storage engine with page-access
accounting, dataset generators, query workloads and the full experiment suite.

Quick start::

    from repro import Dataset, OrderedInvertedFile

    data = Dataset.from_transactions([
        {"milk", "bread"},
        {"milk", "bread", "eggs"},
        {"eggs"},
    ])
    oif = OrderedInvertedFile(data)
    oif.subset_query({"milk", "bread"})      # -> [1, 2]
    oif.equality_query({"eggs"})             # -> [3]
    oif.superset_query({"milk", "bread"})    # -> [1]

For serving workloads, :mod:`repro.service` keeps indexes resident and answers
queries concurrently with result caching (``repro-oif serve``).  See the
top-level ``README.md`` for installation, the CLI quickstart, the serving
workflow and how to reproduce the paper's figures.
"""

from repro.baselines import (
    InvertedFile,
    NaiveScanIndex,
    SignatureFile,
    UnorderedBTreeInvertedFile,
)
from repro.core import (
    And,
    Dataset,
    Equality,
    Expr,
    ItemOrder,
    Not,
    Or,
    OrderedInvertedFile,
    QueryResult,
    QueryType,
    Record,
    SetContainmentIndex,
    Subset,
    Superset,
    Vocabulary,
    expr_from_dict,
)
from repro.errors import ReproError, ServiceError
from repro.storage import Environment

#: Serving types re-exported lazily (PEP 562): ``from repro import
#: ServiceServer`` works, but batch/experiment users do not pay for the
#: HTTP-server and thread-pool imports on every ``import repro``.
_SERVICE_EXPORTS = frozenset(
    {
        "IndexManager",
        "ManagedIndex",
        "QueryExecutor",
        "QueryOutcome",
        "ResultCache",
        "ServiceClient",
        "ServiceServer",
    }
)


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from repro import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__version__ = "1.1.0"

__all__ = [
    "Dataset",
    "Record",
    "Vocabulary",
    "ItemOrder",
    "OrderedInvertedFile",
    "InvertedFile",
    "UnorderedBTreeInvertedFile",
    "SignatureFile",
    "NaiveScanIndex",
    "SetContainmentIndex",
    "QueryType",
    "QueryResult",
    "And",
    "Or",
    "Not",
    "Subset",
    "Equality",
    "Superset",
    "Expr",
    "expr_from_dict",
    "Environment",
    "ReproError",
    "ServiceError",
    "IndexManager",
    "ManagedIndex",
    "QueryExecutor",
    "QueryOutcome",
    "ResultCache",
    "ServiceClient",
    "ServiceServer",
    "__version__",
]
