"""repro — a reproduction of the Ordered Inverted File (OIF), EDBT 2011.

The package implements Terrovitis et al., "Efficient Answering of Set
Containment Queries for Skewed Item Distributions": the OIF index, the classic
inverted-file baseline, an unordered B-tree ablation, a signature-file
extension baseline, a simulated disk storage engine with page-access
accounting, dataset generators, query workloads and the full experiment suite.

Quick start::

    from repro import Dataset, OrderedInvertedFile

    data = Dataset.from_transactions([
        {"milk", "bread"},
        {"milk", "bread", "eggs"},
        {"eggs"},
    ])
    oif = OrderedInvertedFile(data)
    oif.subset_query({"milk", "bread"})      # -> [1, 2]
    oif.equality_query({"eggs"})             # -> [3]
    oif.superset_query({"milk", "bread"})    # -> [1]
"""

from repro.baselines import (
    InvertedFile,
    NaiveScanIndex,
    SignatureFile,
    UnorderedBTreeInvertedFile,
)
from repro.core import (
    Dataset,
    ItemOrder,
    OrderedInvertedFile,
    QueryResult,
    QueryType,
    Record,
    SetContainmentIndex,
    Vocabulary,
)
from repro.errors import ReproError
from repro.storage import Environment

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "Record",
    "Vocabulary",
    "ItemOrder",
    "OrderedInvertedFile",
    "InvertedFile",
    "UnorderedBTreeInvertedFile",
    "SignatureFile",
    "NaiveScanIndex",
    "SetContainmentIndex",
    "QueryType",
    "QueryResult",
    "Environment",
    "ReproError",
    "__version__",
]
