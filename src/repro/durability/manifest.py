"""The versioned ``manifest.json`` anchoring a persisted index directory.

The manifest is the *commit point* of every checkpoint: generation files
(``pages-<gen>.db``, ``state-<gen>.json``) are written and fsynced first,
then the manifest is atomically replaced via ``os.replace`` — a crash at any
point leaves either the old or the new manifest in place, never a torn one.
Readers therefore trust whatever generation the manifest names and ignore
(and clean up) any other generation's files.
"""

from __future__ import annotations

import json
import os

from repro.errors import DurabilityError

#: Identifies the directory format (stored in every manifest).
FORMAT_NAME = "repro-oif-index"
#: Bumped on every incompatible change to the directory layout or page format.
#: Version 2: the persisted state gained the ``posting_reprs`` block (per-item
#: posting-representation tags + density threshold) that adaptive decode
#: restores without re-inspecting frequencies.
FORMAT_VERSION = 2
MANIFEST_NAME = "manifest.json"


def fsync_directory(directory: str) -> None:
    """fsync a directory so a just-renamed entry survives a crash."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_manifest(directory: str, payload: dict) -> None:
    """Atomically (re)write ``directory/manifest.json``.

    ``format`` / ``format_version`` are stamped in here, so callers only
    provide the index-specific fields.  The write goes to a temporary file
    that is fsynced and renamed over the manifest; the directory itself is
    fsynced afterwards so the rename is durable too.
    """
    record = {"format": FORMAT_NAME, "format_version": FORMAT_VERSION}
    record.update(payload)
    target = os.path.join(directory, MANIFEST_NAME)
    tmp = target + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    fsync_directory(directory)


def read_manifest(directory: str) -> dict:
    """Load and validate ``directory/manifest.json``.

    Raises :class:`~repro.errors.DurabilityError` (a ``StorageError``) with a
    clear message when the manifest is missing, unparseable, from a different
    format, or from an incompatible format version — instead of letting the
    caller fail later on a short read or garbage decode.
    """
    target = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(target, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except FileNotFoundError:
        raise DurabilityError(
            f"{directory!r} is not a persisted index: no {MANIFEST_NAME} found"
        ) from None
    except (OSError, ValueError) as exc:
        raise DurabilityError(f"cannot parse {target!r}: {exc}") from None
    if not isinstance(record, dict) or record.get("format") != FORMAT_NAME:
        raise DurabilityError(
            f"{target!r} is not a {FORMAT_NAME} manifest "
            f"(format={record.get('format') if isinstance(record, dict) else record!r})"
        )
    version = record.get("format_version")
    if version != FORMAT_VERSION:
        raise DurabilityError(
            f"{target!r} has format version {version}; this build reads "
            f"version {FORMAT_VERSION} — rebuild the index or upgrade the library"
        )
    return record
