"""Generation-based index persistence and the durable update facade.

Directory layout (monolithic OIF)::

    <dir>/manifest.json        commit point: names the live generation
    <dir>/pages-<gen>.db       verbatim page image of the storage environment
    <dir>/state-<gen>.json     Python-side OIF state (order, forms, id maps)
    <dir>/wal.log              CRC-framed updates since the last checkpoint

Sharded indexes add one subdirectory per shard position, each with its own
page image, state file, manifest and WAL (``shard-03/wal.log``); the
top-level manifest carries the shard count, strategy and which positions are
populated.  LSNs are allocated from a single store-wide counter, so merging
the per-shard logs by LSN reproduces the exact update order.

Checkpoint protocol (all steps crash-safe):

1. write + fsync the next generation's page images and state files;
2. atomically replace ``manifest.json`` (the *commit point*) — a crash
   before this step leaves the old generation live, with the WAL intact;
3. truncate the WALs and delete the previous generation's files.  A crash
   between 2 and 3 is harmless: the manifest's ``checkpoint_lsn`` makes
   replay idempotent (frames at or below it are skipped), and stale
   generation files are swept on the next open.
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Iterable

from repro.core.oif import OrderedInvertedFile
from repro.core.records import Dataset, Record
from repro.core.shard import ShardedIndex
from repro.core.updates import UpdatableOIF, UpdatableShardedOIF, _UpdatableBase
from repro.durability.manifest import read_manifest, write_manifest
from repro.durability.state import (
    copy_environment,
    dump_state,
    load_environment,
    load_oif,
)
from repro.durability.wal import WriteAheadLog
from repro.errors import DurabilityError, QueryError
from repro.storage.kvstore import Environment

_GENERATION_FILE = re.compile(r"^(pages|state)-(\d+)\.(db|json)$")

KIND_OIF = "oif"
KIND_SHARDED = "sharded-oif"


def durable_env_factory(page_size: int, cache_bytes: int):
    """Environment factory for durable handles: catalog-enabled, memory-resident.

    Every build and flush-rebuild of a durable index must land on an
    environment whose page 0 is a table catalog, so its page image can be
    snapshotted verbatim and reopened — with identical page ids, which keeps
    the paper's page-access accounting equal across a save/load cycle.
    """

    def factory() -> Environment:
        return Environment(page_size=page_size, cache_bytes=cache_bytes, catalog=True)

    return factory


def _shard_dir(directory: str, position: int) -> str:
    return os.path.join(directory, f"shard-{position:02d}")


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_state_file(path: str, state: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(state, handle, separators=(",", ":"), sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())


def _sweep_stale_generations(directory: str, keep: int) -> None:
    """Remove generation files other than ``keep`` (orphans from crashes)."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return
    for name in names:
        match = _GENERATION_FILE.match(name)
        if match and int(match.group(2)) != keep:
            os.remove(os.path.join(directory, name))


def _check_options(options: dict) -> dict:
    for key, value in options.items():
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise DurabilityError(
                f"index option {key}={value!r} is not JSON-representable and "
                "cannot be persisted"
            )
    return dict(options)


class IndexStore:
    """Owns one persisted index directory: manifest, generations and WALs."""

    def __init__(self, directory: str, manifest: dict, fsync: str) -> None:
        self.directory = directory
        self.manifest = manifest
        self.fsync = fsync
        self._wals: list[WriteAheadLog] = []
        if self.kind == KIND_SHARDED:
            for position in range(self.manifest["shards"]):
                shard_dir = _shard_dir(directory, position)
                os.makedirs(shard_dir, exist_ok=True)
                self._wals.append(
                    WriteAheadLog(os.path.join(shard_dir, "wal.log"), fsync=fsync)
                )
        else:
            self._wals.append(
                WriteAheadLog(os.path.join(directory, "wal.log"), fsync=fsync)
            )
        self._next_lsn = self.checkpoint_lsn + 1
        self.replayed_records = 0
        self.torn_bytes_truncated = 0
        self.last_checkpoint_time = float(manifest.get("checkpointed_at", time.time()))

    # -- manifest-backed accessors ---------------------------------------------------

    @property
    def kind(self) -> str:
        return self.manifest["kind"]

    @property
    def generation(self) -> int:
        return self.manifest["generation"]

    @property
    def checkpoint_lsn(self) -> int:
        return self.manifest["checkpoint_lsn"]

    @property
    def page_size(self) -> int:
        return self.manifest["page_size"]

    @property
    def cache_bytes(self) -> int:
        return self.manifest["cache_bytes"]

    @property
    def options(self) -> dict:
        return dict(self.manifest.get("options", {}))

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended frame (= checkpoint_lsn when clean)."""
        return self._next_lsn - 1

    def needs_checkpoint(self) -> bool:
        """True when the WAL holds frames the manifest's generation lacks."""
        return self.last_lsn > self.checkpoint_lsn

    def checkpoint_age_seconds(self) -> float:
        return max(0.0, time.time() - self.last_checkpoint_time)

    # -- WAL append (caller holds the handle's write lock) ----------------------------

    def _route(self, handle: _UpdatableBase, record_id: int) -> int:
        if self.kind == KIND_SHARDED:
            return handle.index.partitioner.shard_of(record_id)
        return 0

    def log_insert(
        self, handle: _UpdatableBase, ids: list, sets: "list[frozenset]"
    ) -> None:
        """Append one insert transaction (split per owning shard) to the WAL."""
        groups: dict[int, tuple[list, list]] = {}
        for record_id, items in zip(ids, sets):
            bucket = groups.setdefault(self._route(handle, record_id), ([], []))
            bucket[0].append(record_id)
            bucket[1].append(sorted(items, key=str))
        for position in sorted(groups):
            group_ids, group_sets = groups[position]
            self._wals[position].append(
                {
                    "op": "insert",
                    "lsn": self._next_lsn,
                    "ids": group_ids,
                    "sets": group_sets,
                }
            )
            self._next_lsn += 1

    def log_delete(self, handle: _UpdatableBase, ids: list) -> None:
        """Append one delete transaction (split per owning shard) to the WAL."""
        groups: dict[int, list] = {}
        for record_id in ids:
            groups.setdefault(self._route(handle, record_id), []).append(record_id)
        for position in sorted(groups):
            self._wals[position].append(
                {"op": "delete", "lsn": self._next_lsn, "ids": groups[position]}
            )
            self._next_lsn += 1

    # -- recovery ---------------------------------------------------------------------

    def replay_into(self, handle: _UpdatableBase) -> int:
        """Apply every WAL frame newer than the checkpoint; returns the count.

        Frames across the per-shard logs are merged by LSN, reproducing the
        original update order exactly; frames at or below ``checkpoint_lsn``
        are skipped (they are already inside the checkpointed pages), which
        makes recovery idempotent when a crash interrupted WAL truncation.
        """
        frames = []
        for wal in self._wals:
            scan = wal.recover()
            self.torn_bytes_truncated += scan.truncated_bytes
            frames.extend(scan.records)
        frames.sort(key=lambda frame: frame["lsn"])
        replayed = 0
        for frame in frames:
            if frame["lsn"] <= self.checkpoint_lsn:
                continue
            self._apply_frame(handle, frame)
            self._next_lsn = max(self._next_lsn, frame["lsn"] + 1)
            replayed += 1
        self.replayed_records = replayed
        return replayed

    def _apply_frame(self, handle: _UpdatableBase, frame: dict) -> None:
        op = frame.get("op")
        if op == "insert":
            with handle.rwlock.write_locked():
                for record_id, items in zip(frame["ids"], frame["sets"]):
                    handle.delta.add(Record(record_id, frozenset(items)))
                    handle._next_id = max(handle._next_id, record_id + 1)
        elif op == "delete":
            handle.delete(frame["ids"])
        else:
            raise DurabilityError(f"WAL frame has unknown operation {op!r}")

    # -- checkpoint -------------------------------------------------------------------

    def checkpoint(self, handle: _UpdatableBase) -> dict:
        """Publish the handle's current pages as the next generation.

        The caller holds the handle's write lock and has flushed pending
        deltas, so the page images are complete.  See the module docstring
        for the crash-safety argument of each step.
        """
        generation = self.generation + 1
        pages_written, positions = self._write_generation(handle, generation)
        payload = {
            "kind": self.kind,
            "generation": generation,
            "page_size": self.page_size,
            "cache_bytes": self.cache_bytes,
            "checkpoint_lsn": self.last_lsn,
            "next_id": handle._next_id,
            "num_records": len(handle.dataset),
            "fsync": self.fsync,
            "options": self.options,
            "checkpointed_at": time.time(),
        }
        if self.kind == KIND_SHARDED:
            payload["shards"] = self.manifest["shards"]
            payload["strategy"] = self.manifest["strategy"]
            payload["shard_positions"] = positions
        for key in ("seed", "dataset"):
            if key in self.manifest:
                payload[key] = self.manifest[key]
        write_manifest(self.directory, payload)
        self.manifest.update(payload)
        for wal in self._wals:
            wal.reset()
        _sweep_stale_generations(self.directory, keep=generation)
        if self.kind == KIND_SHARDED:
            for position in range(self.manifest["shards"]):
                _sweep_stale_generations(_shard_dir(self.directory, position), keep=generation)
        self.last_checkpoint_time = payload["checkpointed_at"]
        return {
            "generation": generation,
            "pages_written": pages_written,
            "checkpoint_lsn": self.last_lsn,
            "records": len(handle.dataset),
        }

    def _write_generation(self, handle: _UpdatableBase, generation: int):
        if self.kind == KIND_SHARDED:
            positions = []
            pages_written = 0
            for position in range(self.manifest["shards"]):
                shard = handle.index.shard_at(position)
                if shard is None:
                    continue
                shard_dir = _shard_dir(self.directory, position)
                os.makedirs(shard_dir, exist_ok=True)
                pages_written += copy_environment(
                    shard.env, os.path.join(shard_dir, f"pages-{generation}.db")
                )
                _write_state_file(
                    os.path.join(shard_dir, f"state-{generation}.json"),
                    dump_state(shard, self.options),
                )
                write_manifest(
                    shard_dir,
                    {
                        "kind": KIND_OIF,
                        "shard_position": position,
                        "generation": generation,
                        "page_size": self.page_size,
                        "cache_bytes": self.cache_bytes,
                        "checkpoint_lsn": self.last_lsn,
                        "next_id": handle._next_id,
                        "options": self.options,
                    },
                )
                positions.append(position)
            return pages_written, positions
        pages_written = copy_environment(
            handle.index.env, os.path.join(self.directory, f"pages-{generation}.db")
        )
        _write_state_file(
            os.path.join(self.directory, f"state-{generation}.json"),
            dump_state(handle.index, self.options),
        )
        return pages_written, []

    def close(self) -> None:
        for wal in self._wals:
            wal.close()

    def destroy(self) -> None:
        """Close and delete the whole persisted directory (index drop)."""
        self.close()
        for root, _dirs, files in os.walk(self.directory, topdown=False):
            for name in files:
                os.remove(os.path.join(root, name))
            os.rmdir(root)


class DurableIndex:
    """Updatable-index facade that write-ahead-logs every acked update.

    Wraps an :class:`~repro.core.updates.UpdatableOIF` (or its sharded
    sibling) plus an :class:`IndexStore`.  Queries, flushes and everything
    else delegate to the wrapped handle; ``insert``/``delete`` additionally
    append to the WAL *before returning*, so an acknowledged update survives
    a crash, and :meth:`checkpoint` publishes a new generation and truncates
    the log.
    """

    def __init__(self, inner: _UpdatableBase, store: IndexStore) -> None:
        self._inner = inner
        self.store = store

    @property
    def inner(self) -> _UpdatableBase:
        """The wrapped updatable handle (for type dispatch in the service layer)."""
        return self._inner

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def insert(self, transactions: "Iterable[Iterable]") -> list:
        """Log, then apply, one insert batch; acked only once both are done.

        The ids are pre-assigned from the handle's counter under the write
        lock, logged, and then the in-memory apply must hand out exactly the
        same ids — the invariant WAL replay relies on.
        """
        sets = [frozenset(transaction) for transaction in transactions]
        if any(not items for items in sets):
            raise QueryError("cannot insert an empty transaction")
        with self._inner.rwlock.write_locked():
            ids = list(range(self._inner._next_id, self._inner._next_id + len(sets)))
            self.store.log_insert(self._inner, ids, sets)
            applied = self._inner.insert(sets)
            if applied != ids:
                raise DurabilityError(
                    f"WAL logged ids {ids} but the in-memory apply assigned {applied}"
                )
            return ids

    def delete(self, record_ids: "Iterable[int]") -> "list[frozenset]":
        """Apply (validating), then log, one delete batch."""
        ids = list(record_ids)
        with self._inner.rwlock.write_locked():
            removed = self._inner.delete(ids)
            self.store.log_delete(self._inner, ids)
            return removed

    def checkpoint(self, force: bool = False) -> dict:
        """Flush pending deltas and publish a new on-disk generation.

        A no-op (reported with ``"skipped": True``) when nothing changed
        since the last checkpoint, unless ``force`` is set.
        """
        with self._inner.rwlock.write_locked():
            if (
                not force
                and not self.store.needs_checkpoint()
                and not self._inner.pending_updates
            ):
                return {
                    "generation": self.store.generation,
                    "checkpoint_lsn": self.store.checkpoint_lsn,
                    "records": len(self._inner.dataset),
                    "skipped": True,
                }
            if self._inner.pending_updates:
                self._inner.flush()
            return self.store.checkpoint(self._inner)

    def swap_inner(self, fresh: _UpdatableBase) -> None:
        """Replace the wrapped handle after an out-of-lock rebuild.

        The fresh handle must hold the same logical contents (the service
        layer replays missed updates before swapping), so the WAL + manifest
        pair remains a faithful recipe for the live state.
        """
        self._inner = fresh

    def close(self) -> None:
        """Release the WAL file handles (pages live in memory; see the WAL)."""
        self.store.close()


def persist(
    directory: str,
    handle: _UpdatableBase,
    *,
    options: "dict | None" = None,
    strategy: "str | None" = None,
    fsync: str = "always",
    seed: "int | None" = None,
    dataset_config: "dict | None" = None,
) -> DurableIndex:
    """Make a freshly built updatable index durable under ``directory``.

    Writes generation 0 (page images + state), the manifest and empty WALs.
    The handle must have been built over catalog-enabled environments (use
    :func:`durable_env_factory` / the ``env_factory`` constructor argument),
    otherwise its page images would not be reopenable.
    """
    if isinstance(handle, DurableIndex):
        raise DurabilityError("the handle is already durable")
    sharded = isinstance(handle, UpdatableShardedOIF)
    if not sharded and not isinstance(handle, UpdatableOIF):
        raise DurabilityError(
            f"only OIF handles can be persisted, got {type(handle).__name__}"
        )
    envs = (
        [shard.env for shard in handle.index.live_shards]
        if sharded
        else [handle.index.env]
    )
    for env in envs:
        if not env.has_catalog:
            raise DurabilityError(
                "the index was not built on catalog-enabled environments; "
                "construct it with env_factory=durable_env_factory(...)"
            )
    os.makedirs(directory, exist_ok=True)
    if os.path.exists(os.path.join(directory, "manifest.json")):
        raise DurabilityError(f"{directory!r} already holds a persisted index")
    if handle.pending_updates:
        handle.flush()
    page_size = envs[0].page_size
    cache_bytes = envs[0].cache_pages * page_size
    manifest = {
        "kind": KIND_SHARDED if sharded else KIND_OIF,
        "generation": -1,  # placeholder: store.checkpoint() publishes generation 0
        "page_size": page_size,
        "cache_bytes": cache_bytes,
        "checkpoint_lsn": 0,
        "next_id": handle._next_id,
        "fsync": fsync,
        "options": _check_options(options or {}),
    }
    if sharded:
        manifest["shards"] = handle.index.num_shards
        manifest["strategy"] = handle.index.partitioner.strategy
    if strategy is not None and sharded and strategy != manifest["strategy"]:
        raise DurabilityError(
            f"strategy {strategy!r} does not match the handle's "
            f"{manifest['strategy']!r} partitioner"
        )
    if seed is not None:
        manifest["seed"] = seed
    if dataset_config is not None:
        manifest["dataset"] = dataset_config
    store = IndexStore(directory, manifest, fsync)
    store.checkpoint(handle)
    return DurableIndex(handle, store)


def open_index(
    directory: str,
    *,
    fsync: "str | None" = None,
    cache_bytes: "int | None" = None,
    max_workers: "int | None" = None,
) -> DurableIndex:
    """Reopen a persisted index: load pages, rebuild state, replay the WAL.

    Returns a queryable, updatable :class:`DurableIndex` without touching the
    source dataset — everything needed is inside ``directory``.  ``fsync``
    and ``cache_bytes`` default to the values recorded in the manifest.
    """
    manifest = read_manifest(directory)
    page_size = manifest["page_size"]
    env_cache = cache_bytes if cache_bytes is not None else manifest["cache_bytes"]
    options = dict(manifest.get("options", {}))
    env_factory = durable_env_factory(page_size, env_cache)
    _sweep_stale_generations(directory, keep=manifest["generation"])
    if manifest["kind"] == KIND_SHARDED:
        for position in range(manifest["shards"]):
            _sweep_stale_generations(
                _shard_dir(directory, position), keep=manifest["generation"]
            )
        handle = _open_sharded(
            directory, manifest, env_cache, options, env_factory, max_workers
        )
    elif manifest["kind"] == KIND_OIF:
        handle = _open_monolithic(directory, manifest, env_cache, options, env_factory)
    else:
        raise DurabilityError(f"unknown index kind {manifest['kind']!r} in manifest")
    handle._next_id = manifest["next_id"]
    store = IndexStore(directory, manifest, fsync if fsync is not None else manifest["fsync"])
    store.replay_into(handle)
    return DurableIndex(handle, store)


def _generation_paths(directory: str, generation: int) -> tuple[str, str]:
    pages = os.path.join(directory, f"pages-{generation}.db")
    state = os.path.join(directory, f"state-{generation}.json")
    for path in (pages, state):
        if not os.path.exists(path):
            raise DurabilityError(
                f"generation {generation} file {path!r} named by the manifest "
                "is missing; the directory is corrupt"
            )
    return pages, state


def _load_state(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise DurabilityError(f"cannot parse state file {path!r}: {exc}") from None


def _open_monolithic(directory, manifest, cache_bytes, options, env_factory):
    pages_path, state_path = _generation_paths(directory, manifest["generation"])
    env = load_environment(pages_path, manifest["page_size"], cache_bytes)
    index = load_oif(env, _load_state(state_path))
    return UpdatableOIF.from_existing(
        index, index.dataset, env_factory=env_factory, **options
    )


def _open_sharded(directory, manifest, cache_bytes, options, env_factory, max_workers):
    shards: "list[OrderedInvertedFile | None]" = [None] * manifest["shards"]
    records: list[Record] = []
    for position in manifest["shard_positions"]:
        shard_dir = _shard_dir(directory, position)
        pages_path, state_path = _generation_paths(shard_dir, manifest["generation"])
        env = load_environment(pages_path, manifest["page_size"], cache_bytes)
        shard = load_oif(env, _load_state(state_path))
        shards[position] = shard
        records.extend(shard.dataset)
    records.sort(key=lambda record: record.record_id)
    dataset = Dataset(records)
    index = ShardedIndex.from_shards(
        dataset,
        shards,
        strategy=manifest["strategy"],
        factory=lambda shard_dataset: OrderedInvertedFile(
            shard_dataset, env=env_factory(), **options
        ),
        max_workers=max_workers,
    )
    return UpdatableShardedOIF.from_existing(
        index, dataset, env_factory=env_factory, **options
    )
