"""Serialize and restore an OIF's state without rebuilding it.

A built :class:`~repro.core.oif.OrderedInvertedFile` splits its state across
two worlds:

* the **pages** of its storage environment — B-tree nodes, block data pages
  and (for catalog-enabled environments) the page-0 table catalog.  Those are
  persisted *verbatim* by :func:`copy_environment`, which is what keeps page
  ids — and therefore the paper's page-access accounting — identical between
  a live index and its reopened copy;
* the **Python-side** ordering state — the ``<_D`` item order, the sequence
  forms, the internal↔original id maps and the build-report counters.  Those
  are captured as JSON by :func:`dump_state` and rebuilt by :func:`load_oif`,
  which also reconstitutes the source :class:`~repro.core.records.Dataset`
  from the sequence forms (every record's set-value is exactly the items of
  its form) — so reopening needs no access to the original dataset at all.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.core.items import ItemOrder
from repro.core.oif import OIFBuildReport, OrderedInvertedFile
from repro.core.ordering import OrderedDataset, _build_metadata
from repro.core.postings import REPR_BITMAP
from repro.core.records import Dataset, Record
from repro.errors import DurabilityError
from repro.storage.kvstore import Environment
from repro.storage.pager import FilePageFile

#: JSON-representable item types that survive a dump/load round trip intact.
_PERSISTABLE_ITEM_TYPES = (str, int, float, bool)


class _LazyFormsDataset(Dataset):
    """A :class:`Dataset` reconstructed from sequence forms on first use.

    Reopening an index only needs the record *set-values* when an update or a
    dataset-level statistic asks for them; the common reopen-and-query path
    never does (queries answer from the pages and the sequence-form metadata).
    Deferring the O(records) ``Record`` reconstruction keeps ``open_index``
    an order of magnitude cheaper than a rebuild.  The id-level accessors the
    open path does touch (``len``, ``record_ids``, ``has_id``) are answered
    from the persisted id list without materializing.
    """

    def __init__(self, order: ItemOrder, forms: list[tuple], record_ids: list[int]) -> None:
        self._order = order
        self._forms = forms
        self._ids = list(record_ids)
        self._id_set = set(record_ids)

    def _materialize(self) -> None:
        items = self._order.items_in_order()
        records = [
            Record(record_id, frozenset(map(items.__getitem__, form)))
            for form, record_id in zip(self._forms, self._ids)
        ]
        records.sort(key=lambda record: record.record_id)
        Dataset.__init__(self, records)

    def __getattr__(self, name: str):
        # Only the three attributes Dataset.__init__ would have set can be
        # legitimately missing; anything else (copy/pickle dunders probing the
        # instance) must fail fast instead of triggering materialization.
        if name in ("_records", "_by_id", "_vocabulary"):
            self._materialize()
            return object.__getattribute__(self, name)
        raise AttributeError(name)

    def __len__(self) -> int:
        if "_records" not in self.__dict__:
            return len(self._ids)
        return super().__len__()

    @property
    def record_ids(self) -> list[int]:
        if "_records" not in self.__dict__:
            return sorted(self._ids)
        return Dataset.record_ids.fget(self)

    def has_id(self, record_id: int) -> bool:
        if "_records" not in self.__dict__:
            return record_id in self._id_set
        return super().has_id(record_id)


def dump_state(index: OrderedInvertedFile, options: dict) -> dict:
    """Capture the Python-side state of a built OIF as a JSON-ready dict."""
    ordered = index.ordered
    items = list(ordered.order.items_in_order())
    for item in items:
        if not isinstance(item, _PERSISTABLE_ITEM_TYPES):
            raise DurabilityError(
                f"item {item!r} of type {type(item).__name__} cannot be "
                "persisted; durable indexes need JSON-representable items"
            )
    if index.build_report is None:
        raise DurabilityError("cannot persist an OIF that has not been built")
    return {
        "table": index._table.name,
        "options": options,
        "items": items,
        "supports": [ordered.order.support(item) for item in items],
        "sequence_forms": [list(form) for form in ordered.sequence_forms],
        "lengths": list(ordered.lengths),
        "new_to_old": list(ordered.new_to_old),
        "build_report": asdict(index.build_report),
        # The adaptive posting-representation tags chosen at build time, so a
        # reopened index decodes each list in the right shape without
        # re-inspecting frequencies.  Format version 2.
        "posting_reprs": {
            "mode": index.posting_repr,
            "dense_ratio": index.dense_ratio,
            "dense_ranks": sorted(
                rank
                for rank, tag in index._list_repr.items()
                if tag == REPR_BITMAP
            ),
        },
    }


def load_oif(env: Environment, state: dict) -> OrderedInvertedFile:
    """Reconstruct a queryable OIF over an already-loaded environment.

    The source dataset is rebuilt from the persisted sequence forms (a
    record's set-value is exactly the items its form names), so the original
    dataset — or its generator configuration — is not needed.
    """
    items = state["items"]
    order = ItemOrder(items, supports=dict(zip(items, state["supports"])))
    forms = [tuple(form) for form in state["sequence_forms"]]
    new_to_old = list(state["new_to_old"])
    old_to_new = {old: position + 1 for position, old in enumerate(new_to_old)}
    dataset = _LazyFormsDataset(order, forms, new_to_old)
    ordered = OrderedDataset(
        order=order,
        sequence_forms=forms,
        lengths=list(state["lengths"]),
        new_to_old=new_to_old,
        old_to_new=old_to_new,
        metadata=_build_metadata(forms),
        source=dataset,
    )
    index = OrderedInvertedFile(dataset, env=env, build=False, **state["options"])
    index._ordered = ordered
    index._table = env.table(state["table"])
    index.build_report = OIFBuildReport(**state["build_report"])
    reprs = state.get("posting_reprs")
    if reprs is not None:
        index.posting_repr = reprs.get("mode", index.posting_repr)
        index.dense_ratio = reprs.get("dense_ratio", index.dense_ratio)
        index._list_repr = {int(rank): REPR_BITMAP for rank in reprs["dense_ranks"]}
    return index


def copy_environment(env: Environment, dest_path: str) -> int:
    """Snapshot an environment's pages verbatim into ``dest_path`` (fsynced).

    Dirty pages are flushed to the source page file first, then every page is
    copied byte-for-byte — page ids in the copy are identical to the live
    environment's, which is what the block pointers stored inside B-tree
    values require.  Returns the number of pages written.
    """
    env.pool.flush()
    source = env.page_file
    dest = FilePageFile(dest_path, source.page_size)
    try:
        for page_id in range(source.num_pages):
            dest.allocate()
            dest.write(page_id, bytes(source.read(page_id)))
        dest.sync()
    finally:
        dest.close()
    return source.num_pages


def load_environment(path: str, page_size: int, cache_bytes: int) -> Environment:
    """Load a persisted page image into a memory-resident, catalog-aware env.

    The pages are copied into a fresh in-memory environment (ids preserved)
    and the catalog page is decoded to reconstruct the tables — making the
    index resident without keeping a file handle on the snapshot, so a later
    checkpoint can retire the file freely.
    """
    source = FilePageFile(path, page_size)
    try:
        env = Environment(page_size=page_size, cache_bytes=cache_bytes)
        for page_id in range(source.num_pages):
            env.page_file.allocate()
            env.page_file.write(page_id, bytes(source.read(page_id)))
    finally:
        source.close()
    env.load_catalog()
    return env
