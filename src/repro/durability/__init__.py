"""Durable index lifecycle: on-disk format, write-ahead log, checkpoints.

The rest of the library builds indexes from a dataset and keeps every update
in memory-resident delta buffers — a restart loses everything.  This package
gives an index a real on-disk life:

* :mod:`repro.durability.manifest` — the versioned ``manifest.json`` that
  makes a persisted directory self-describing (format version, index kind,
  shard layout, page size, provenance), committed atomically via rename;
* :mod:`repro.durability.wal` — a CRC-framed write-ahead log with an fsync
  policy knob; every acked ``insert``/``delete`` is logged before the caller
  sees its result, and recovery replays (and torn-tail-truncates) the log;
* :mod:`repro.durability.state` — serialization of the OIF's Python-side
  state (item order, sequence forms, id maps) and verbatim page-image
  snapshots of catalog-enabled storage environments;
* :mod:`repro.durability.store` — the :class:`IndexStore` generation
  machinery (snapshot → manifest rename → WAL truncation) and the
  :class:`DurableIndex` facade that the service layer serves from.

Entry points: :func:`persist` makes a freshly built updatable index durable;
:func:`open_index` brings a persisted directory back as a queryable index
without touching the source dataset.
"""

from repro.durability.manifest import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    read_manifest,
    write_manifest,
)
from repro.durability.store import (
    DurableIndex,
    IndexStore,
    durable_env_factory,
    open_index,
    persist,
)
from repro.durability.wal import WalScan, WriteAheadLog

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "read_manifest",
    "write_manifest",
    "DurableIndex",
    "IndexStore",
    "durable_env_factory",
    "open_index",
    "persist",
    "WalScan",
    "WriteAheadLog",
]
