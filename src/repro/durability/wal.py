"""CRC-framed write-ahead log for index updates.

File layout::

    8-byte header:  b"RWAL" + uint32 version
    frame*:         uint32 payload length | uint32 crc32(payload) | payload

Payloads are compact JSON objects carrying the operation, a store-wide
monotonically increasing LSN, and the affected record ids / set-values.  The
frame CRC is what makes a *torn tail* — the partially written frame a crash
can leave behind — detectable: :meth:`WriteAheadLog.recover` replays frames
until the first short or corrupt one, truncates the file back to the last
good frame boundary, and reports how many bytes it dropped.

``fsync`` policy:

* ``"always"`` (default) — every append flushes and fsyncs before returning,
  so an acked update survives power loss;
* ``"never"`` — appends only flush to the OS, trading the tail of the log
  (bounded by the checkpoint interval) for update throughput.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass

from repro.errors import DurabilityError

_WAL_MAGIC = b"RWAL"
_WAL_VERSION = 1
_HEADER = struct.Struct("<4sI")  # magic, version
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

#: Accepted values for the fsync policy knob.
FSYNC_POLICIES = ("always", "never")


@dataclass(frozen=True)
class WalScan:
    """Outcome of one recovery scan over a log file."""

    records: list
    truncated_bytes: int


class WriteAheadLog:
    """Append-only, CRC-framed log of update transactions."""

    def __init__(self, path: str, fsync: str = "always") -> None:
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        self.path = path
        self.fsync = fsync
        fresh = not os.path.exists(path)
        self._file = open(path, "w+b" if fresh else "r+b")
        if fresh:
            self._file.write(_HEADER.pack(_WAL_MAGIC, _WAL_VERSION))
            self._file.flush()
            os.fsync(self._file.fileno())
        else:
            header = self._file.read(_HEADER.size)
            if len(header) != _HEADER.size:
                raise DurabilityError(f"{path!r} is too short to be a WAL")
            magic, version = _HEADER.unpack(header)
            if magic != _WAL_MAGIC:
                raise DurabilityError(f"{path!r} does not start with the WAL magic")
            if version != _WAL_VERSION:
                raise DurabilityError(
                    f"{path!r} has WAL version {version}; this build reads "
                    f"version {_WAL_VERSION}"
                )
        self._file.seek(0, os.SEEK_END)

    def append(self, payload: dict) -> None:
        """Frame and append one transaction record, honouring the fsync policy."""
        data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
        self._file.seek(0, os.SEEK_END)
        self._file.write(_FRAME.pack(len(data), zlib.crc32(data)) + data)
        self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())

    def recover(self) -> WalScan:
        """Replay every intact frame; truncate (don't replay) a torn tail.

        A frame is *torn* when its header or payload is shorter than declared
        or its CRC does not match — exactly what a crash mid-append leaves.
        Everything from the first torn frame on is discarded by truncating the
        file back to the last good frame boundary, so a later append continues
        from a clean tail.
        """
        self._file.seek(0)
        header = self._file.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise DurabilityError(f"{self.path!r} lost its WAL header")
        records: list = []
        good_end = _HEADER.size
        while True:
            frame_header = self._file.read(_FRAME.size)
            if not frame_header:
                break
            if len(frame_header) < _FRAME.size:
                break
            length, crc = _FRAME.unpack(frame_header)
            payload = self._file.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                break
            try:
                records.append(json.loads(payload.decode("utf-8")))
            except ValueError:
                break
            good_end = self._file.tell()
        self._file.seek(0, os.SEEK_END)
        torn = self._file.tell() - good_end
        if torn:
            self._file.truncate(good_end)
            self._file.flush()
            os.fsync(self._file.fileno())
        self._file.seek(0, os.SEEK_END)
        return WalScan(records=records, truncated_bytes=torn)

    def reset(self) -> None:
        """Drop every logged frame (after a checkpoint made them redundant)."""
        self._file.truncate(_HEADER.size)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.seek(0, os.SEEK_END)

    @property
    def size_bytes(self) -> int:
        """Current file size (header + frames)."""
        self._file.seek(0, os.SEEK_END)
        return self._file.tell()

    def close(self) -> None:
        self._file.close()
