"""Dataset generators and loaders.

* :mod:`repro.datasets.synthetic` — Zipfian synthetic data (the paper's main
  experimental workload);
* :mod:`repro.datasets.msweb` / :mod:`repro.datasets.msnbc` — statistical
  simulators of the two UCI KDD real datasets used in Figure 7;
* :mod:`repro.datasets.io` — plain transaction-file reading/writing.
"""

from repro.datasets.io import iter_transactions, read_transactions, write_transactions
from repro.datasets.msnbc import MsnbcConfig
from repro.datasets.msnbc import generate_dataset as generate_msnbc
from repro.datasets.msweb import MswebConfig
from repro.datasets.msweb import generate_dataset as generate_msweb
from repro.datasets.synthetic import SyntheticConfig
from repro.datasets.synthetic import generate_dataset as generate_synthetic

__all__ = [
    "SyntheticConfig",
    "generate_synthetic",
    "MswebConfig",
    "generate_msweb",
    "MsnbcConfig",
    "generate_msnbc",
    "read_transactions",
    "write_transactions",
    "iter_transactions",
]
