"""Pure-Python sampling primitives for the dataset simulators.

The simulators (:mod:`~repro.datasets.synthetic`, :mod:`~repro.datasets.msweb`,
:mod:`~repro.datasets.msnbc`) draw from numpy's bit generator when numpy is
installed — that path is the reference and its output is what every committed
figure was produced from.  When numpy is absent (the CI no-numpy job, minimal
installs) they fall back to these primitives over :class:`random.Random`:
same parameters, same distribution shape, a different pseudo-random stream —
byte-identical output to the numpy path is not possible without numpy's bit
generator, and the experiments only depend on the workload's statistics.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from itertools import accumulate
from math import exp


def zipf_probabilities(domain_size: int, skew: float) -> list[float]:
    """Normalised Zipf(``skew``) probabilities over ``domain_size`` ranks.

    ``skew = 0`` degenerates to the uniform distribution.
    """
    weights = [float(rank) ** (-float(skew)) for rank in range(1, domain_size + 1)]
    total = sum(weights)
    return [weight / total for weight in weights]


class WeightedSampler:
    """Index sampler over a fixed weight vector: cumulative table + bisect."""

    __slots__ = ("_cumulative", "_domain", "_rng")

    def __init__(self, probabilities: list[float], rng: random.Random) -> None:
        self._cumulative = list(accumulate(probabilities))
        self._cumulative[-1] = 1.0  # guard float drift at the top end
        self._domain = len(probabilities)
        self._rng = rng

    def draw(self) -> int:
        return min(bisect_right(self._cumulative, self._rng.random()), self._domain - 1)

    def draw_distinct(self, count: int, attempts_per_pick: int = 20) -> set[int]:
        """``count`` distinct indices; uniform top-up if skew starves sampling."""
        picks: set[int] = set()
        budget = attempts_per_pick * count
        while len(picks) < count and budget:
            picks.add(self.draw())
            budget -= 1
        while len(picks) < count:
            picks.add(self._rng.randrange(self._domain))
        return picks


def poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler; exact, and fast at the small means the logs use."""
    if mean <= 0.0:
        return 0
    threshold = exp(-mean)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
