"""Simulated *msweb* dataset (UCI KDD "Anonymous Microsoft Web Data").

The paper's first real dataset is a one-week log of the virtual areas (Vroots)
visited by users of ``www.microsoft.com``: 32 711 user sessions over 294
distinct areas, a strongly skewed item distribution, and an average session
length of ~3 areas; for the experiments it is replicated 10 times to simulate
a ten-week log.

Without network access the original file cannot be downloaded, so this module
*simulates* it: sessions are generated with the published statistics (domain
size, skew, length distribution) so that the indexes see the same workload
shape — many short records over a small, heavily skewed vocabulary.  The
replication knob works exactly as in the paper (each replica repeats the same
sessions under fresh record ids).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

try:  # falls back to pure-Python sampling when numpy is not installed
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from repro.core.records import Dataset
from repro.datasets._sampling import WeightedSampler, poisson, zipf_probabilities
from repro.errors import DatasetError

#: Published statistics of the original dataset.
MSWEB_DOMAIN_SIZE = 294
MSWEB_NUM_SESSIONS = 32_711
MSWEB_AVERAGE_LENGTH = 3.0


@dataclass(frozen=True)
class MswebConfig:
    """Parameters of the simulated msweb log.

    ``num_sessions`` defaults to a scaled-down session count; pass
    ``MSWEB_NUM_SESSIONS`` to match the original size.  ``replicas`` mirrors
    the paper's 10x replication.
    """

    num_sessions: int = 8_000
    replicas: int = 1
    domain_size: int = MSWEB_DOMAIN_SIZE
    skew: float = 1.1
    mean_length: float = MSWEB_AVERAGE_LENGTH
    max_length: int = 35
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_sessions <= 0:
            raise DatasetError("num_sessions must be positive")
        if self.replicas <= 0:
            raise DatasetError("replicas must be positive")
        if self.domain_size <= 1:
            raise DatasetError("domain_size must exceed 1")
        if self.mean_length < 1:
            raise DatasetError("mean_length must be at least 1")


def area_name(index: int) -> str:
    """Vroot label, mimicking the original attribute ids (e.g. ``V1287``)."""
    return f"V{1000 + index}"


def _generate_sessions_pure(config: MswebConfig) -> list[set[str]]:
    """No-numpy generator: same parameters and shape, different PRNG stream."""
    rng = random.Random(config.seed)
    sampler = WeightedSampler(zipf_probabilities(config.domain_size, config.skew), rng)
    ceiling = min(config.max_length, config.domain_size)
    extra_mean = max(config.mean_length - 1.0, 0.0)
    sessions: list[set[str]] = []
    for _ in range(config.num_sessions):
        wanted = min(1 + poisson(rng, extra_mean), ceiling)
        sessions.append({area_name(index) for index in sampler.draw_distinct(wanted)})
    return sessions


def generate_sessions(config: MswebConfig) -> list[set[str]]:
    """Generate the simulated sessions (before replication)."""
    if np is None:
        return _generate_sessions_pure(config)
    rng = np.random.default_rng(config.seed)
    ranks = np.arange(1, config.domain_size + 1, dtype=np.float64)
    weights = ranks ** (-config.skew)
    weights /= weights.sum()

    sessions: list[set[str]] = []
    # Session lengths: 1 + Poisson(mean - 1) gives mean ``mean_length`` with a
    # mode at short sessions, matching the heavy skew of real web logs.
    lengths = 1 + rng.poisson(max(config.mean_length - 1.0, 0.0), size=config.num_sessions)
    lengths = np.clip(lengths, 1, min(config.max_length, config.domain_size))
    for length in lengths:
        wanted = int(length)
        areas: set[int] = set()
        attempts = 0
        while len(areas) < wanted and attempts < 30:
            draw = rng.choice(config.domain_size, size=wanted - len(areas), p=weights)
            areas.update(int(value) for value in draw)
            attempts += 1
        sessions.append({area_name(index) for index in areas})
    return sessions


def generate_dataset(config: MswebConfig | None = None, **overrides) -> Dataset:
    """Generate the simulated msweb dataset, including the requested replication."""
    if config is None:
        config = MswebConfig(**overrides)
    elif overrides:
        raise DatasetError("pass either an MswebConfig or keyword overrides, not both")
    sessions = generate_sessions(config)
    replicated: list[set[str]] = []
    for _ in range(config.replicas):
        replicated.extend(sessions)
    return Dataset.from_transactions(replicated)
