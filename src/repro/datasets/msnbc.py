"""Simulated *msnbc* dataset (UCI KDD "MSNBC.com Anonymous Web Data").

The paper's second real dataset records, for ~990K user sessions on
``msnbc.com``, the page *categories* visited: only 17 distinct items, a
relatively uniform item distribution and an average set cardinality of 5.7
(after collapsing each session to the set of distinct categories).

As with msweb, the original file is not available offline, so the dataset is
simulated from its published statistics: a tiny vocabulary, mild skew, and a
length distribution whose mean matches 5.7 distinct categories per session.
The interesting property this dataset stresses is the *huge* ratio between
|D| and |I| — every inverted list is enormous — which is exactly the regime
where the paper reports the OIF's largest wins for subset/equality queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

try:  # falls back to pure-Python sampling when numpy is not installed
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from repro.core.records import Dataset
from repro.datasets._sampling import WeightedSampler, poisson, zipf_probabilities
from repro.errors import DatasetError

#: Published statistics of the original dataset.
MSNBC_DOMAIN_SIZE = 17
MSNBC_NUM_SESSIONS = 989_818
MSNBC_AVERAGE_LENGTH = 5.7

#: The 17 page categories of the original data.
CATEGORIES = (
    "frontpage", "news", "tech", "local", "opinion", "on-air", "misc", "weather",
    "health", "living", "business", "sports", "summary", "bbs", "travel",
    "msn-news", "msn-sports",
)


@dataclass(frozen=True)
class MsnbcConfig:
    """Parameters of the simulated msnbc log.

    ``num_sessions`` defaults to a scaled-down count; pass
    ``MSNBC_NUM_SESSIONS`` for the original size.
    """

    num_sessions: int = 40_000
    skew: float = 0.3
    mean_length: float = MSNBC_AVERAGE_LENGTH
    seed: int = 13

    def __post_init__(self) -> None:
        if self.num_sessions <= 0:
            raise DatasetError("num_sessions must be positive")
        if not 1 <= self.mean_length <= len(CATEGORIES):
            raise DatasetError(
                f"mean_length must be within [1, {len(CATEGORIES)}], got {self.mean_length}"
            )


def _generate_sessions_pure(config: MsnbcConfig) -> list[set[str]]:
    """No-numpy generator: same parameters and shape, different PRNG stream."""
    rng = random.Random(config.seed)
    domain = len(CATEGORIES)
    sampler = WeightedSampler(zipf_probabilities(domain, config.skew), rng)
    extra_mean = max(config.mean_length - 1.0, 0.0)
    sessions: list[set[str]] = []
    for _ in range(config.num_sessions):
        wanted = min(1 + poisson(rng, extra_mean), domain)
        sessions.append({CATEGORIES[index] for index in sampler.draw_distinct(wanted)})
    return sessions


def generate_sessions(config: MsnbcConfig) -> list[set[str]]:
    """Generate the simulated sessions as sets of category names."""
    if np is None:
        return _generate_sessions_pure(config)
    rng = np.random.default_rng(config.seed)
    domain = len(CATEGORIES)
    ranks = np.arange(1, domain + 1, dtype=np.float64)
    weights = ranks ** (-config.skew)
    weights /= weights.sum()

    sessions: list[set[str]] = []
    lengths = 1 + rng.poisson(max(config.mean_length - 1.0, 0.0), size=config.num_sessions)
    lengths = np.clip(lengths, 1, domain)
    for length in lengths:
        wanted = int(length)
        picks = rng.choice(domain, size=wanted, replace=False, p=weights)
        sessions.append({CATEGORIES[int(index)] for index in picks})
    return sessions


def generate_dataset(config: MsnbcConfig | None = None, **overrides) -> Dataset:
    """Generate the simulated msnbc dataset."""
    if config is None:
        config = MsnbcConfig(**overrides)
    elif overrides:
        raise DatasetError("pass either an MsnbcConfig or keyword overrides, not both")
    return Dataset.from_transactions(generate_sessions(config))
