"""Reading and writing datasets as plain transaction files.

The on-disk format is the one commonly used for market-basket data (and by
the FIMI / UCI repositories): one transaction per line, items separated by
whitespace.  Record ids are implicit line numbers (starting at 1) unless the
``with_ids`` variant is used, which prefixes each line with ``<id>|``.
"""

from __future__ import annotations

import os
from typing import Iterable, TextIO

from repro.core.records import Dataset, Record
from repro.errors import DatasetError


def write_transactions(dataset: Dataset, path: str | os.PathLike, with_ids: bool = False) -> None:
    """Write ``dataset`` to ``path`` in transaction-file format.

    Items are written in their natural sorted order; with ``with_ids`` the
    original record ids are preserved, otherwise they become line numbers on
    re-load.
    """
    with open(path, "w", encoding="utf-8") as handle:
        _write(dataset, handle, with_ids)


def _write(dataset: Dataset, handle: TextIO, with_ids: bool) -> None:
    for record in dataset:
        items = " ".join(str(item) for item in sorted(record.items, key=str))
        if with_ids:
            handle.write(f"{record.record_id}|{items}\n")
        else:
            handle.write(f"{items}\n")


def read_transactions(path: str | os.PathLike) -> Dataset:
    """Read a transaction file written by :func:`write_transactions` (either variant).

    Lines that are empty or start with ``#`` are skipped.  All items are read
    back as strings.
    """
    records: list[Record] = []
    implicit_id = 1
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            if "|" in line:
                id_part, _, items_part = line.partition("|")
                try:
                    record_id = int(id_part)
                except ValueError:
                    raise DatasetError(
                        f"{path}:{line_number}: malformed record id {id_part!r}"
                    ) from None
            else:
                record_id = implicit_id
                items_part = line
            items = frozenset(items_part.split())
            if not items:
                raise DatasetError(f"{path}:{line_number}: transaction has no items")
            records.append(Record(record_id, items))
            implicit_id += 1
    if not records:
        raise DatasetError(f"{path}: no transactions found")
    return Dataset(records)


def iter_transactions(path: str | os.PathLike) -> Iterable[frozenset]:
    """Stream the item sets of a transaction file without building a Dataset."""
    with open(path, "r", encoding="utf-8") as handle:
        for raw_line in handle:
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            if "|" in line:
                _, _, line = line.partition("|")
            items = frozenset(line.split())
            if items:
                yield items
