"""Synthetic set-valued data with Zipfian item popularity.

The paper's synthetic experiments use datasets of 1M–50M set-values whose
items are drawn from vocabularies of 500 / 2 000 / 8 000 items under a Zipf
distribution of order 0–1 (default 0.8), with record lengths between 2 and 20.
This generator reproduces those parameters exactly; only the default dataset
size is scaled down so that pure-Python runs stay interactive (every
experiment accepts the paper-scale sizes explicitly).

Items are the strings ``i0000``, ``i0001``, ... so that the alphabetic
tie-break of Equation 1 is deterministic.  Item ``i0000`` is the most popular
under the Zipf law, matching the skew the paper studies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

try:  # falls back to pure-Python sampling when numpy is not installed
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from repro.core.records import Dataset
from repro.datasets._sampling import WeightedSampler, zipf_probabilities
from repro.errors import DatasetError

#: Default parameters mirroring the paper's defaults (|I|=2000, zipf=0.8,
#: lengths 2..20).  |D| is scaled down from the paper's 10M default.
DEFAULT_DOMAIN_SIZE = 2000
DEFAULT_ZIPF_ORDER = 0.8
DEFAULT_MIN_LENGTH = 2
DEFAULT_MAX_LENGTH = 20


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic dataset."""

    num_records: int = 20_000
    domain_size: int = DEFAULT_DOMAIN_SIZE
    zipf_order: float = DEFAULT_ZIPF_ORDER
    min_length: int = DEFAULT_MIN_LENGTH
    max_length: int = DEFAULT_MAX_LENGTH
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_records <= 0:
            raise DatasetError(f"num_records must be positive, got {self.num_records}")
        if self.domain_size <= 1:
            raise DatasetError(f"domain_size must exceed 1, got {self.domain_size}")
        if self.zipf_order < 0:
            raise DatasetError(f"zipf_order must be non-negative, got {self.zipf_order}")
        if not 1 <= self.min_length <= self.max_length:
            raise DatasetError(
                f"invalid record length range [{self.min_length}, {self.max_length}]"
            )
        if self.max_length > self.domain_size:
            raise DatasetError(
                f"max_length {self.max_length} exceeds the domain size {self.domain_size}"
            )


def item_name(index: int) -> str:
    """Stable item label; zero-padded so alphabetic order equals numeric order."""
    return f"i{index:06d}"


def zipf_weights(domain_size: int, zipf_order: float) -> "np.ndarray | list[float]":
    """Normalised Zipf(``zipf_order``) popularity over ``domain_size`` items.

    ``zipf_order = 0`` degenerates to the uniform distribution, matching the
    paper's skew sweep (Figures 8–10, right-most column).  Returns a numpy
    vector when numpy is installed, else a plain list.
    """
    if np is None:
        return zipf_probabilities(domain_size, zipf_order)
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = ranks ** (-float(zipf_order))
    return weights / weights.sum()


def _generate_transactions_pure(config: SyntheticConfig) -> list[set[str]]:
    """No-numpy generator: same parameters and shape, different PRNG stream."""
    rng = random.Random(config.seed)
    sampler = WeightedSampler(
        zipf_probabilities(config.domain_size, config.zipf_order), rng
    )
    return [
        {item_name(index) for index in
         sampler.draw_distinct(rng.randint(config.min_length, config.max_length))}
        for _ in range(config.num_records)
    ]


def generate_transactions(config: SyntheticConfig) -> list[set[str]]:
    """Generate raw transactions (sets of item labels) for ``config``."""
    if np is None:
        return _generate_transactions_pure(config)
    rng = np.random.default_rng(config.seed)
    py_rng = random.Random(config.seed)
    weights = zipf_weights(config.domain_size, config.zipf_order)

    transactions: list[set[str]] = []
    # Draw item indices in bulk for speed; oversample because duplicates within
    # a record are discarded (records are sets).
    lengths = rng.integers(config.min_length, config.max_length + 1, size=config.num_records)
    for length in lengths:
        wanted = int(length)
        items: set[int] = set()
        attempts = 0
        while len(items) < wanted and attempts < 20:
            draw = rng.choice(config.domain_size, size=wanted - len(items), p=weights)
            items.update(int(value) for value in draw)
            attempts += 1
        while len(items) < wanted:
            # Extremely skewed domains may exhaust sampling attempts; fall back
            # to explicit uniform picks to honour the requested length.
            items.add(py_rng.randrange(config.domain_size))
        transactions.append({item_name(index) for index in items})
    return transactions


def generate_dataset(config: SyntheticConfig | None = None, **overrides) -> Dataset:
    """Generate a :class:`~repro.core.records.Dataset` from a config (or overrides)."""
    if config is None:
        config = SyntheticConfig(**overrides)
    elif overrides:
        raise DatasetError("pass either a SyntheticConfig or keyword overrides, not both")
    return Dataset.from_transactions(generate_transactions(config))
