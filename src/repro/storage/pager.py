"""Fixed-size page files: the lowest layer of the simulated storage engine.

The engine models secondary storage as an array of fixed-size pages.  Two
backends are provided:

* :class:`MemoryPageFile` — pages live in a Python list.  This is the default
  for tests and benchmarks; "disk" accesses are still accounted by the buffer
  pool above, so the page-access figures are unaffected by the backend.
* :class:`FilePageFile` — pages live in a real file on disk, for users who
  want a persistent index.

Both expose the same minimal interface (:class:`PageFile`): allocate, read,
write, page count.  Pages are identified by dense integer ids starting at 0,
so consecutive ids correspond to physically adjacent locations — which is what
lets the I/O statistics distinguish sequential from random reads.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod

from repro.errors import PageError

DEFAULT_PAGE_SIZE = 4096


class PageFile(ABC):
    """Abstract array of fixed-size pages addressed by dense integer ids."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise PageError(f"page size must be positive, got {page_size}")
        self.page_size = page_size

    @abstractmethod
    def allocate(self) -> int:
        """Allocate a new zero-filled page and return its id."""

    @abstractmethod
    def read(self, page_id: int) -> bytearray:
        """Return a copy of the page payload (exactly ``page_size`` bytes)."""

    @abstractmethod
    def write(self, page_id: int, data: bytes) -> None:
        """Overwrite a page; ``data`` must not exceed ``page_size`` bytes."""

    @property
    @abstractmethod
    def num_pages(self) -> int:
        """Number of allocated pages."""

    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""

    def sync(self) -> None:
        """Force written pages to stable storage (no-op for memory backends).

        Durability barriers (WAL truncation, snapshot publication) call this
        before declaring data persistent; only :class:`FilePageFile` actually
        has anything to fsync.
        """

    # -- shared validation helpers -------------------------------------------------

    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.num_pages:
            raise PageError(
                f"page id {page_id} out of range (file has {self.num_pages} pages)"
            )

    def _check_payload(self, data: bytes) -> bytes:
        if len(data) > self.page_size:
            raise PageError(
                f"payload of {len(data)} bytes exceeds page size {self.page_size}"
            )
        if len(data) < self.page_size:
            return bytes(data) + b"\x00" * (self.page_size - len(data))
        return bytes(data)


class MemoryPageFile(PageFile):
    """Page file backed by an in-process list of byte strings."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        super().__init__(page_size)
        self._pages: list[bytes] = []

    def allocate(self) -> int:
        self._pages.append(b"\x00" * self.page_size)
        return len(self._pages) - 1

    def read(self, page_id: int) -> bytearray:
        self._check_page_id(page_id)
        return bytearray(self._pages[page_id])

    def write(self, page_id: int, data: bytes) -> None:
        self._check_page_id(page_id)
        self._pages[page_id] = self._check_payload(data)

    @property
    def num_pages(self) -> int:
        return len(self._pages)


class FilePageFile(PageFile):
    """Page file backed by a regular file on the local filesystem."""

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        super().__init__(page_size)
        self.path = path
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            raise PageError(
                f"existing file {path!r} has size {size}, not a multiple of the "
                f"page size {page_size}"
            )
        self._num_pages = size // page_size

    def allocate(self) -> int:
        page_id = self._num_pages
        self._file.seek(page_id * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        self._num_pages += 1
        return page_id

    def read(self, page_id: int) -> bytearray:
        self._check_page_id(page_id)
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise PageError(f"short read of page {page_id} from {self.path!r}")
        return bytearray(data)

    def write(self, page_id: int, data: bytes) -> None:
        self._check_page_id(page_id)
        self._file.seek(page_id * self.page_size)
        self._file.write(self._check_payload(data))

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def sync(self) -> None:
        """Flush Python buffers and fsync the file to stable storage."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.flush()
        self._file.close()
