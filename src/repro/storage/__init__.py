"""Simulated disk storage engine (pager, buffer pool, B+-tree, hash file).

This subpackage replaces the Berkeley DB substrate of the original paper with
a pure-Python engine whose buffer pool counts disk page accesses — the metric
every experiment in the paper reports.
"""

from repro.storage.btree import BTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.hashfile import HashFile
from repro.storage.kvstore import PAPER_CACHE_BYTES, Environment, Table
from repro.storage.pager import (
    DEFAULT_PAGE_SIZE,
    FilePageFile,
    MemoryPageFile,
    PageFile,
)
from repro.storage.recordstore import RecordStore
from repro.storage.stats import DiskModel, IOSnapshot, IOStatistics

__all__ = [
    "BTree",
    "BufferPool",
    "HashFile",
    "Environment",
    "Table",
    "PAPER_CACHE_BYTES",
    "PageFile",
    "MemoryPageFile",
    "FilePageFile",
    "DEFAULT_PAGE_SIZE",
    "RecordStore",
    "DiskModel",
    "IOSnapshot",
    "IOStatistics",
]
