"""I/O accounting and the simulated disk cost model.

The paper's primary metric is *disk page accesses*, i.e. buffer-pool cache
misses reported by Berkeley DB, complemented by a decomposition of query time
into CPU time and I/O time.  Because this reproduction runs on a simulated
storage engine, the same quantities are collected deterministically:

* every buffer-pool miss is counted as a page read and classified as
  *sequential* (the page physically follows the previously read page) or
  *random* (any other page), matching the discussion in Section 5;
* a :class:`DiskModel` converts the (random, sequential) mix into a simulated
  I/O time, so the time plots of Figures 8-10 can be regenerated without a
  spinning disk.

Accounting is two-level.  A :class:`ReadContext` is carried by one traversal
(one open cursor, one probe): it counts exactly that operation's reads and
classifies them sequential/random against *its own* last-page-id, so the
numbers stay exact even when many queries interleave on one buffer pool.
Every contextual read is simultaneously summed into the pool-wide
:class:`IOStatistics` totals (the classification decided by the context), so
the per-context counts always add up to the pool totals.  The older
snapshot/diff API on :class:`IOStatistics` remains for single-threaded uses
(experiment phases, build accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DiskModel:
    """Cost model that converts page-access counts into simulated I/O time.

    The defaults approximate a commodity 2010-era hard disk: a random page
    access pays a seek plus rotational delay (~8 ms), a sequential page access
    only pays transfer time (~0.05 ms for an 8 KB page at ~150 MB/s).  The
    absolute values are irrelevant for the reproduction — only the ratio
    matters, because it determines how the extra random accesses of the OIF
    trade against the long sequential scans of the IF.
    """

    random_access_ms: float = 8.0
    sequential_access_ms: float = 0.05

    def io_time_ms(self, random_reads: int, sequential_reads: int) -> float:
        """Return the simulated I/O time in milliseconds for an access mix."""
        return (
            random_reads * self.random_access_ms
            + sequential_reads * self.sequential_access_ms
        )


@dataclass
class IOSnapshot:
    """Immutable view of the counters at a point in time.

    ``decoded_hits`` / ``decoded_misses`` count lookups in the decoded-block
    cache (:class:`~repro.storage.block_cache.DecodedBlockCache`).  They are
    CPU-side counters: a decoded hit still pays its simulated page access, so
    the page/read columns stay comparable with and without the cache.
    """

    page_reads: int = 0
    page_writes: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    logical_reads: int = 0
    cache_hits: int = 0
    decoded_hits: int = 0
    decoded_misses: int = 0

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            page_reads=self.page_reads - other.page_reads,
            page_writes=self.page_writes - other.page_writes,
            sequential_reads=self.sequential_reads - other.sequential_reads,
            random_reads=self.random_reads - other.random_reads,
            logical_reads=self.logical_reads - other.logical_reads,
            cache_hits=self.cache_hits - other.cache_hits,
            decoded_hits=self.decoded_hits - other.decoded_hits,
            decoded_misses=self.decoded_misses - other.decoded_misses,
        )

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        """Counter-wise sum, so per-shard snapshots aggregate into one total."""
        if not isinstance(other, IOSnapshot):
            return NotImplemented
        return IOSnapshot(
            page_reads=self.page_reads + other.page_reads,
            page_writes=self.page_writes + other.page_writes,
            sequential_reads=self.sequential_reads + other.sequential_reads,
            random_reads=self.random_reads + other.random_reads,
            logical_reads=self.logical_reads + other.logical_reads,
            cache_hits=self.cache_hits + other.cache_hits,
            decoded_hits=self.decoded_hits + other.decoded_hits,
            decoded_misses=self.decoded_misses + other.decoded_misses,
        )

    def io_time_ms(self, model: DiskModel | None = None) -> float:
        """Simulated I/O time of the reads captured by this snapshot."""
        model = model or DiskModel()
        return model.io_time_ms(self.random_reads, self.sequential_reads)


class ReadContext:
    """Per-operation read accounting, carried explicitly through one traversal.

    A context is created when a query opens (one per
    :class:`~repro.core.query.cursor.Cursor`, one per fanned-out shard) and
    passed down to every :meth:`BufferPool.get_page` the traversal causes.
    It owns its own last-page-id, so the sequential/random split describes
    the locality of *this* operation's access pattern — interleaved readers
    cannot pollute each other's classification the way a single global
    last-page-id would.
    """

    __slots__ = (
        "page_reads",
        "sequential_reads",
        "random_reads",
        "logical_reads",
        "cache_hits",
        "decoded_hits",
        "decoded_misses",
        "_last_read_page",
    )

    def __init__(self) -> None:
        self.page_reads = 0
        self.sequential_reads = 0
        self.random_reads = 0
        self.logical_reads = 0
        self.cache_hits = 0
        self.decoded_hits = 0
        self.decoded_misses = 0
        self._last_read_page: int | None = None

    def record_logical_read(self, hit: bool) -> None:
        """Count one buffer-pool lookup; ``hit`` says whether it avoided disk."""
        self.logical_reads += 1
        if hit:
            self.cache_hits += 1

    def record_physical_read(self, page_id: int) -> bool:
        """Count one page fetched from disk; returns True when sequential."""
        self.page_reads += 1
        sequential = (
            self._last_read_page is not None and page_id == self._last_read_page + 1
        )
        if sequential:
            self.sequential_reads += 1
        else:
            self.random_reads += 1
        self._last_read_page = page_id
        return sequential

    def record_decoded(self, hit: bool) -> None:
        """Count one decoded-block cache lookup; ``hit`` means decode was skipped."""
        if hit:
            self.decoded_hits += 1
        else:
            self.decoded_misses += 1

    def absorb(self, other: "ReadContext") -> None:
        """Add another context's counts into this one (locality untouched).

        Used when an operation fans out into sub-operations with their own
        locality — e.g. one shard context per shard of a fanned probe: page
        ids are per page file, so chaining one last-page-id across shards
        would invent sequentiality that no disk arm ever saw.
        """
        self.page_reads += other.page_reads
        self.sequential_reads += other.sequential_reads
        self.random_reads += other.random_reads
        self.logical_reads += other.logical_reads
        self.cache_hits += other.cache_hits
        self.decoded_hits += other.decoded_hits
        self.decoded_misses += other.decoded_misses

    def absorb_snapshot(self, snapshot: "IOSnapshot") -> None:
        """Add a finished traversal's snapshot into this context.

        The cross-process counterpart of :meth:`absorb`: a worker process
        evaluates a shard with its own context and ships the resulting
        :class:`IOSnapshot` back; the parent folds the counts into the
        caller's context here.  Locality is untouched for the same reason as
        in :meth:`absorb` — the worker's pages live in a different file.
        """
        self.page_reads += snapshot.page_reads
        self.sequential_reads += snapshot.sequential_reads
        self.random_reads += snapshot.random_reads
        self.logical_reads += snapshot.logical_reads
        self.cache_hits += snapshot.cache_hits
        self.decoded_hits += snapshot.decoded_hits
        self.decoded_misses += snapshot.decoded_misses

    def reset(self) -> None:
        """Zero the counters and forget locality."""
        self.page_reads = 0
        self.sequential_reads = 0
        self.random_reads = 0
        self.logical_reads = 0
        self.cache_hits = 0
        self.decoded_hits = 0
        self.decoded_misses = 0
        self._last_read_page = None

    def snapshot(self) -> IOSnapshot:
        """This context's counts as an :class:`IOSnapshot` (no writes)."""
        return IOSnapshot(
            page_reads=self.page_reads,
            sequential_reads=self.sequential_reads,
            random_reads=self.random_reads,
            logical_reads=self.logical_reads,
            cache_hits=self.cache_hits,
            decoded_hits=self.decoded_hits,
            decoded_misses=self.decoded_misses,
        )


@dataclass
class IOStatistics:
    """Mutable I/O counters shared by a pager / buffer pool / index stack.

    The counters are the *pool-wide totals*: every read recorded through a
    :class:`ReadContext` (:meth:`record_read`) is summed in here as well, and
    uncontextualized reads are classified against an internal default
    context.  Mutation is not internally synchronized — the owning
    :class:`~repro.storage.buffer_pool.BufferPool` serializes all updates
    under its frame lock.
    """

    disk_model: DiskModel = field(default_factory=DiskModel)
    page_reads: int = 0
    page_writes: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    logical_reads: int = 0
    cache_hits: int = 0
    decoded_hits: int = 0
    decoded_misses: int = 0
    _default_context: ReadContext = field(
        default_factory=ReadContext, repr=False, compare=False
    )

    def record_read(self, page_id: int, hit: bool, ctx: "ReadContext | None" = None) -> None:
        """Charge one buffer-pool lookup to ``ctx`` *and* the pool totals.

        On a miss the sequential/random classification is decided by the
        context's own locality and applied identically to both levels, which
        is what keeps ``sum(contexts) == totals`` exact under concurrency.
        """
        ctx = ctx if ctx is not None else self._default_context
        ctx.record_logical_read(hit)
        self.logical_reads += 1
        if hit:
            self.cache_hits += 1
            return
        sequential = ctx.record_physical_read(page_id)
        self.page_reads += 1
        if sequential:
            self.sequential_reads += 1
        else:
            self.random_reads += 1

    def record_logical_read(self, hit: bool) -> None:
        """Count a buffer-pool lookup; ``hit`` says whether it avoided disk."""
        self.logical_reads += 1
        if hit:
            self.cache_hits += 1

    def record_physical_read(self, page_id: int) -> None:
        """Count a page fetched from disk and classify it as sequential/random."""
        self.page_reads += 1
        if self._default_context.record_physical_read(page_id):
            self.sequential_reads += 1
        else:
            self.random_reads += 1

    def record_physical_write(self) -> None:
        """Count a dirty page flushed to disk."""
        self.page_writes += 1

    def absorb_snapshot(self, snapshot: IOSnapshot) -> None:
        """Fold a remote traversal's snapshot into the pool-wide totals.

        Used when a worker process evaluated this environment's page image:
        the pages it read are charged back here so the two-level invariant
        (per-context counts sum to the owning pool's totals) keeps holding
        across the process boundary.  Like every other mutation, callers must
        serialize through the owning :class:`~repro.storage.buffer_pool.BufferPool`
        (:meth:`BufferPool.absorb_snapshot`), not call this concurrently.
        """
        self.page_reads += snapshot.page_reads
        self.page_writes += snapshot.page_writes
        self.sequential_reads += snapshot.sequential_reads
        self.random_reads += snapshot.random_reads
        self.logical_reads += snapshot.logical_reads
        self.cache_hits += snapshot.cache_hits
        self.decoded_hits += snapshot.decoded_hits
        self.decoded_misses += snapshot.decoded_misses

    def record_decoded(self, hit: bool, ctx: "ReadContext | None" = None) -> None:
        """Charge one decoded-block cache lookup to ``ctx`` *and* the totals.

        Called by :class:`~repro.storage.block_cache.DecodedBlockCache` under
        its own lock, which serializes the decoded counters the same way the
        buffer pool's lock serializes the read counters — so per-context
        decoded counts always sum exactly to these totals.
        """
        ctx = ctx if ctx is not None else self._default_context
        ctx.record_decoded(hit)
        if hit:
            self.decoded_hits += 1
        else:
            self.decoded_misses += 1

    def reset(self) -> None:
        """Zero every counter and forget read locality."""
        self.page_reads = 0
        self.page_writes = 0
        self.sequential_reads = 0
        self.random_reads = 0
        self.logical_reads = 0
        self.cache_hits = 0
        self.decoded_hits = 0
        self.decoded_misses = 0
        self._default_context.reset()

    def snapshot(self) -> IOSnapshot:
        """Capture the current counter values."""
        return IOSnapshot(
            page_reads=self.page_reads,
            page_writes=self.page_writes,
            sequential_reads=self.sequential_reads,
            random_reads=self.random_reads,
            logical_reads=self.logical_reads,
            cache_hits=self.cache_hits,
            decoded_hits=self.decoded_hits,
            decoded_misses=self.decoded_misses,
        )

    def since(self, snapshot: IOSnapshot) -> IOSnapshot:
        """Return the counter deltas accumulated after ``snapshot`` was taken."""
        return self.snapshot() - snapshot

    def io_time_ms(self) -> float:
        """Simulated I/O time for everything counted so far."""
        return self.disk_model.io_time_ms(self.random_reads, self.sequential_reads)
