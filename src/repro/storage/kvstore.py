"""Berkeley-DB-like facade over the simulated storage engine.

The paper implements both indexes on Berkeley DB, which exposes *relations*
(tables) of key/value pairs with a choice of access method — a B+-tree or a
hash table — on top of a shared page cache.  :class:`Environment` and
:class:`Table` reproduce that programming model:

* an :class:`Environment` owns the page file, the buffer pool (whose size is
  the "database cache" the paper sets to its 32 KB minimum) and the shared
  :class:`~repro.storage.stats.IOStatistics`;
* a :class:`Table` is created with ``access_method='btree'`` (used by the OIF
  and the unordered B-tree baseline) or ``access_method='hash'`` (used by the
  classic inverted file), and offers ``put`` / ``get`` / ``cursor`` calls.

All indexes in the library allocate their tables from an environment, so one
set of I/O counters captures everything a query touches.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.storage.btree import BTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.hashfile import HashFile
from repro.storage.pager import DEFAULT_PAGE_SIZE, FilePageFile, MemoryPageFile, PageFile
from repro.storage.stats import DiskModel, IOStatistics, ReadContext

#: Cache size used by the paper's experiments (the Berkeley DB minimum).
PAPER_CACHE_BYTES = 32 * 1024


class Environment:
    """Shared storage context: page file + buffer pool + I/O statistics."""

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_bytes: int = PAPER_CACHE_BYTES,
        path: str | None = None,
        disk_model: DiskModel | None = None,
    ) -> None:
        if cache_bytes < page_size:
            raise StorageError(
                f"cache of {cache_bytes} bytes cannot hold a single {page_size}-byte page"
            )
        self.page_size = page_size
        self.stats = IOStatistics(disk_model=disk_model or DiskModel())
        self.page_file: PageFile
        if path is None:
            self.page_file = MemoryPageFile(page_size)
        else:
            self.page_file = FilePageFile(path, page_size)
        self.cache_pages = max(1, cache_bytes // page_size)
        self.pool = BufferPool(self.page_file, capacity=self.cache_pages, stats=self.stats)
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, access_method: str = "btree", **kwargs: int) -> "Table":
        """Create (and register) a table with the given access method."""
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists in this environment")
        table = Table(self, name, access_method, **kwargs)
        self._tables[name] = table
        return table

    def table(self, name: str) -> "Table":
        """Return a previously created table."""
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"no table named {name!r} in this environment") from None

    def reset_stats(self) -> None:
        """Zero the I/O counters (used between experiment phases)."""
        self.stats.reset()

    def drop_cache(self) -> None:
        """Flush and empty the buffer pool, forcing subsequent reads to miss.

        The paper circumvents the OS cache and uses a minimal database cache;
        calling this between queries reproduces a cold(ish) cache.
        """
        self.pool.clear()

    @property
    def size_bytes(self) -> int:
        """Total size of the allocated pages (the on-disk footprint)."""
        return self.page_file.num_pages * self.page_size

    def close(self) -> None:
        """Flush dirty pages and close the backing file."""
        self.pool.flush()
        self.page_file.close()


class Table:
    """One key/value relation, backed by either a B+-tree or a hash table."""

    def __init__(
        self,
        env: Environment,
        name: str,
        access_method: str = "btree",
        num_buckets: int = 64,
    ) -> None:
        self.env = env
        self.name = name
        self.access_method = access_method
        if access_method == "btree":
            self._btree: BTree | None = BTree(env.pool)
            self._hash: HashFile | None = None
        elif access_method == "hash":
            self._btree = None
            self._hash = HashFile(env.pool, num_buckets=num_buckets)
        else:
            raise StorageError(
                f"unknown access method {access_method!r}; expected 'btree' or 'hash'"
            )

    # -- common operations ---------------------------------------------------------

    def put(self, key: bytes, value: bytes, replace: bool = False) -> None:
        """Insert or (with ``replace=True``) overwrite one key/value pair."""
        if self._btree is not None:
            self._btree.insert(key, value, replace=replace)
        else:
            assert self._hash is not None
            self._hash.put(key, value, replace=replace)

    def get(self, key: bytes, ctx: "ReadContext | None" = None) -> bytes:
        """Fetch the value for ``key``; raises ``KeyNotFoundError`` if absent."""
        if self._btree is not None:
            return self._btree.get(key, ctx)
        assert self._hash is not None
        return self._hash.get(key, ctx)

    def contains(self, key: bytes, ctx: "ReadContext | None" = None) -> bool:
        """Membership test."""
        if self._btree is not None:
            return self._btree.contains(key, ctx)
        assert self._hash is not None
        return self._hash.contains(key, ctx)

    def __len__(self) -> int:
        if self._btree is not None:
            return len(self._btree)
        assert self._hash is not None
        return len(self._hash)

    # -- B-tree-only operations ----------------------------------------------------

    def bulk_load(self, entries: Iterable[tuple[bytes, bytes]], fill_factor: float = 0.9) -> None:
        """Bulk load sorted entries (B-tree tables only)."""
        self._require_btree().bulk_load(entries, fill_factor=fill_factor)

    def cursor(
        self, start_key: bytes = b"", ctx: "ReadContext | None" = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Range cursor from the first key >= ``start_key`` (B-tree tables only).

        Equivalent to Berkeley DB's ``DB_SET_RANGE`` cursor positioning;
        page reads are charged to ``ctx``.
        """
        return self._require_btree().seek(start_key, ctx)

    def delete(self, key: bytes) -> None:
        """Delete one key (B-tree tables only)."""
        self._require_btree().delete(key)

    @property
    def btree(self) -> BTree:
        """Expose the underlying B-tree (for invariant checks in tests)."""
        return self._require_btree()

    @property
    def hashfile(self) -> HashFile:
        """Expose the underlying hash file (for page accounting in tests)."""
        if self._hash is None:
            raise StorageError(f"table {self.name!r} does not use the hash access method")
        return self._hash

    def _require_btree(self) -> BTree:
        if self._btree is None:
            raise StorageError(f"table {self.name!r} does not use the btree access method")
        return self._btree
