"""Berkeley-DB-like facade over the simulated storage engine.

The paper implements both indexes on Berkeley DB, which exposes *relations*
(tables) of key/value pairs with a choice of access method — a B+-tree or a
hash table — on top of a shared page cache.  :class:`Environment` and
:class:`Table` reproduce that programming model:

* an :class:`Environment` owns the page file, the buffer pool (whose size is
  the "database cache" the paper sets to its 32 KB minimum) and the shared
  :class:`~repro.storage.stats.IOStatistics`;
* a :class:`Table` is created with ``access_method='btree'`` (used by the OIF
  and the unordered B-tree baseline) or ``access_method='hash'`` (used by the
  classic inverted file), and offers ``put`` / ``get`` / ``cursor`` calls.

All indexes in the library allocate their tables from an environment, so one
set of I/O counters captures everything a query touches.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.storage.btree import BTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.hashfile import HashFile
from repro.storage.pager import DEFAULT_PAGE_SIZE, FilePageFile, MemoryPageFile, PageFile
from repro.storage.stats import DiskModel, IOStatistics, ReadContext

#: Cache size used by the paper's experiments (the Berkeley DB minimum).
PAPER_CACHE_BYTES = 32 * 1024

# Catalog page layout (page 0 of catalog-enabled environments): the header
# carries the format magic/version and the page size the file was written
# with, followed by one entry per table (name, access method, root page id).
# The catalog is what makes a closed environment reopenable — without it the
# table roots live only in Python objects.
_CATALOG_MAGIC = 0x0C174106
_CATALOG_VERSION = 1
_CATALOG_HEADER = struct.Struct("<IHIH")  # magic, version, page size, entry count
_CATALOG_ENTRY = struct.Struct("<HBII")  # name length, method code, root page, buckets
_METHOD_CODES = {"btree": 0, "hash": 1}
_METHOD_NAMES = {code: name for name, code in _METHOD_CODES.items()}


class Environment:
    """Shared storage context: page file + buffer pool + I/O statistics."""

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_bytes: int = PAPER_CACHE_BYTES,
        path: str | None = None,
        disk_model: DiskModel | None = None,
        catalog: bool = False,
    ) -> None:
        if cache_bytes < page_size:
            raise StorageError(
                f"cache of {cache_bytes} bytes cannot hold a single {page_size}-byte page"
            )
        self.page_size = page_size
        self.stats = IOStatistics(disk_model=disk_model or DiskModel())
        self.page_file: PageFile
        if path is None:
            self.page_file = MemoryPageFile(page_size)
        else:
            self.page_file = FilePageFile(path, page_size)
        self.cache_pages = max(1, cache_bytes // page_size)
        self.pool = BufferPool(self.page_file, capacity=self.cache_pages, stats=self.stats)
        self._tables: dict[str, Table] = {}
        #: ``catalog=True`` reserves page 0 as a table catalog (name, access
        #: method, root page per table), making the environment reopenable
        #: from its page file alone.  Experiments keep it off so their page
        #: counts match the paper's layout exactly.
        self.has_catalog = catalog
        if catalog:
            if self.page_file.num_pages == 0:
                if self.page_file.allocate() != 0:
                    raise StorageError("the catalog page must be page 0")
                self._write_catalog()
            else:
                self._load_catalog()

    def create_table(self, name: str, access_method: str = "btree", **kwargs: int) -> "Table":
        """Create (and register) a table with the given access method."""
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists in this environment")
        table = Table(self, name, access_method, **kwargs)
        self._tables[name] = table
        if self.has_catalog:
            self._write_catalog()
        return table

    def table(self, name: str) -> "Table":
        """Return a previously created table."""
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"no table named {name!r} in this environment") from None

    def reset_stats(self) -> None:
        """Zero the I/O counters (used between experiment phases)."""
        self.stats.reset()

    def drop_cache(self) -> None:
        """Flush and empty the buffer pool, forcing subsequent reads to miss.

        The paper circumvents the OS cache and uses a minimal database cache;
        calling this between queries reproduces a cold(ish) cache.
        """
        self.pool.clear()

    @property
    def size_bytes(self) -> int:
        """Total size of the allocated pages (the on-disk footprint)."""
        return self.page_file.num_pages * self.page_size

    def sync(self) -> None:
        """Flush dirty pages and fsync the backing file (durability barrier)."""
        self.pool.flush()
        self.page_file.sync()

    def close(self) -> None:
        """Flush dirty pages and close the backing file."""
        self.pool.flush()
        self.page_file.close()

    # -- catalog page --------------------------------------------------------------

    def load_catalog(self) -> None:
        """(Re)read the catalog page and rebuild the table directory.

        Used by the durability layer after copying a persisted page image
        into a fresh environment: the pages carry the catalog, the Python
        ``Table`` objects have to be reconstructed from it.
        """
        self.has_catalog = True
        self._tables.clear()
        self._load_catalog()

    def _write_catalog(self) -> None:
        """Serialize the table directory into page 0.

        The catalog page is written through :attr:`page_file` directly rather
        than the buffer pool so catalog maintenance never perturbs the I/O
        counters the experiments report.
        """
        entries = []
        for table in self._tables.values():
            name_bytes = table.name.encode("utf-8")
            if table._btree is not None:
                root, buckets = table._btree.meta_page_id, 0
            else:
                assert table._hash is not None
                root, buckets = 0, table._hash.num_buckets
            entries.append(
                _CATALOG_ENTRY.pack(
                    len(name_bytes), _METHOD_CODES[table.access_method], root, buckets
                )
                + name_bytes
            )
        payload = _CATALOG_HEADER.pack(
            _CATALOG_MAGIC, _CATALOG_VERSION, self.page_size, len(entries)
        ) + b"".join(entries)
        if len(payload) > self.page_size:
            raise StorageError(
                f"catalog of {len(self._tables)} tables does not fit in one "
                f"{self.page_size}-byte page"
            )
        self.page_file.write(0, payload)

    def _load_catalog(self) -> None:
        """Rebuild ``_tables`` from page 0 of an existing environment."""
        if self.page_file.num_pages == 0:
            raise StorageError("environment file has no pages; nothing to reopen")
        data = bytes(self.page_file.read(0))
        if len(data) < _CATALOG_HEADER.size:
            raise StorageError("environment file is too small to hold a catalog page")
        magic, version, page_size, count = _CATALOG_HEADER.unpack_from(data, 0)
        if magic != _CATALOG_MAGIC:
            raise StorageError(
                "environment file does not start with a catalog page "
                f"(magic {magic:#x}, expected {_CATALOG_MAGIC:#x})"
            )
        if version != _CATALOG_VERSION:
            raise StorageError(
                f"environment catalog has format version {version}; this build "
                f"reads version {_CATALOG_VERSION}"
            )
        if page_size != self.page_size:
            raise StorageError(
                f"environment was written with page size {page_size}, but is "
                f"being opened with page size {self.page_size}"
            )
        offset = _CATALOG_HEADER.size
        for _ in range(count):
            name_len, method_code, root, buckets = _CATALOG_ENTRY.unpack_from(data, offset)
            offset += _CATALOG_ENTRY.size
            name = data[offset : offset + name_len].decode("utf-8")
            offset += name_len
            try:
                method = _METHOD_NAMES[method_code]
            except KeyError:
                raise StorageError(
                    f"catalog entry {name!r} has unknown access method code {method_code}"
                ) from None
            self._tables[name] = Table(
                self, name, method, num_buckets=buckets or 64, root_page_id=root
            )


class Table:
    """One key/value relation, backed by either a B+-tree or a hash table."""

    def __init__(
        self,
        env: Environment,
        name: str,
        access_method: str = "btree",
        num_buckets: int = 64,
        root_page_id: int | None = None,
    ) -> None:
        self.env = env
        self.name = name
        self.access_method = access_method
        if access_method == "btree":
            self._btree: BTree | None = BTree(env.pool, meta_page_id=root_page_id)
            self._hash: HashFile | None = None
        elif access_method == "hash":
            if root_page_id is not None:
                raise StorageError(
                    f"table {name!r} uses the hash access method, which does not "
                    "support reopening; rebuild it or use a btree table"
                )
            self._btree = None
            self._hash = HashFile(env.pool, num_buckets=num_buckets)
        else:
            raise StorageError(
                f"unknown access method {access_method!r}; expected 'btree' or 'hash'"
            )

    @property
    def root_page_id(self) -> int:
        """Meta page id anchoring the table on disk (btree tables only)."""
        return self._require_btree().meta_page_id

    # -- common operations ---------------------------------------------------------

    def put(self, key: bytes, value: bytes, replace: bool = False) -> None:
        """Insert or (with ``replace=True``) overwrite one key/value pair."""
        if self._btree is not None:
            self._btree.insert(key, value, replace=replace)
        else:
            assert self._hash is not None
            self._hash.put(key, value, replace=replace)

    def get(self, key: bytes, ctx: "ReadContext | None" = None) -> bytes:
        """Fetch the value for ``key``; raises ``KeyNotFoundError`` if absent."""
        if self._btree is not None:
            return self._btree.get(key, ctx)
        assert self._hash is not None
        return self._hash.get(key, ctx)

    def contains(self, key: bytes, ctx: "ReadContext | None" = None) -> bool:
        """Membership test."""
        if self._btree is not None:
            return self._btree.contains(key, ctx)
        assert self._hash is not None
        return self._hash.contains(key, ctx)

    def __len__(self) -> int:
        if self._btree is not None:
            return len(self._btree)
        assert self._hash is not None
        return len(self._hash)

    # -- B-tree-only operations ----------------------------------------------------

    def bulk_load(self, entries: Iterable[tuple[bytes, bytes]], fill_factor: float = 0.9) -> None:
        """Bulk load sorted entries (B-tree tables only)."""
        self._require_btree().bulk_load(entries, fill_factor=fill_factor)

    def cursor(
        self, start_key: bytes = b"", ctx: "ReadContext | None" = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Range cursor from the first key >= ``start_key`` (B-tree tables only).

        Equivalent to Berkeley DB's ``DB_SET_RANGE`` cursor positioning;
        page reads are charged to ``ctx``.
        """
        return self._require_btree().seek(start_key, ctx)

    def delete(self, key: bytes) -> None:
        """Delete one key (B-tree tables only)."""
        self._require_btree().delete(key)

    @property
    def btree(self) -> BTree:
        """Expose the underlying B-tree (for invariant checks in tests)."""
        return self._require_btree()

    @property
    def hashfile(self) -> HashFile:
        """Expose the underlying hash file (for page accounting in tests)."""
        if self._hash is None:
            raise StorageError(f"table {self.name!r} does not use the hash access method")
        return self._hash

    def _require_btree(self) -> BTree:
        if self._btree is None:
            raise StorageError(f"table {self.name!r} does not use the btree access method")
        return self._btree
