"""Disk-resident B+-tree with byte-string keys and values.

This is the access method underneath the OIF: every posting block is stored
as one entry whose key is ``(item, tag, last_record_id)`` encoded so that the
byte-wise lexicographic order of the keys matches the logical order of the
blocks (Section 3, "B-tree indexing for inverted lists").  The unordered
B-tree baseline of the "Impact of the OIF ordering" experiment reuses the same
structure with a different key.

Design points
-------------
* Keys and values are opaque byte strings; ordering is plain ``bytes``
  comparison.  Key encoders elsewhere in the library are responsible for
  making byte order match logical order.
* All nodes are serialized into fixed-size pages and read/written through the
  :class:`~repro.storage.buffer_pool.BufferPool`, so every traversal is charged
  with the page accesses it causes.
* Leaves are chained (``next_leaf``), which makes range scans mostly
  sequential page accesses when the tree was bulk loaded.
* Two construction paths exist: :meth:`BTree.bulk_load` packs sorted entries
  bottom-up with a configurable fill factor (used when building an index),
  and :meth:`BTree.insert` performs ordinary top-down insertion with node
  splits (used by updates).
* A one-page header stores the root pointer so a tree stored in a
  :class:`~repro.storage.pager.FilePageFile` can be reopened.

The implementation favours clarity over raw speed: node payloads are decoded
into small Python objects on access.  All performance *measurements* in the
experiments are page-access counts and simulated I/O times, which do not
depend on the decoding speed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import BTreeError, DuplicateKeyError, KeyNotFoundError
from repro.storage.buffer_pool import BufferPool
from repro.storage.stats import ReadContext

_LEAF = 0
_INTERNAL = 1
_NO_PAGE = 0xFFFFFFFF

_NODE_HEADER = struct.Struct("<BHI")  # node type, entry count, next leaf / first child
_META_HEADER = struct.Struct("<III")  # magic, root page id, height
_META_MAGIC = 0x0B1F0B1F

_LEAF_ENTRY_OVERHEAD = 4  # two uint16 length prefixes
_INTERNAL_ENTRY_OVERHEAD = 6  # uint16 key length + uint32 child pointer


@dataclass
class _LeafNode:
    """In-memory image of a leaf page."""

    keys: list[bytes] = field(default_factory=list)
    values: list[bytes] = field(default_factory=list)
    next_leaf: int = _NO_PAGE

    def byte_size(self) -> int:
        payload = sum(len(k) + len(v) for k, v in zip(self.keys, self.values))
        return _NODE_HEADER.size + payload + _LEAF_ENTRY_OVERHEAD * len(self.keys)


@dataclass
class _InternalNode:
    """In-memory image of an internal page.

    ``children`` has one more element than ``keys``: ``keys[i]`` is the
    smallest key reachable under ``children[i + 1]``.
    """

    keys: list[bytes] = field(default_factory=list)
    children: list[int] = field(default_factory=list)

    def byte_size(self) -> int:
        payload = sum(len(k) for k in self.keys)
        return (
            _NODE_HEADER.size
            + 4 * max(len(self.children) - 1, 0)
            + payload
            + 2 * len(self.keys)
            + 4
        )


def _serialize_leaf(node: _LeafNode) -> bytes:
    out = bytearray(_NODE_HEADER.pack(_LEAF, len(node.keys), node.next_leaf))
    for key, value in zip(node.keys, node.values):
        out += struct.pack("<H", len(key))
        out += key
        out += struct.pack("<H", len(value))
        out += value
    return bytes(out)


def _serialize_internal(node: _InternalNode) -> bytes:
    if len(node.children) != len(node.keys) + 1:
        raise BTreeError(
            f"internal node has {len(node.children)} children for {len(node.keys)} keys"
        )
    out = bytearray(_NODE_HEADER.pack(_INTERNAL, len(node.keys), node.children[0]))
    for key, child in zip(node.keys, node.children[1:]):
        out += struct.pack("<H", len(key))
        out += key
        out += struct.pack("<I", child)
    return bytes(out)


def _deserialize(data: bytes) -> _LeafNode | _InternalNode:
    node_type, count, link = _NODE_HEADER.unpack_from(data, 0)
    offset = _NODE_HEADER.size
    if node_type == _LEAF:
        leaf = _LeafNode(next_leaf=link)
        for _ in range(count):
            (key_len,) = struct.unpack_from("<H", data, offset)
            offset += 2
            key = bytes(data[offset : offset + key_len])
            offset += key_len
            (val_len,) = struct.unpack_from("<H", data, offset)
            offset += 2
            value = bytes(data[offset : offset + val_len])
            offset += val_len
            leaf.keys.append(key)
            leaf.values.append(value)
        return leaf
    if node_type == _INTERNAL:
        internal = _InternalNode(children=[link])
        for _ in range(count):
            (key_len,) = struct.unpack_from("<H", data, offset)
            offset += 2
            key = bytes(data[offset : offset + key_len])
            offset += key_len
            (child,) = struct.unpack_from("<I", data, offset)
            offset += 4
            internal.keys.append(key)
            internal.children.append(child)
        return internal
    raise BTreeError(f"corrupt node page: unknown node type {node_type}")


def _bisect_right(keys: Sequence[bytes], key: bytes) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _bisect_left(keys: Sequence[bytes], key: bytes) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BTree:
    """A disk-based B+-tree mapping unique byte-string keys to byte values."""

    def __init__(self, pool: BufferPool, meta_page_id: int | None = None) -> None:
        self.pool = pool
        self.page_size = pool.page_file.page_size
        if self.page_size < 128:
            raise BTreeError(f"page size {self.page_size} is too small for a B+-tree")
        if meta_page_id is None:
            self.meta_page_id = pool.allocate_page()
            root = pool.allocate_page()
            self._write_node(root, _LeafNode())
            self.root_page_id = root
            self.height = 1
            self._write_meta()
        else:
            self.meta_page_id = meta_page_id
            data = pool.get_page(meta_page_id)
            magic, root, height = _META_HEADER.unpack_from(data, 0)
            if magic != _META_MAGIC:
                raise BTreeError(f"page {meta_page_id} is not a B-tree meta page")
            self.root_page_id = root
            self.height = height

    # -- public API ----------------------------------------------------------------

    def get(self, key: bytes, ctx: "ReadContext | None" = None) -> bytes:
        """Return the value stored for ``key``, charging reads to ``ctx``.

        Raises :class:`KeyNotFoundError` if the key is absent.
        """
        leaf, _ = self._descend_to_leaf(key, ctx)
        index = _bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        raise KeyNotFoundError(f"key {key!r} not found")

    def contains(self, key: bytes, ctx: "ReadContext | None" = None) -> bool:
        """Return whether ``key`` is present."""
        try:
            self.get(key, ctx)
        except KeyNotFoundError:
            return False
        return True

    def insert(self, key: bytes, value: bytes, replace: bool = False) -> None:
        """Insert ``key`` → ``value``; splits nodes as needed.

        With ``replace=False`` (default) inserting an existing key raises
        :class:`DuplicateKeyError`; with ``replace=True`` the value is
        overwritten in place.
        """
        self._check_entry_fits(key, value)
        split = self._insert_recursive(self.root_page_id, self.height, key, value, replace)
        if split is not None:
            middle_key, new_child = split
            new_root = _InternalNode(keys=[middle_key], children=[self.root_page_id, new_child])
            root_page = self.pool.allocate_page()
            self._write_node(root_page, new_root)
            self.root_page_id = root_page
            self.height += 1
            self._write_meta()

    def delete(self, key: bytes) -> None:
        """Remove ``key`` from the tree.

        Underflowing leaves are tolerated (no rebalancing); the tree stays
        correct, merely less densely packed — sufficient for the batch-update
        workflow the paper describes, where the index is periodically rebuilt.
        """
        path: list[tuple[int, int]] = []
        page_id = self.root_page_id
        for _ in range(self.height - 1):
            node = self._read_node(page_id)
            if not isinstance(node, _InternalNode):
                raise BTreeError("tree height is inconsistent with node types")
            slot = _bisect_right(node.keys, key)
            path.append((page_id, slot))
            page_id = node.children[slot]
        leaf = self._read_node(page_id)
        if not isinstance(leaf, _LeafNode):
            raise BTreeError("expected a leaf at the bottom of the tree")
        index = _bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            raise KeyNotFoundError(f"key {key!r} not found")
        del leaf.keys[index]
        del leaf.values[index]
        self._write_node(page_id, leaf)

    def seek(
        self, key: bytes, ctx: "ReadContext | None" = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Iterate entries in key order starting at the first key >= ``key``.

        This is the equivalent of a Berkeley DB ``set_range`` cursor and is the
        primitive the OIF query algorithms use to locate the first block of a
        Range of Interest and then scan forward.  Page reads — the descent and
        every leaf the iteration advances to — are charged to ``ctx``.
        """
        leaf, page_id = self._descend_to_leaf(key, ctx)
        index = _bisect_left(leaf.keys, key)
        return self._iterate_from(leaf, page_id, index, ctx)

    def items(self, ctx: "ReadContext | None" = None) -> Iterator[tuple[bytes, bytes]]:
        """Iterate every entry in key order."""
        return self.seek(b"", ctx)

    def first_key(self) -> bytes | None:
        """Return the smallest key, or ``None`` when the tree is empty."""
        for key, _ in self.items():
            return key
        return None

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def bulk_load(
        self,
        entries: Iterable[tuple[bytes, bytes]],
        fill_factor: float = 0.9,
    ) -> None:
        """Replace the tree contents by bulk loading sorted ``entries``.

        ``entries`` must be sorted by key with no duplicates.  Leaves are
        packed to ``fill_factor`` of the page payload and chained left to
        right, then internal levels are built bottom-up.  Bulk loading places
        consecutive leaves on consecutive page ids, which makes range scans
        read mostly sequential pages — mirroring how contiguous inverted lists
        behave in the paper's Berkeley DB implementation.
        """
        if not 0.1 <= fill_factor <= 1.0:
            raise BTreeError(f"fill factor must be in [0.1, 1.0], got {fill_factor}")
        budget = int((self.page_size - _NODE_HEADER.size) * fill_factor)

        leaf_page_ids: list[int] = []
        leaf_first_keys: list[bytes] = []
        current = _LeafNode()
        current_bytes = 0
        previous_key: bytes | None = None

        pending: list[tuple[_LeafNode, int]] = []

        def flush_leaf(node: _LeafNode) -> None:
            page_id = self.pool.allocate_page()
            if pending:
                prev_node, prev_page = pending.pop()
                prev_node.next_leaf = page_id
                self._write_node(prev_page, prev_node)
            pending.append((node, page_id))
            leaf_page_ids.append(page_id)
            leaf_first_keys.append(node.keys[0] if node.keys else b"")

        for key, value in entries:
            if previous_key is not None and key <= previous_key:
                raise BTreeError(
                    "bulk load requires strictly increasing keys; "
                    f"got {previous_key!r} then {key!r}"
                )
            previous_key = key
            self._check_entry_fits(key, value)
            entry_bytes = len(key) + len(value) + _LEAF_ENTRY_OVERHEAD
            if current.keys and current_bytes + entry_bytes > budget:
                flush_leaf(current)
                current = _LeafNode()
                current_bytes = 0
            current.keys.append(key)
            current.values.append(value)
            current_bytes += entry_bytes

        if current.keys or not leaf_page_ids:
            flush_leaf(current)
        if pending:
            last_node, last_page = pending.pop()
            last_node.next_leaf = _NO_PAGE
            self._write_node(last_page, last_node)

        # Build the internal levels bottom-up.
        level_pages = leaf_page_ids
        level_keys = leaf_first_keys
        height = 1
        while len(level_pages) > 1:
            parent_pages: list[int] = []
            parent_keys: list[bytes] = []
            node = _InternalNode(children=[level_pages[0]])
            node_first_key = level_keys[0]
            node_bytes = node.byte_size()
            for child_page, child_key in zip(level_pages[1:], level_keys[1:]):
                entry_bytes = len(child_key) + _INTERNAL_ENTRY_OVERHEAD
                if node.keys and node_bytes + entry_bytes > budget:
                    page_id = self.pool.allocate_page()
                    self._write_node(page_id, node)
                    parent_pages.append(page_id)
                    parent_keys.append(node_first_key)
                    node = _InternalNode(children=[child_page])
                    node_first_key = child_key
                    node_bytes = node.byte_size()
                else:
                    node.keys.append(child_key)
                    node.children.append(child_page)
                    node_bytes += entry_bytes
            page_id = self.pool.allocate_page()
            self._write_node(page_id, node)
            parent_pages.append(page_id)
            parent_keys.append(node_first_key)
            level_pages = parent_pages
            level_keys = parent_keys
            height += 1

        self.root_page_id = level_pages[0]
        self.height = height
        self._write_meta()

    def check_invariants(self) -> None:
        """Validate structural invariants; used by the test suite.

        Checks that keys are globally sorted, that every internal separator key
        bounds its subtrees correctly, and that leaf chaining visits every key
        exactly once.
        """
        keys_via_structure = list(self._collect_keys(self.root_page_id, self.height))
        if keys_via_structure != sorted(keys_via_structure):
            raise BTreeError("keys are not in sorted order")
        if len(set(keys_via_structure)) != len(keys_via_structure):
            raise BTreeError("duplicate keys present")
        keys_via_chain = [key for key, _ in self.items()]
        if keys_via_chain != keys_via_structure:
            raise BTreeError("leaf chain does not agree with tree structure")

    # -- internals -----------------------------------------------------------------

    def _collect_keys(self, page_id: int, height: int) -> Iterator[bytes]:
        node = self._read_node(page_id)
        if height == 1:
            if not isinstance(node, _LeafNode):
                raise BTreeError("expected leaf at height 1")
            yield from node.keys
            return
        if not isinstance(node, _InternalNode):
            raise BTreeError("expected internal node above height 1")
        for child in node.children:
            yield from self._collect_keys(child, height - 1)

    def _iterate_from(
        self,
        leaf: _LeafNode,
        page_id: int,
        index: int,
        ctx: "ReadContext | None" = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        while True:
            while index < len(leaf.keys):
                yield leaf.keys[index], leaf.values[index]
                index += 1
            if leaf.next_leaf == _NO_PAGE:
                return
            page_id = leaf.next_leaf
            node = self._read_node(page_id, ctx)
            if not isinstance(node, _LeafNode):
                raise BTreeError("leaf chain points at a non-leaf page")
            leaf = node
            index = 0

    def _descend_to_leaf(
        self, key: bytes, ctx: "ReadContext | None" = None
    ) -> tuple[_LeafNode, int]:
        page_id = self.root_page_id
        for _ in range(self.height - 1):
            node = self._read_node(page_id, ctx)
            if not isinstance(node, _InternalNode):
                raise BTreeError("tree height is inconsistent with node types")
            slot = _bisect_right(node.keys, key)
            page_id = node.children[slot]
        node = self._read_node(page_id, ctx)
        if not isinstance(node, _LeafNode):
            raise BTreeError("expected a leaf at the bottom of the tree")
        return node, page_id

    def _insert_recursive(
        self, page_id: int, height: int, key: bytes, value: bytes, replace: bool
    ) -> tuple[bytes, int] | None:
        node = self._read_node(page_id)
        if height == 1:
            if not isinstance(node, _LeafNode):
                raise BTreeError("expected a leaf at height 1")
            index = _bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                if not replace:
                    raise DuplicateKeyError(f"key {key!r} already present")
                node.values[index] = value
            else:
                node.keys.insert(index, key)
                node.values.insert(index, value)
            if node.byte_size() <= self.page_size:
                self._write_node(page_id, node)
                return None
            return self._split_leaf(page_id, node)

        if not isinstance(node, _InternalNode):
            raise BTreeError("expected an internal node above height 1")
        slot = _bisect_right(node.keys, key)
        split = self._insert_recursive(node.children[slot], height - 1, key, value, replace)
        if split is None:
            return None
        middle_key, new_child = split
        node.keys.insert(slot, middle_key)
        node.children.insert(slot + 1, new_child)
        if node.byte_size() <= self.page_size:
            self._write_node(page_id, node)
            return None
        return self._split_internal(page_id, node)

    def _split_leaf(self, page_id: int, node: _LeafNode) -> tuple[bytes, int]:
        half = self._split_point(
            [len(k) + len(v) + _LEAF_ENTRY_OVERHEAD for k, v in zip(node.keys, node.values)]
        )
        right = _LeafNode(
            keys=node.keys[half:], values=node.values[half:], next_leaf=node.next_leaf
        )
        node.keys = node.keys[:half]
        node.values = node.values[:half]
        right_page = self.pool.allocate_page()
        node.next_leaf = right_page
        self._write_node(right_page, right)
        self._write_node(page_id, node)
        return right.keys[0], right_page

    def _split_internal(self, page_id: int, node: _InternalNode) -> tuple[bytes, int]:
        half = max(1, len(node.keys) // 2)
        middle_key = node.keys[half]
        right = _InternalNode(keys=node.keys[half + 1 :], children=node.children[half + 1 :])
        node.keys = node.keys[:half]
        node.children = node.children[: half + 1]
        right_page = self.pool.allocate_page()
        self._write_node(right_page, right)
        self._write_node(page_id, node)
        return middle_key, right_page

    @staticmethod
    def _split_point(entry_sizes: list[int]) -> int:
        total = sum(entry_sizes)
        running = 0
        for index, size in enumerate(entry_sizes):
            running += size
            if running >= total // 2:
                return max(1, min(index + 1, len(entry_sizes) - 1))
        return max(1, len(entry_sizes) - 1)

    def _check_entry_fits(self, key: bytes, value: bytes) -> None:
        single = _NODE_HEADER.size + len(key) + len(value) + _LEAF_ENTRY_OVERHEAD
        if single > self.page_size:
            raise BTreeError(
                f"entry of {len(key)} + {len(value)} bytes cannot fit in a "
                f"{self.page_size}-byte page"
            )
        if len(key) > 0xFFFF or len(value) > 0xFFFF:
            raise BTreeError("keys and values are limited to 65535 bytes")

    def _read_node(
        self, page_id: int, ctx: "ReadContext | None" = None
    ) -> _LeafNode | _InternalNode:
        return _deserialize(bytes(self.pool.get_page(page_id, ctx)))

    def _write_node(self, page_id: int, node: _LeafNode | _InternalNode) -> None:
        data = _serialize_leaf(node) if isinstance(node, _LeafNode) else _serialize_internal(node)
        if len(data) > self.page_size:
            raise BTreeError(
                f"serialized node of {len(data)} bytes exceeds page size {self.page_size}"
            )
        self.pool.put_page(page_id, data)

    def _write_meta(self) -> None:
        self.pool.put_page(
            self.meta_page_id,
            _META_HEADER.pack(_META_MAGIC, self.root_page_id, self.height),
        )
