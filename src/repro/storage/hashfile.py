"""Hash-organized table with overflow value chains.

This is the storage layout the paper uses for the *classic inverted file*
baseline ("the most efficient implementation scheme reported" [30]): each
tuple has an item as its key and the item's **whole inverted list** as its
value, and the relation is hash-organized on the key.  Berkeley DB "always
retrieves the whole tuple", so fetching an item's list costs one bucket-page
access plus every data page the list occupies — which is exactly what makes
long lists expensive and what the OIF avoids.

Layout
------
* a fixed directory of ``num_buckets`` bucket pages, allocated contiguously at
  creation;
* bucket pages store small entries ``(key, first_data_page, page_count,
  value_length)`` and chain to overflow bucket pages when a bucket fills up;
* values are stored on dedicated data pages allocated contiguously per value,
  so scanning one value is sequential I/O (the paper's assumption that each
  inverted list is stored contiguously on disk).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.errors import HashFileError, KeyNotFoundError
from repro.storage.buffer_pool import BufferPool
from repro.storage.stats import ReadContext

_BUCKET_HEADER = struct.Struct("<HI")  # entry count, next overflow bucket page
# key length, first data page, page count, value length, offset in first page
_ENTRY_HEADER = struct.Struct("<HIIIH")
_NO_PAGE = 0xFFFFFFFF


@dataclass
class _Entry:
    key: bytes
    first_page: int
    page_count: int
    value_length: int
    offset: int = 0

    def byte_size(self) -> int:
        return _ENTRY_HEADER.size + len(self.key)


def _hash_key(key: bytes) -> int:
    """Deterministic 32-bit hash (crc32), stable across interpreter runs."""
    return zlib.crc32(key) & 0xFFFFFFFF


class HashFile:
    """A disk-resident hash table mapping byte keys to (possibly large) values."""

    def __init__(self, pool: BufferPool, num_buckets: int = 64) -> None:
        if num_buckets <= 0:
            raise HashFileError(f"number of buckets must be positive, got {num_buckets}")
        self.pool = pool
        self.page_size = pool.page_file.page_size
        self.num_buckets = num_buckets
        self._bucket_pages = [pool.allocate_page() for _ in range(num_buckets)]
        for page_id in self._bucket_pages:
            self._write_bucket(page_id, [], _NO_PAGE)
        self._data_payload = self.page_size
        # Small values are packed together onto shared data pages so that a
        # relation with many short lists does not waste a page per list.
        self._pack_page: int | None = None
        self._pack_used = 0

    # -- public API ----------------------------------------------------------------

    def put(self, key: bytes, value: bytes, replace: bool = False) -> None:
        """Store ``value`` under ``key``.

        The value is written to a freshly allocated, contiguous run of data
        pages.  With ``replace=False`` storing an existing key raises
        :class:`HashFileError`; with ``replace=True`` the directory entry is
        repointed to the new pages (the old pages are not reclaimed — the
        paper's inverted file is likewise rebuilt in batch rather than updated
        in place).
        """
        if len(key) > 0xFFFF:
            raise HashFileError("keys are limited to 65535 bytes")
        existing = self._find_entry(key)
        if existing is not None and not replace:
            raise HashFileError(f"key {key!r} already present")

        entry = self._store_value(key, value)
        if existing is not None:
            self._replace_entry(key, entry)
        else:
            self._append_entry(entry)

    def get(self, key: bytes, ctx: "ReadContext | None" = None) -> bytes:
        """Fetch the whole value stored under ``key``, charging reads to ``ctx``.

        Models the Berkeley DB behaviour of always retrieving the full tuple:
        every data page of the value is read through the buffer pool.
        Raises :class:`KeyNotFoundError` when the key is absent.
        """
        entry = self._find_entry(key, ctx)
        if entry is None:
            raise KeyNotFoundError(f"key {key!r} not found")
        return self._read_value(entry, ctx)

    def contains(self, key: bytes, ctx: "ReadContext | None" = None) -> bool:
        """Return whether ``key`` is present (touches only bucket pages)."""
        return self._find_entry(key, ctx) is not None

    def value_page_count(self, key: bytes) -> int:
        """Number of data pages occupied by the value of ``key``."""
        entry = self._find_entry(key)
        if entry is None:
            raise KeyNotFoundError(f"key {key!r} not found")
        return entry.page_count

    def keys(self) -> Iterator[bytes]:
        """Iterate all keys (bucket by bucket, order unspecified)."""
        for bucket_page in self._bucket_pages:
            page_id = bucket_page
            while page_id != _NO_PAGE:
                entries, next_page = self._read_bucket(page_id)
                for entry in entries:
                    yield entry.key
                page_id = next_page

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- bucket management ---------------------------------------------------------

    def _bucket_for(self, key: bytes) -> int:
        return self._bucket_pages[_hash_key(key) % self.num_buckets]

    def _find_entry(
        self, key: bytes, ctx: "ReadContext | None" = None
    ) -> _Entry | None:
        page_id = self._bucket_for(key)
        while page_id != _NO_PAGE:
            entries, next_page = self._read_bucket(page_id, ctx)
            for entry in entries:
                if entry.key == key:
                    return entry
            page_id = next_page
        return None

    def _append_entry(self, entry: _Entry) -> None:
        page_id = self._bucket_for(entry.key)
        while True:
            entries, next_page = self._read_bucket(page_id)
            used = _BUCKET_HEADER.size + sum(e.byte_size() for e in entries)
            if used + entry.byte_size() <= self.page_size:
                entries.append(entry)
                self._write_bucket(page_id, entries, next_page)
                return
            if next_page == _NO_PAGE:
                overflow = self.pool.allocate_page()
                self._write_bucket(overflow, [entry], _NO_PAGE)
                self._write_bucket(page_id, entries, overflow)
                return
            page_id = next_page

    def _replace_entry(self, key: bytes, new_entry: _Entry) -> None:
        page_id = self._bucket_for(key)
        while page_id != _NO_PAGE:
            entries, next_page = self._read_bucket(page_id)
            for index, entry in enumerate(entries):
                if entry.key == key:
                    entries[index] = new_entry
                    self._write_bucket(page_id, entries, next_page)
                    return
            page_id = next_page
        raise HashFileError(f"entry for key {key!r} vanished during replace")

    def _read_bucket(
        self, page_id: int, ctx: "ReadContext | None" = None
    ) -> tuple[list[_Entry], int]:
        data = bytes(self.pool.get_page(page_id, ctx))
        count, next_page = _BUCKET_HEADER.unpack_from(data, 0)
        offset = _BUCKET_HEADER.size
        entries: list[_Entry] = []
        for _ in range(count):
            key_len, first_page, page_count, value_length, value_offset = (
                _ENTRY_HEADER.unpack_from(data, offset)
            )
            offset += _ENTRY_HEADER.size
            key = data[offset : offset + key_len]
            offset += key_len
            entries.append(_Entry(key, first_page, page_count, value_length, value_offset))
        return entries, next_page

    def _write_bucket(self, page_id: int, entries: list[_Entry], next_page: int) -> None:
        out = bytearray(_BUCKET_HEADER.pack(len(entries), next_page))
        for entry in entries:
            out += _ENTRY_HEADER.pack(
                len(entry.key),
                entry.first_page,
                entry.page_count,
                entry.value_length,
                entry.offset,
            )
            out += entry.key
        if len(out) > self.page_size:
            raise HashFileError("bucket page overflowed; this indicates a split bug")
        self.pool.put_page(page_id, bytes(out))

    # -- value pages ---------------------------------------------------------------

    def _store_value(self, key: bytes, value: bytes) -> _Entry:
        """Write ``value`` to data pages and return the directory entry for it."""
        if len(value) <= self._data_payload:
            return self._store_packed(key, value)
        page_count = (len(value) + self._data_payload - 1) // self._data_payload
        first_page = None
        for index in range(page_count):
            page_id = self.pool.allocate_page()
            if first_page is None:
                first_page = page_id
            chunk = value[index * self._data_payload : (index + 1) * self._data_payload]
            self.pool.put_page(page_id, chunk)
        assert first_page is not None
        return _Entry(key, first_page, page_count, len(value), offset=0)

    def _store_packed(self, key: bytes, value: bytes) -> _Entry:
        """Append a small value to the current shared data page (or open a new one)."""
        if self._pack_page is None or self._pack_used + len(value) > self._data_payload:
            self._pack_page = self.pool.allocate_page()
            self._pack_used = 0
        page = self.pool.get_page(self._pack_page)
        offset = self._pack_used
        page[offset : offset + len(value)] = value
        self.pool.mark_dirty(self._pack_page)
        self._pack_used += len(value)
        return _Entry(key, self._pack_page, 1, len(value), offset=offset)

    def _read_value(self, entry: _Entry, ctx: "ReadContext | None" = None) -> bytes:
        if entry.page_count == 1:
            data = self.pool.get_page(entry.first_page, ctx)
            return bytes(data[entry.offset : entry.offset + entry.value_length])
        out = bytearray()
        for index in range(entry.page_count):
            out += self.pool.get_page(entry.first_page + index, ctx)
        return bytes(out[: entry.value_length])
