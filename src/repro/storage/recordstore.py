"""Sequential record store: the "data file" that holds the actual set-values.

The inverted indexes only return record ids; whenever an access method needs
to *verify* a candidate against the actual set-value (the signature-file
baseline does this for every candidate, and applications often fetch the
matching records afterwards), it reads the record from this store.

Records are packed sequentially into pages in id order — mirroring the paper's
observation that the reordered records can simply be placed sequentially on
disk so that ids double as physical addresses.  A small in-memory directory
maps record ids to the page that holds them, so fetching one record costs one
page access (plus buffer-pool hits for neighbours).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.compression import vbyte
from repro.errors import DatasetError, KeyNotFoundError
from repro.storage.buffer_pool import BufferPool
from repro.storage.stats import ReadContext


class RecordStore:
    """Append-only, page-packed storage of ``(record_id, item ranks)`` rows."""

    def __init__(self, pool: BufferPool) -> None:
        self.pool = pool
        self.page_size = pool.page_file.page_size
        self._directory: dict[int, int] = {}
        self._current_page: int | None = None
        self._current_used = 0
        self._count = 0

    def append(self, record_id: int, ranks: Sequence[int]) -> None:
        """Store one record; ids may arrive in any order but must be unique."""
        if record_id in self._directory:
            raise DatasetError(f"record {record_id} already stored")
        payload = bytearray()
        vbyte.encode_uint(record_id, payload)
        vbyte.encode_uint(len(ranks), payload)
        for rank in ranks:
            vbyte.encode_uint(rank, payload)
        if len(payload) > self.page_size:
            raise DatasetError(
                f"record {record_id} with {len(ranks)} items does not fit in a page"
            )
        if self._current_page is None or self._current_used + len(payload) > self.page_size:
            self._current_page = self.pool.allocate_page()
            self._current_used = 0
        page = self.pool.get_page(self._current_page)
        page[self._current_used : self._current_used + len(payload)] = payload
        self.pool.mark_dirty(self._current_page)
        self._directory[record_id] = self._current_page
        self._current_used += len(payload)
        self._count += 1

    def build(self, rows: Iterable[tuple[int, Sequence[int]]]) -> None:
        """Bulk-append many records."""
        for record_id, ranks in rows:
            self.append(record_id, ranks)

    def fetch(self, record_id: int, ctx: "ReadContext | None" = None) -> list[int]:
        """Return the item ranks of ``record_id`` (one page access on a cache miss)."""
        page_id = self._directory.get(record_id)
        if page_id is None:
            raise KeyNotFoundError(f"record {record_id} is not in the store")
        data = bytes(self.pool.get_page(page_id, ctx))
        offset = 0
        while offset < len(data):
            stored_id, offset = vbyte.decode_uint(data, offset)
            count, offset = vbyte.decode_uint(data, offset)
            ranks, offset = vbyte.decode_sequence_with_offset(data, count, offset)
            if stored_id == record_id:
                return ranks
            if stored_id == 0 and count == 0:
                break
        raise KeyNotFoundError(f"record {record_id} missing from its directory page")

    def __len__(self) -> int:
        return self._count

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._directory
