"""Byte-budgeted LRU cache of *decoded* posting blocks.

Profiling the query hot path shows the dominant cost is not the simulated
I/O but the v-byte decode of every posting block a query touches — a pure
CPU cost that repeats on every traversal of the same block.  The
:class:`DecodedBlockCache` sits **above** the buffer pool and keeps the
decoded form of recently decoded blocks — columnar
(:class:`~repro.compression.postings.PostingColumns`) or, for dense-tagged
items, a packed bitmap (:class:`~repro.core.postings.DensePostings`) — keyed
by their physical location ``(page_id, offset)``.  Entries are charged their
true footprint via the entry's ``nbytes`` (both parallel columns / the
packed words plus the lengths column, container overhead included), so the
byte budget is honest across representations.

Accounting contract
-------------------
The cache removes decode CPU, never simulated I/O: a hit still charges the
block's page access to the traversal's
:class:`~repro.storage.stats.ReadContext` exactly as a miss would, so page
counts — the paper's primary metric — are identical with and without the
cache.  Every lookup is recorded as a ``decoded_hit`` or ``decoded_miss``
in the context *and* in the owning pool's
:class:`~repro.storage.stats.IOStatistics` totals, under this cache's lock,
so the per-context decoded counters sum exactly to the totals under any
interleaving (the same invariant the read counters satisfy).

Invalidation
------------
Entries are only valid for the physical layout they were decoded from: the
owning index invalidates the whole cache on every rebuild (``build`` /
flush-merge / rebuild-swap all construct fresh block pages) and on
``drop_cache`` (experiment runs expect a truly cold start, CPU included).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from repro.errors import BufferPoolError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compression.postings import PostingColumns
    from repro.storage.stats import IOStatistics, ReadContext

#: Default byte budget: generous for laptop-scale experiments, small next to
#: any real dataset.  Entries are charged their full decoded footprint.
DEFAULT_DECODED_CACHE_BYTES = 8 << 20


class DecodedBlockCache:
    """Thread-safe LRU over decoded posting blocks with a byte budget.

    Parameters
    ----------
    budget_bytes:
        Maximum total payload bytes kept; least recently used blocks are
        evicted once an insert exceeds it.  An entry larger than the whole
        budget is simply not cached.
    stats:
        The owning environment's :class:`IOStatistics`; every lookup is
        mirrored into its ``decoded_hits`` / ``decoded_misses`` totals.
    """

    def __init__(self, budget_bytes: int, stats: "IOStatistics | None" = None) -> None:
        if budget_bytes <= 0:
            raise BufferPoolError(
                f"decoded-block cache budget must be positive, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._stats = stats
        self._entries: "OrderedDict[Hashable, tuple[PostingColumns, int]]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(
        self, key: Hashable, ctx: "ReadContext | None" = None
    ) -> "PostingColumns | None":
        """Look up one decoded block; records the hit/miss to ``ctx`` and totals."""
        with self._lock:
            entry = self._entries.get(key)
            hit = entry is not None
            if hit:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            if self._stats is not None:
                self._stats.record_decoded(hit, ctx)
            elif ctx is not None:
                ctx.record_decoded(hit)
            return entry[0] if hit else None

    def put(self, key: Hashable, columns: "PostingColumns") -> None:
        """Insert a freshly decoded block, evicting LRU entries over budget.

        Not counted as a lookup: the miss that preceded this insert already
        was, so ``hits + misses`` equals the number of :meth:`get` calls.
        """
        size = columns.nbytes
        if size > self.budget_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (columns, size)
            self._bytes += size
            while self._bytes > self.budget_bytes:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (rebuild, flush-merge, swap, or cache drop)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.invalidations += 1

    @property
    def resident_blocks(self) -> int:
        """Number of decoded blocks currently cached."""
        with self._lock:
            return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        """Total payload bytes currently cached."""
        with self._lock:
            return self._bytes

    def counters(self) -> dict:
        """JSON-friendly counter snapshot (``/stats``, tests, debugging)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "resident_blocks": len(self._entries),
                "resident_bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
            }
