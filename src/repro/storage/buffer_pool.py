"""LRU buffer pool with cache-miss accounting, safe for concurrent readers.

The buffer pool sits between the access methods (B+-tree, hash file) and the
page file.  It keeps at most ``capacity`` pages in memory, evicts the least
recently used page when full, and reports every miss to :class:`IOStatistics`
— those misses are exactly the "disk page accesses" plotted in the paper's
figures.

The paper's experiments use the minimum Berkeley DB cache (32 KB), i.e. a
handful of pages, precisely so that the measured cache misses reflect how the
indexes would behave when the database is much larger than the available
memory.  The experiment runner reproduces that setting by default.

Concurrency model
-----------------
Any number of threads may call :meth:`get_page` concurrently: one lock guards
the frame map, the LRU order and the shared I/O counters, so lookups,
installs and evictions never corrupt each other.  Each reader passes its own
:class:`~repro.storage.stats.ReadContext` and is charged exactly the reads it
caused, with the context's counts also summed into the pool-wide totals.
Mutating operations (``allocate_page`` / ``put_page`` / ``mark_dirty`` /
``flush`` / ``clear``) take the same lock but are expected to run while the
owning index holds its *exclusive* writer lock — concurrent readers of a
structure that is being rewritten see torn logical state no page lock can
repair.  A frame evicted mid-read stays alive for the reader that already
holds a reference to its bytearray; readers never mutate frame payloads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro import deadline as _deadline
from repro.errors import BufferPoolError
from repro.obs import trace
from repro.storage.pager import PageFile
from repro.storage.stats import IOStatistics, ReadContext


@dataclass
class _Frame:
    """A cached page: its payload and whether it must be written back."""

    data: bytearray
    dirty: bool = False


class BufferPool:
    """Write-back LRU cache of fixed-size pages.

    Parameters
    ----------
    page_file:
        Backing storage.
    capacity:
        Maximum number of pages kept in memory.  The paper's "32 KB cache"
        corresponds to ``capacity = 32 * 1024 // page_size``.
    stats:
        Shared :class:`IOStatistics` instance; a fresh one is created when
        omitted.  All mutation of it happens under this pool's lock.
    """

    def __init__(
        self,
        page_file: PageFile,
        capacity: int = 8,
        stats: IOStatistics | None = None,
    ) -> None:
        if capacity <= 0:
            raise BufferPoolError(f"buffer pool capacity must be positive, got {capacity}")
        self.page_file = page_file
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStatistics()
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self._lock = threading.RLock()

    # -- page-level API ------------------------------------------------------------

    def allocate_page(self) -> int:
        """Allocate a fresh page in the backing file and cache it as dirty."""
        with self._lock:
            page_id = self.page_file.allocate()
            frame = _Frame(data=bytearray(self.page_file.page_size), dirty=True)
            self._install(page_id, frame)
            return page_id

    def get_page(self, page_id: int, ctx: "ReadContext | None" = None) -> bytearray:
        """Return the (mutable) payload of ``page_id``, reading it on a miss.

        ``ctx`` is the read context this lookup is charged to; without one
        the read lands only in the pool-wide totals.  The returned bytearray
        is the cached frame itself: callers that mutate it must also call
        :meth:`mark_dirty` so the change is flushed.
        """
        # Page-access boundary: an expired query stops here, *before* the
        # access is charged, so its ReadContext and the pool totals hold
        # exactly the reads it performed — never a half-charged access.
        _deadline.check()
        token = trace.stage_begin()
        try:
            with self._lock:
                frame = self._frames.get(page_id)
                if frame is not None:
                    self.stats.record_read(page_id, hit=True, ctx=ctx)
                    self._frames.move_to_end(page_id)
                    return frame.data
                self.stats.record_read(page_id, hit=False, ctx=ctx)
                data = self.page_file.read(page_id)
                frame = _Frame(data=data, dirty=False)
                self._install(page_id, frame)
                return frame.data
        finally:
            trace.stage_end("buffer_pool", token)

    def put_page(self, page_id: int, data: bytes) -> None:
        """Replace the payload of ``page_id`` and mark it dirty."""
        if len(data) > self.page_file.page_size:
            raise BufferPoolError(
                f"payload of {len(data)} bytes exceeds page size "
                f"{self.page_file.page_size}"
            )
        payload = bytearray(data)
        payload.extend(b"\x00" * (self.page_file.page_size - len(payload)))
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                frame = _Frame(data=payload, dirty=True)
                self._install(page_id, frame)
            else:
                frame.data = payload
                frame.dirty = True
                self._frames.move_to_end(page_id)

    def mark_dirty(self, page_id: int) -> None:
        """Flag an in-cache page as modified so eviction writes it back."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                raise BufferPoolError(f"page {page_id} is not resident in the buffer pool")
            frame.dirty = True

    def flush(self) -> None:
        """Write back every dirty frame without evicting anything."""
        with self._lock:
            for page_id, frame in self._frames.items():
                if frame.dirty:
                    self.page_file.write(page_id, bytes(frame.data))
                    self.stats.record_physical_write()
                    frame.dirty = False

    def clear(self) -> None:
        """Flush and drop every cached frame (used between experiment phases)."""
        with self._lock:
            self.flush()
            self._frames.clear()

    def absorb_snapshot(self, snapshot) -> None:
        """Fold a worker process's I/O snapshot into this pool's totals.

        The worker evaluated against a verbatim image of this pool's pages,
        so its reads belong in these totals for ``sum(contexts) == totals``
        to keep holding.  Taken under the frame lock, like every other
        mutation of :attr:`stats`.
        """
        with self._lock:
            self.stats.absorb_snapshot(snapshot)

    @property
    def resident_pages(self) -> int:
        """Number of pages currently cached."""
        with self._lock:
            return len(self._frames)

    # -- internals -----------------------------------------------------------------

    def _install(self, page_id: int, frame: _Frame) -> None:
        # Caller holds self._lock.
        self._frames[page_id] = frame
        self._frames.move_to_end(page_id)
        while len(self._frames) > self.capacity:
            victim_id, victim = self._frames.popitem(last=False)
            if victim.dirty:
                self.page_file.write(victim_id, bytes(victim.data))
                self.stats.record_physical_write()
