"""Concurrency primitives shared by the updates and service layers.

The stdlib has no reader-writer lock; this module provides a small, reentrant
one with writer preference.  It is the synchronization backbone of the
concurrent read path: any number of query threads hold the read side of an
index handle at once (the storage engine below them is thread-safe for
readers), while inserts, delta flushes and rebuild swaps take the write side
and run exclusively.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """Reentrant many-readers / one-writer lock with writer preference.

    Semantics:

    * any number of threads may hold the read side simultaneously;
    * the write side is exclusive against both readers and other writers;
    * both sides are reentrant per thread, and a thread holding the write
      side may additionally take the read side (the nested read stays
      exclusive);
    * a thread holding only the read side must not request the write side —
      lock upgrades deadlock by construction (two upgrading readers wait on
      each other forever), so the attempt raises ``RuntimeError`` instead;
    * new readers queue behind waiting writers (writer preference), so a
      steady stream of queries cannot starve an insert; reentrant re-acquires
      are exempt, or a reader could deadlock against a waiting writer.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers: dict[int, int] = {}  # thread ident -> reentrant depth
        self._writer: "int | None" = None
        self._write_depth = 0
        self._writer_nested_reads = 0
        self._waiting_writers = 0

    # -- read side -------------------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_nested_reads += 1
                return
            if me in self._readers:
                self._readers[me] += 1
                return
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                if self._writer_nested_reads <= 0:
                    raise RuntimeError("release_read() without a matching acquire_read()")
                self._writer_nested_reads -= 1
                return
            depth = self._readers.get(me, 0)
            if depth <= 0:
                raise RuntimeError("release_read() without a matching acquire_read()")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    # -- write side ------------------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock; "
                    "release the read side first"
                )
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
                self._writer = me
                self._write_depth = 1
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me or self._write_depth <= 0:
                raise RuntimeError("release_write() without a matching acquire_write()")
            self._write_depth -= 1
            if self._write_depth == 0:
                if self._writer_nested_reads:
                    raise RuntimeError(
                        "write lock released while nested read acquisitions are open"
                    )
                self._writer = None
                self._cond.notify_all()

    # -- context managers ------------------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked():`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked():`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests, assertions) ---------------------------------------------

    @property
    def active_readers(self) -> int:
        """Number of distinct threads currently holding the read side."""
        with self._cond:
            return len(self._readers)

    @property
    def write_held(self) -> bool:
        """Whether some thread currently holds the write side."""
        with self._cond:
            return self._writer is not None
