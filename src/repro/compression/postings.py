"""Posting representation and posting-list codecs.

Both indexes in the paper store *postings* of the form ``(record_id, length)``:
the id of a record that contains the item, plus the cardinality of that
record's set-value.  The length is what lets equality and superset queries
prune candidates without fetching the records themselves (Section 2).

Wire format
-----------
A posting list (or OIF block) is a sequence of ``(id, length)`` pairs, both
v-byte encoded, with ids stored as d-gaps when compression is enabled::

    varint id_or_gap, varint length, varint id_or_gap, varint length, ...

There is deliberately **no leading count**: the storage layer already delimits
values exactly, and keeping the payload a pure concatenation of postings means
a batch update can *append* freshly encoded postings to an existing list
without decoding it (see :meth:`PostingListCodec.encode_continuation`) — the
cheap in-place append that makes the classic inverted file's updates faster
than the OIF's rebuild, as the paper reports.

Two codecs are provided:

* :class:`PostingListCodec` — encodes a full posting list (used by the classic
  inverted file, which stores each item's entire list as one value).
* :class:`PostingBlockCodec` — encodes one OIF block of postings.  Blocks are
  independent units, so each block restarts the d-gap sequence with an absolute
  first id (this is the small space overhead the paper mentions for the OIF).

Columnar hot path
-----------------
The scalar :meth:`PostingListCodec.decode` pays a Python-level
``decode_uint`` call plus a :class:`Posting` allocation per posting — the
dominant CPU cost of query evaluation.  :func:`decode_columns` decodes a
whole buffer into a :class:`PostingColumns` — two parallel ``array('Q')``
columns (ids via cumulative d-gap prefix sum, lengths) — in a single tight
loop, with a pure-C fast path when every varint fits in one byte (the common
case for d-gapped lists).  :func:`encode_columns` is the matching batch
encoder.  ``Posting`` stays as a lazy per-element view for compatibility:
iterating or indexing a :class:`PostingColumns` materializes postings on
demand.

numpy backend
-------------
numpy is a first-class, selectable backend for the whole posting layer —
the vectorized decoder here, the bitmap kernels in
:mod:`repro.core.intersect` and the packed-word conversions in
:mod:`repro.core.postings` all route through :func:`numpy_module`.  The
backend is picked by :func:`set_backend` (or the ``REPRO_POSTINGS_BACKEND``
environment variable) from three modes:

* ``auto`` (default) — numpy when importable, with a size gate on the
  decoder (:data:`_VECTOR_DECODE_BYTES`) below which the fixed vector-op
  dispatch overhead loses to the tight Python loop;
* ``numpy`` — numpy wherever applicable, without the decoder's size gate
  (useful for measuring the crossover);
* ``python`` — pure-Python everywhere, exactly what runs when numpy is not
  installed.  All results are bit-identical across the three modes; the CI
  no-numpy job keeps the pure paths green.
"""

from __future__ import annotations

import os
import sys
from array import array
from itertools import accumulate, chain
from typing import Iterable, Iterator, NamedTuple, Sequence

from repro.compression import vbyte
from repro.errors import CompressionError

try:  # the pure-Python paths stand alone when numpy is not installed
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

_CONTINUATION_BIT = 0x80
_PAYLOAD_MASK = 0x7F

#: Buffers at least this large take the numpy decode path in ``auto`` mode:
#: below it the ~15 fixed vector-op dispatches cost more than the loop saves
#: (OIF blocks sit well under this; whole IF lists sit well over it).
_VECTOR_DECODE_BYTES = 1536

#: The three posting-layer backends (see the module docstring).
_BACKENDS = ("auto", "numpy", "python")
_backend = os.environ.get("REPRO_POSTINGS_BACKEND", "auto").lower()
if _backend not in _BACKENDS:  # a typo'd env var must not silently go pure
    raise CompressionError(
        f"REPRO_POSTINGS_BACKEND={_backend!r} is not one of {_BACKENDS}"
    )


def set_backend(mode: str) -> None:
    """Select the posting-layer backend: ``auto``, ``numpy`` or ``python``."""
    global _backend
    if mode not in _BACKENDS:
        raise CompressionError(f"backend {mode!r} is not one of {_BACKENDS}")
    _backend = mode


def get_backend() -> str:
    """The posting-layer backend currently in effect."""
    return _backend


def numpy_module():
    """The numpy module when the backend allows it, else ``None``.

    Every vectorized path in the posting layer gates on this, so
    ``set_backend("python")`` exercises exactly the code that runs when
    numpy is not installed.
    """
    return None if _backend == "python" else _np


class Posting(NamedTuple):
    """One inverted-list entry: a record id and the record's set cardinality."""

    record_id: int
    length: int


def postings_from_pairs(pairs: Iterable[tuple[int, int]]) -> list[Posting]:
    """Build a list of :class:`Posting` from ``(record_id, length)`` pairs."""
    return [Posting(record_id, length) for record_id, length in pairs]


class PostingColumns:
    """One decoded posting run as two parallel columns: ``ids`` and ``lengths``.

    ``ids`` is strictly increasing (the decoder resolves d-gaps into absolute
    ids), so the query algorithms intersect and filter directly on it with
    merge joins and :mod:`bisect` — no per-posting objects, no hashing.  The
    columns are ``array('Q')`` normally; values beyond 64 bits fall back to
    plain lists (same interface, no silent truncation).

    The class is also a lazy :class:`Posting` view: ``len``, iteration and
    indexing behave like the list the scalar decoder used to return.
    """

    __slots__ = ("ids", "lengths")

    def __init__(self, ids: Sequence[int], lengths: Sequence[int]) -> None:
        self.ids = ids
        self.lengths = lengths

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self) -> Iterator[Posting]:
        for record_id, length in zip(self.ids, self.lengths):
            yield Posting(record_id, length)

    def __getitem__(self, index: int) -> Posting:
        return Posting(self.ids[index], self.lengths[index])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PostingColumns):
            return list(self.ids) == list(other.ids) and list(self.lengths) == list(
                other.lengths
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"PostingColumns({len(self)} postings)"

    @property
    def nbytes(self) -> int:
        """True cached footprint (the decoded-block cache budget's unit).

        Charges both parallel columns *including* their container overhead
        (``sys.getsizeof`` covers the ``array`` header plus its buffer) and
        the object header itself — not just the id payload — so the
        ``decoded_cache_bytes`` budget reflects what the cache actually
        holds.  Plain-list fallback columns additionally charge the boxed
        ints the list keeps alive.
        """
        total = sys.getsizeof(self)
        for column in (self.ids, self.lengths):
            total += sys.getsizeof(column)
            if not isinstance(column, array):
                total += 28 * len(column)  # boxed ints held by a plain list
        return total

    def postings(self) -> list[Posting]:
        """Materialize the classic ``list[Posting]`` form."""
        return [Posting(record_id, length) for record_id, length in zip(self.ids, self.lengths)]

    @classmethod
    def from_postings(cls, postings: Sequence[Posting]) -> "PostingColumns":
        """Build columns from the classic posting-list form."""
        return _as_columns(
            [posting.record_id for posting in postings],
            [posting.length for posting in postings],
        )


def _as_columns(ids: list[int], lengths: list[int]) -> PostingColumns:
    """Pack id/length lists into ``array('Q')`` columns (lists past 64 bits)."""
    try:
        return PostingColumns(array("Q", ids), array("Q", lengths))
    except OverflowError:
        return PostingColumns(ids, lengths)


def _decode_columns_vectorized(data: bytes, compress: bool) -> "PostingColumns | None":
    """Vectorized decode of one posting buffer (numpy, large buffers only).

    Horner-style reassembly: every terminator byte marks one varint; each
    extra width level folds the preceding continuation bytes in with one
    masked shift-or.  Returns ``None`` when a varint is too wide for exact
    64-bit vector math (the caller falls back to the exact Python loop).
    """
    buf = _np.frombuffer(data, _np.uint8)
    if data[-1] >= _CONTINUATION_BIT:
        raise CompressionError(
            "truncated v-byte stream: posting buffer ends inside an integer"
        )
    term_pos = _np.flatnonzero(buf < _CONTINUATION_BIT)
    if len(term_pos) % 2:
        raise CompressionError("posting buffer holds an id without a length")
    widths = _np.diff(term_pos, prepend=-1)
    wmax = int(widths.max())
    if wmax > 8:
        return None  # > 56-bit values: stay exact via the Python loop
    values = buf[term_pos].astype(_np.int64)
    for level in range(1, wmax):
        mask = widths > level
        values[mask] = (values[mask] << 7) | (buf[term_pos[mask] - level] & _PAYLOAD_MASK)
    raw_ids = values[0::2]
    ids = _np.cumsum(raw_ids) if compress else raw_ids
    id_column = array("Q")
    id_column.frombytes(ids.astype(_np.uint64).tobytes())
    length_column = array("Q")
    length_column.frombytes(values[1::2].astype(_np.uint64).tobytes())
    return PostingColumns(id_column, length_column)


def decode_columns(data: bytes, *, compress: bool = True, offset: int = 0) -> PostingColumns:
    """Batch-decode a whole posting buffer into :class:`PostingColumns`.

    Semantically identical to the scalar ``codec.decode`` (same wire format,
    same ids and lengths) but decoded in one pass:

    * **fast path** — when no byte carries the continuation flag, every
      varint is a single byte: even positions are id gaps, odd positions are
      lengths, and the columns are built entirely by C-level slicing and
      :func:`itertools.accumulate` prefix summing;
    * **vector path** — decodes with a handful of numpy vector ops when the
      backend allows it (:func:`numpy_module`): in ``auto`` mode only for
      buffers past :data:`_VECTOR_DECODE_BYTES` (whole inverted lists, not
      OIF blocks), in ``numpy`` mode for every buffer;
    * **general path** — a single Python loop over the bytes, toggling
      between the id and the length of each pair; no per-integer function
      calls, no intermediate :class:`Posting` objects.

    Raises :class:`CompressionError` on a truncated trailing integer or a
    dangling id without its length.
    """
    if offset:
        if offset < 0 or offset > len(data):
            raise CompressionError(
                f"posting decode offset {offset} outside buffer of {len(data)} bytes"
            )
        data = data[offset:]
    if not data:
        return PostingColumns(array("Q"), array("Q"))

    if numpy_module() is not None and (
        _backend == "numpy" or len(data) >= _VECTOR_DECODE_BYTES
    ):
        columns = _decode_columns_vectorized(data, compress)
        if columns is not None:
            return columns

    if max(data) < _CONTINUATION_BIT:
        # Every varint is one byte: even positions are id gaps, odd positions
        # are lengths, and both columns are built entirely in C.
        if len(data) % 2:
            raise CompressionError(
                "posting buffer holds an id without a length (odd varint count)"
            )
        raw_ids = data[0::2]
        lengths = array("Q", list(data[1::2]))
        if compress:
            return PostingColumns(array("Q", accumulate(raw_ids)), lengths)
        return PostingColumns(array("Q", list(raw_ids)), lengths)

    # Mixed widths: one tight loop over the bytes builds the flat value run,
    # then de-interleaving (slicing) and the d-gap prefix sum happen in C.
    # The loop mirrors vbyte.decode_batch, inlined to keep the hot path to a
    # single pass over the buffer.
    values: list[int] = []
    append = values.append
    value = 0
    shift = 0
    for byte in data:
        if byte >= _CONTINUATION_BIT:
            value |= (byte & _PAYLOAD_MASK) << shift
            shift += 7
        else:
            append(value | (byte << shift))
            value = 0
            shift = 0
    if shift:
        raise CompressionError(
            "truncated v-byte stream: posting buffer ends inside an integer"
        )
    if len(values) % 2:
        raise CompressionError("posting buffer holds an id without a length")
    gaps = values[0::2]
    lengths_list = values[1::2]
    if not compress:
        return _as_columns(gaps, lengths_list)
    try:
        return PostingColumns(array("Q", accumulate(gaps)), array("Q", lengths_list))
    except OverflowError:
        return PostingColumns(list(accumulate(gaps)), lengths_list)


def encode_columns(
    ids: Sequence[int],
    lengths: Sequence[int],
    *,
    compress: bool = True,
    previous_id: int = 0,
) -> bytes:
    """Batch-encode parallel id/length columns; byte-identical to the scalar
    ``codec.encode`` of the corresponding posting list.

    ``previous_id`` plays the role of ``encode_continuation``'s anchor: the
    first id is d-gapped against it (``0`` for a fresh list).  Validation
    mirrors the scalar encoder: ids strictly increasing (and greater than
    ``previous_id`` when continuing), lengths non-negative.
    """
    if len(ids) != len(lengths):
        raise CompressionError(
            f"column length mismatch: {len(ids)} ids vs {len(lengths)} lengths"
        )
    if not ids:
        return b""
    if previous_id < 0:
        raise CompressionError("previous_id must be non-negative")
    gaps: list[int] = []
    previous = previous_id
    first = True
    for record_id in ids:
        gap = record_id - previous
        if first:
            first = False
            if record_id < 0 or (previous_id and gap <= 0):
                raise CompressionError(
                    "postings must be sorted by strictly increasing record id; "
                    f"got {previous} then {record_id}"
                )
        elif gap <= 0:
            raise CompressionError(
                "postings must be sorted by strictly increasing record id; "
                f"got {previous} then {record_id}"
            )
        gaps.append(gap if compress else record_id)
        previous = record_id
    low = min(lengths)
    if low < 0:
        raise CompressionError(f"record length must be non-negative, got {low}")
    if max(gaps) < _CONTINUATION_BIT and max(lengths) < _CONTINUATION_BIT:
        # Every varint is one byte: interleave the columns entirely in C.
        return bytes(chain.from_iterable(zip(gaps, lengths)))
    out = bytearray()
    append = out.append
    for value in chain.from_iterable(zip(gaps, lengths)):
        while value >= _CONTINUATION_BIT:
            append((value & _PAYLOAD_MASK) | _CONTINUATION_BIT)
            value >>= 7
        append(value)
    return bytes(out)


def _validate(postings: Sequence[Posting], previous_id: int = -1) -> None:
    previous = previous_id
    for posting in postings:
        if posting.record_id <= previous:
            raise CompressionError(
                "postings must be sorted by strictly increasing record id; "
                f"got {previous} then {posting.record_id}"
            )
        if posting.length < 0:
            raise CompressionError(
                f"record length must be non-negative, got {posting.length}"
            )
        previous = posting.record_id


class PostingListCodec:
    """Codec for a complete inverted list (one item's postings).

    Parameters
    ----------
    compress:
        When ``True`` (default) the ids are stored as d-gaps; when ``False``
        they are stored as absolute values.  Both variants use v-byte for the
        integers themselves, mirroring the paper's byte-wise scheme.
    """

    def __init__(self, compress: bool = True) -> None:
        self.compress = compress

    def encode(self, postings: Sequence[Posting]) -> bytes:
        """Serialize ``postings`` (sorted by record id) into bytes."""
        _validate(postings)
        return self._encode_from(postings, previous_id=0)

    def encode_continuation(self, postings: Sequence[Posting], previous_last_id: int) -> bytes:
        """Serialize postings that will be appended after an existing list.

        ``previous_last_id`` is the last record id already stored in the list;
        with compression enabled the first new id is encoded as a gap from it,
        so the concatenation ``old_bytes + continuation_bytes`` decodes to the
        merged list without ever decoding ``old_bytes``.
        """
        if previous_last_id < 0:
            raise CompressionError("previous_last_id must be non-negative")
        _validate(postings, previous_id=previous_last_id)
        return self._encode_from(postings, previous_id=previous_last_id)

    def _encode_from(self, postings: Sequence[Posting], previous_id: int) -> bytes:
        out = bytearray()
        previous = previous_id if self.compress else 0
        for posting in postings:
            if self.compress:
                vbyte.encode_uint(posting.record_id - previous, out)
                previous = posting.record_id
            else:
                vbyte.encode_uint(posting.record_id, out)
            vbyte.encode_uint(posting.length, out)
        return bytes(out)

    def decode(self, data: bytes, offset: int = 0) -> list[Posting]:
        """Deserialize a posting list previously produced by :meth:`encode`.

        Decoding runs to the end of ``data``: values are exactly delimited by
        the storage layer, so no explicit count is needed.  This is the
        *scalar reference* decoder (one ``decode_uint`` call per integer);
        the hot paths use :meth:`decode_columns` instead, and the property
        suite asserts the two stay equivalent.
        """
        postings: list[Posting] = []
        position = offset
        end = len(data)
        current = 0
        while position < end:
            value, position = vbyte.decode_uint(data, position)
            length, position = vbyte.decode_uint(data, position)
            if self.compress:
                current += value
                postings.append(Posting(current, length))
            else:
                postings.append(Posting(value, length))
        return postings

    def decode_columns(self, data: bytes, offset: int = 0) -> PostingColumns:
        """Batch-decode a whole buffer into columnar form (the hot path)."""
        return decode_columns(data, compress=self.compress, offset=offset)

    def encode_columns_form(
        self, ids: Sequence[int], lengths: Sequence[int], previous_id: int = 0
    ) -> bytes:
        """Batch-encode parallel columns; byte-identical to :meth:`encode`."""
        return encode_columns(
            ids, lengths, compress=self.compress, previous_id=previous_id
        )

    def encoded_size(self, postings: Sequence[Posting]) -> int:
        """Return the byte size of :meth:`encode` without materialising it."""
        total = 0
        previous = 0
        for posting in postings:
            if self.compress:
                total += vbyte.encoded_size(posting.record_id - previous)
                previous = posting.record_id
            else:
                total += vbyte.encoded_size(posting.record_id)
            total += vbyte.encoded_size(posting.length)
        return total


class PostingBlockCodec(PostingListCodec):
    """Codec for one OIF block.

    Identical wire format to :class:`PostingListCodec`; the distinction exists
    because blocks are encoded independently (each restarts its d-gap chain),
    and because the OIF build path sizes blocks by their encoded size.
    """
