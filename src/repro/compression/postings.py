"""Posting representation and posting-list codecs.

Both indexes in the paper store *postings* of the form ``(record_id, length)``:
the id of a record that contains the item, plus the cardinality of that
record's set-value.  The length is what lets equality and superset queries
prune candidates without fetching the records themselves (Section 2).

Wire format
-----------
A posting list (or OIF block) is a sequence of ``(id, length)`` pairs, both
v-byte encoded, with ids stored as d-gaps when compression is enabled::

    varint id_or_gap, varint length, varint id_or_gap, varint length, ...

There is deliberately **no leading count**: the storage layer already delimits
values exactly, and keeping the payload a pure concatenation of postings means
a batch update can *append* freshly encoded postings to an existing list
without decoding it (see :meth:`PostingListCodec.encode_continuation`) — the
cheap in-place append that makes the classic inverted file's updates faster
than the OIF's rebuild, as the paper reports.

Two codecs are provided:

* :class:`PostingListCodec` — encodes a full posting list (used by the classic
  inverted file, which stores each item's entire list as one value).
* :class:`PostingBlockCodec` — encodes one OIF block of postings.  Blocks are
  independent units, so each block restarts the d-gap sequence with an absolute
  first id (this is the small space overhead the paper mentions for the OIF).
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Sequence

from repro.compression import vbyte
from repro.errors import CompressionError


class Posting(NamedTuple):
    """One inverted-list entry: a record id and the record's set cardinality."""

    record_id: int
    length: int


def postings_from_pairs(pairs: Iterable[tuple[int, int]]) -> list[Posting]:
    """Build a list of :class:`Posting` from ``(record_id, length)`` pairs."""
    return [Posting(record_id, length) for record_id, length in pairs]


def _validate(postings: Sequence[Posting], previous_id: int = -1) -> None:
    previous = previous_id
    for posting in postings:
        if posting.record_id <= previous:
            raise CompressionError(
                "postings must be sorted by strictly increasing record id; "
                f"got {previous} then {posting.record_id}"
            )
        if posting.length < 0:
            raise CompressionError(
                f"record length must be non-negative, got {posting.length}"
            )
        previous = posting.record_id


class PostingListCodec:
    """Codec for a complete inverted list (one item's postings).

    Parameters
    ----------
    compress:
        When ``True`` (default) the ids are stored as d-gaps; when ``False``
        they are stored as absolute values.  Both variants use v-byte for the
        integers themselves, mirroring the paper's byte-wise scheme.
    """

    def __init__(self, compress: bool = True) -> None:
        self.compress = compress

    def encode(self, postings: Sequence[Posting]) -> bytes:
        """Serialize ``postings`` (sorted by record id) into bytes."""
        _validate(postings)
        return self._encode_from(postings, previous_id=0)

    def encode_continuation(self, postings: Sequence[Posting], previous_last_id: int) -> bytes:
        """Serialize postings that will be appended after an existing list.

        ``previous_last_id`` is the last record id already stored in the list;
        with compression enabled the first new id is encoded as a gap from it,
        so the concatenation ``old_bytes + continuation_bytes`` decodes to the
        merged list without ever decoding ``old_bytes``.
        """
        if previous_last_id < 0:
            raise CompressionError("previous_last_id must be non-negative")
        _validate(postings, previous_id=previous_last_id)
        return self._encode_from(postings, previous_id=previous_last_id)

    def _encode_from(self, postings: Sequence[Posting], previous_id: int) -> bytes:
        out = bytearray()
        previous = previous_id if self.compress else 0
        for posting in postings:
            if self.compress:
                vbyte.encode_uint(posting.record_id - previous, out)
                previous = posting.record_id
            else:
                vbyte.encode_uint(posting.record_id, out)
            vbyte.encode_uint(posting.length, out)
        return bytes(out)

    def decode(self, data: bytes, offset: int = 0) -> list[Posting]:
        """Deserialize a posting list previously produced by :meth:`encode`.

        Decoding runs to the end of ``data``: values are exactly delimited by
        the storage layer, so no explicit count is needed.
        """
        postings: list[Posting] = []
        position = offset
        end = len(data)
        current = 0
        while position < end:
            value, position = vbyte.decode_uint(data, position)
            length, position = vbyte.decode_uint(data, position)
            if self.compress:
                current += value
                postings.append(Posting(current, length))
            else:
                postings.append(Posting(value, length))
        return postings

    def encoded_size(self, postings: Sequence[Posting]) -> int:
        """Return the byte size of :meth:`encode` without materialising it."""
        total = 0
        previous = 0
        for posting in postings:
            if self.compress:
                total += vbyte.encoded_size(posting.record_id - previous)
                previous = posting.record_id
            else:
                total += vbyte.encoded_size(posting.record_id)
            total += vbyte.encoded_size(posting.length)
        return total


class PostingBlockCodec(PostingListCodec):
    """Codec for one OIF block.

    Identical wire format to :class:`PostingListCodec`; the distinction exists
    because blocks are encoded independently (each restarts its d-gap chain),
    and because the OIF build path sizes blocks by their encoded size.
    """
