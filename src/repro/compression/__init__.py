"""Compression primitives used by the inverted-file indexes.

The subpackage contains the v-byte integer codec, the d-gap transform for
sorted id lists, and posting-list / posting-block codecs built on top of them
— in both the scalar (one :class:`Posting` per entry) and the columnar
(:class:`PostingColumns` parallel arrays) forms.  The columnar batch
decoders/encoders are the query hot path.
"""

from repro.compression.dgap import gaps_from_ids, ids_from_gaps
from repro.compression.postings import (
    Posting,
    PostingBlockCodec,
    PostingColumns,
    PostingListCodec,
    decode_columns,
    encode_columns,
    postings_from_pairs,
)
from repro.compression.vbyte import (
    decode_batch,
    decode_sequence,
    decode_uint,
    encode_sequence,
    encode_uint,
    encoded_size,
)

__all__ = [
    "Posting",
    "PostingBlockCodec",
    "PostingColumns",
    "PostingListCodec",
    "postings_from_pairs",
    "decode_columns",
    "encode_columns",
    "gaps_from_ids",
    "ids_from_gaps",
    "encode_uint",
    "decode_uint",
    "encode_sequence",
    "decode_batch",
    "decode_sequence",
    "encoded_size",
]
