"""Compression primitives used by the inverted-file indexes.

The subpackage contains the v-byte integer codec, the d-gap transform for
sorted id lists, and posting-list / posting-block codecs built on top of them.
"""

from repro.compression.dgap import gaps_from_ids, ids_from_gaps
from repro.compression.postings import (
    Posting,
    PostingBlockCodec,
    PostingListCodec,
    postings_from_pairs,
)
from repro.compression.vbyte import (
    decode_sequence,
    decode_uint,
    encode_sequence,
    encode_uint,
    encoded_size,
)

__all__ = [
    "Posting",
    "PostingBlockCodec",
    "PostingListCodec",
    "postings_from_pairs",
    "gaps_from_ids",
    "ids_from_gaps",
    "encode_uint",
    "decode_uint",
    "encode_sequence",
    "decode_sequence",
    "encoded_size",
]
