"""d-gap transform for sorted posting lists.

Inverted lists reference records in increasing id order.  Instead of storing
the absolute ids, both the OIF and the classic inverted file store *d-gaps*:
the difference between consecutive ids.  Gaps are small for dense lists, so
they compress much better under v-byte than raw ids (Section 3, "Compression").

The first element of a gap sequence is the absolute first id; every following
element is ``id[i] - id[i - 1]``.  Because record ids are unique and sorted,
all gaps after the first are strictly positive; a zero or negative gap is a
sign of corruption and is rejected on decode.
"""

from __future__ import annotations

from itertools import accumulate, islice
from typing import Sequence

from repro.errors import CompressionError


def gaps_from_ids(ids: Sequence[int]) -> list[int]:
    """Convert a strictly increasing id sequence to d-gaps.

    Raises :class:`CompressionError` if the input is not strictly increasing or
    contains negative ids.
    """
    gaps: list[int] = []
    previous: int | None = None
    for record_id in ids:
        if record_id < 0:
            raise CompressionError(f"record ids must be non-negative, got {record_id}")
        if previous is None:
            gaps.append(record_id)
        else:
            gap = record_id - previous
            if gap <= 0:
                raise CompressionError(
                    f"ids must be strictly increasing, got {previous} then {record_id}"
                )
            gaps.append(gap)
        previous = record_id
    return gaps


def ids_from_gaps(gaps: Sequence[int]) -> list[int]:
    """Convert a d-gap sequence back to absolute ids.

    Raises :class:`CompressionError` if a gap after the first is not positive.
    The validation scans and the prefix sum both run at C speed
    (:func:`min` / :func:`itertools.accumulate`), so batch decodes of long
    lists never pay a per-gap Python iteration.
    """
    if not gaps:
        return []
    if gaps[0] < 0:
        raise CompressionError(f"first id must be non-negative, got {gaps[0]}")
    if len(gaps) > 1:
        smallest_tail = min(islice(iter(gaps), 1, None))
        if smallest_tail <= 0:
            position = next(
                index for index, gap in enumerate(gaps) if index and gap <= 0
            )
            raise CompressionError(
                f"gaps after the first must be positive, got {gaps[position]} at {position}"
            )
    return list(accumulate(gaps))
