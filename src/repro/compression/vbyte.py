"""Variable-byte (v-byte) integer compression.

The paper stores posting ids and record lengths with a byte-wise variable
length encoding (Williams & Zobel, "Compressing Integers for Fast File
Access"), chosen for its low decompression CPU cost.  This module implements
the classic 7-bits-per-byte scheme:

* each byte carries 7 payload bits,
* the high bit is a *continuation* flag: ``1`` means "more bytes follow",
  ``0`` marks the final byte of the integer,
* bytes are emitted least-significant group first.

Only non-negative integers are representable, which is all the index needs
(record ids, d-gaps and set cardinalities are all >= 0).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import CompressionError

_CONTINUATION_BIT = 0x80
_PAYLOAD_MASK = 0x7F


def encoded_size(value: int) -> int:
    """Return the number of bytes :func:`encode_uint` will use for ``value``."""
    if value < 0:
        raise CompressionError(f"v-byte cannot encode negative value {value}")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode_uint(value: int, out: bytearray) -> None:
    """Append the v-byte encoding of ``value`` to ``out``.

    Raises :class:`CompressionError` if ``value`` is negative.
    """
    if value < 0:
        raise CompressionError(f"v-byte cannot encode negative value {value}")
    while True:
        low = value & _PAYLOAD_MASK
        value >>= 7
        if value:
            out.append(low | _CONTINUATION_BIT)
        else:
            out.append(low)
            return


def decode_uint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one integer from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.  Raises :class:`CompressionError` when
    the stream ends in the middle of an integer — including the buffer-edge
    case where the final byte still carries the continuation flag — or when
    ``offset`` does not point inside the buffer (a negative offset would
    otherwise wrap around and silently decode from the buffer's tail).
    """
    if offset < 0:
        raise CompressionError(f"v-byte decode offset must be non-negative, got {offset}")
    value = 0
    shift = 0
    pos = offset
    length = len(data)
    while True:
        if pos >= length:
            raise CompressionError(
                f"truncated v-byte stream at offset {pos} (started at {offset})"
            )
        byte = data[pos]
        pos += 1
        value |= (byte & _PAYLOAD_MASK) << shift
        if not byte & _CONTINUATION_BIT:
            return value, pos
        shift += 7


def encode_sequence(values: Iterable[int]) -> bytes:
    """Encode an iterable of non-negative integers into one byte string."""
    out = bytearray()
    for value in values:
        encode_uint(value, out)
    return bytes(out)


def decode_batch(data: bytes, offset: int = 0) -> list[int]:
    """Decode every integer in ``data[offset:]`` in one batch pass.

    This is the batch counterpart of :func:`decode_uint`: no per-integer
    function call, no per-integer bounds bookkeeping.  Two regimes:

    * when every byte of the buffer is a terminator (no continuation bits),
      each byte *is* one integer and the whole buffer converts in C;
    * otherwise a single tight loop walks the bytes, accumulating 7-bit
      groups — one loop step per byte instead of one call per integer.

    Raises :class:`CompressionError` on a truncated trailing integer or an
    out-of-range ``offset``.
    """
    if offset:
        if offset < 0 or offset > len(data):
            raise CompressionError(
                f"v-byte decode offset {offset} outside buffer of {len(data)} bytes"
            )
        data = data[offset:]
    if not data:
        return []
    if max(data) < _CONTINUATION_BIT:
        return list(data)
    values: list[int] = []
    append = values.append
    value = 0
    shift = 0
    for byte in data:
        if byte >= _CONTINUATION_BIT:
            value |= (byte & _PAYLOAD_MASK) << shift
            shift += 7
        else:
            append(value | (byte << shift))
            value = 0
            shift = 0
    if shift:
        raise CompressionError(
            "truncated v-byte stream: buffer ends inside an integer "
            "(final byte carries the continuation flag)"
        )
    return values


def decode_sequence(data: bytes, count: int | None = None, offset: int = 0) -> list[int]:
    """Decode integers from ``data`` starting at ``offset``.

    If ``count`` is given, exactly that many integers are decoded (an error is
    raised if the stream is too short).  Otherwise the whole remaining buffer
    is decoded — via the batch decoder, which is the fast path.
    """
    if count is None:
        return decode_batch(data, offset)
    values: list[int] = []
    pos = offset
    for _ in range(count):
        value, pos = decode_uint(data, pos)
        values.append(value)
    return values


def decode_sequence_with_offset(
    data: bytes, count: int, offset: int = 0
) -> tuple[list[int], int]:
    """Decode ``count`` integers and also return the offset past the last byte."""
    values: list[int] = []
    pos = offset
    for _ in range(count):
        value, pos = decode_uint(data, pos)
        values.append(value)
    return values, pos


def sequence_encoded_size(values: Sequence[int]) -> int:
    """Return the byte size :func:`encode_sequence` would produce for ``values``."""
    return sum(encoded_size(value) for value in values)
