"""Variable-byte (v-byte) integer compression.

The paper stores posting ids and record lengths with a byte-wise variable
length encoding (Williams & Zobel, "Compressing Integers for Fast File
Access"), chosen for its low decompression CPU cost.  This module implements
the classic 7-bits-per-byte scheme:

* each byte carries 7 payload bits,
* the high bit is a *continuation* flag: ``1`` means "more bytes follow",
  ``0`` marks the final byte of the integer,
* bytes are emitted least-significant group first.

Only non-negative integers are representable, which is all the index needs
(record ids, d-gaps and set cardinalities are all >= 0).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import CompressionError

_CONTINUATION_BIT = 0x80
_PAYLOAD_MASK = 0x7F


def encoded_size(value: int) -> int:
    """Return the number of bytes :func:`encode_uint` will use for ``value``."""
    if value < 0:
        raise CompressionError(f"v-byte cannot encode negative value {value}")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode_uint(value: int, out: bytearray) -> None:
    """Append the v-byte encoding of ``value`` to ``out``.

    Raises :class:`CompressionError` if ``value`` is negative.
    """
    if value < 0:
        raise CompressionError(f"v-byte cannot encode negative value {value}")
    while True:
        low = value & _PAYLOAD_MASK
        value >>= 7
        if value:
            out.append(low | _CONTINUATION_BIT)
        else:
            out.append(low)
            return


def decode_uint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one integer from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.  Raises :class:`CompressionError` when the
    stream ends in the middle of an integer.
    """
    value = 0
    shift = 0
    pos = offset
    length = len(data)
    while True:
        if pos >= length:
            raise CompressionError(
                f"truncated v-byte stream at offset {pos} (started at {offset})"
            )
        byte = data[pos]
        pos += 1
        value |= (byte & _PAYLOAD_MASK) << shift
        if not byte & _CONTINUATION_BIT:
            return value, pos
        shift += 7


def encode_sequence(values: Iterable[int]) -> bytes:
    """Encode an iterable of non-negative integers into one byte string."""
    out = bytearray()
    for value in values:
        encode_uint(value, out)
    return bytes(out)


def decode_sequence(data: bytes, count: int | None = None, offset: int = 0) -> list[int]:
    """Decode integers from ``data`` starting at ``offset``.

    If ``count`` is given, exactly that many integers are decoded (an error is
    raised if the stream is too short).  Otherwise the whole remaining buffer is
    decoded.
    """
    values: list[int] = []
    pos = offset
    if count is None:
        end = len(data)
        while pos < end:
            value, pos = decode_uint(data, pos)
            values.append(value)
        return values
    for _ in range(count):
        value, pos = decode_uint(data, pos)
        values.append(value)
    return values


def decode_sequence_with_offset(
    data: bytes, count: int, offset: int = 0
) -> tuple[list[int], int]:
    """Decode ``count`` integers and also return the offset past the last byte."""
    values: list[int] = []
    pos = offset
    for _ in range(count):
        value, pos = decode_uint(data, pos)
        values.append(value)
    return values, pos


def sequence_encoded_size(values: Sequence[int]) -> int:
    """Return the byte size :func:`encode_sequence` would produce for ``values``."""
    return sum(encoded_size(value) for value in values)
