"""LRU cache for containment-query results.

The paper's workloads are skewed — a few hot items dominate the queries — so a
small result cache absorbs a disproportionate share of the traffic.  Entries
are keyed by ``(index_name, normalized_expression)``: the normalized
:class:`~repro.core.query.expr.Expr` *is* the canonical hashable form of a
query, so two requests that differ only in construction order (operand
nesting, duplicate conjuncts, double negation, item ordering) share one cache
slot.

Invalidation is *predicate-aware*.  Inserting a record with item-set ``S``
into an index can only change a cached result whose expression **matches**
``S`` — for the point predicates this reduces to the classic rules (a subset
result is stale exactly when ``qs ⊆ S``, an equality result when ``qs = S``,
a superset result when ``S ⊆ qs``), and for boolean combinations the
expression's own per-record semantics decide.  Everything else stays valid,
so hot entries survive unrelated updates.  Dropping an index flushes all of
its entries; a rebuild keeps them, because the rebuild path preserves record
ids and the delta's answers, so every cached result stays correct across the
swap.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable

from repro.core.interfaces import QueryType
from repro.core.query.expr import Expr
from repro.errors import ServiceError
from repro.obs import trace

#: Cache key: ``(index_name, normalized_expression)``.
CacheKey = tuple[str, Expr]


def make_key(
    index_name: str,
    query: "Expr | QueryType | str",
    items: "Iterable | None" = None,
) -> CacheKey:
    """Normalize a query into its cache key.

    Accepts either a full expression (``make_key(name, expr)``) or the
    legacy point-predicate form (``make_key(name, query_type, items)``).
    """
    if isinstance(query, Expr):
        if items is not None:
            raise ServiceError("pass either an expression or (query_type, items), not both")
        return (index_name, query.normalize())
    if items is None:
        raise ServiceError(f"a {query!r} query needs an item set")
    return (index_name, QueryType.parse(query).leaf(items).normalize())


class ResultCache:
    """Thread-safe LRU cache mapping :data:`CacheKey` to record-id tuples."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ServiceError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, tuple[int, ...]] = OrderedDict()
        #: Per-index key registry so invalidation scans only the affected
        #: index's entries, not the whole cache (the scan runs on the insert
        #: hot path, under the inserting index's lock).
        self._keys_by_index: dict[str, set[CacheKey]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey, count_miss: bool = True) -> "tuple[int, ...] | None":
        """Return the cached record ids for ``key`` or ``None`` on a miss.

        ``count_miss=False`` is for optimistic probes that fall back to an
        authoritative (counted) lookup — a hit is always counted, but the
        miss is only charged once, by the authoritative lookup.
        """
        token = trace.stage_begin()
        try:
            with self._lock:
                value = self._entries.get(key)
                if value is None:
                    if count_miss:
                        self.misses += 1
                    return None
                self._entries.move_to_end(key)
                self.hits += 1
                return value
        finally:
            trace.stage_end("result_cache", token)

    def put(self, key: CacheKey, record_ids: Iterable[int]) -> None:
        """Store one result, evicting the least recently used entry if full."""
        value = tuple(record_ids)
        token = trace.stage_begin()
        try:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self._entries[key] = value
                    return
                if len(self._entries) >= self.capacity:
                    evicted_key, _ = self._entries.popitem(last=False)
                    self._forget(evicted_key)
                    self.evictions += 1
                self._entries[key] = value
                self._keys_by_index.setdefault(key[0], set()).add(key)
        finally:
            trace.stage_end("result_cache", token)

    def _forget(self, key: CacheKey) -> None:
        """Drop ``key`` from the per-index registry (caller holds the lock)."""
        keys = self._keys_by_index.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._keys_by_index[key[0]]

    # -- invalidation ----------------------------------------------------------------

    def invalidate_index(self, index_name: str) -> int:
        """Drop every entry of ``index_name`` (index dropped or rebuilt)."""
        with self._lock:
            stale = self._keys_by_index.pop(index_name, set())
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def invalidate_items(self, index_name: str, item_sets: Iterable[frozenset]) -> int:
        """Drop the entries whose result may change after inserting ``item_sets``.

        This is the hook the update path calls: ``item_sets`` are the
        set-values of the freshly inserted records.
        """
        inserted = [frozenset(items) for items in item_sets]
        if not inserted:
            return 0
        with self._lock:
            candidates = self._keys_by_index.get(index_name, set())
            stale = [key for key in candidates if self._affected(key, inserted)]
            for key in stale:
                del self._entries[key]
                self._forget(key)
            self.invalidations += len(stale)
            return len(stale)

    @staticmethod
    def _affected(key: CacheKey, inserted: list[frozenset]) -> bool:
        # A fresh record can change a cached answer only if the expression
        # matches its set-value (for limit queries, ``matches`` checks the
        # inner predicate — a conservative superset of the affected entries).
        _, expr = key
        return any(expr.matches(items) for items in inserted)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()
            self._keys_by_index.clear()

    def stats(self) -> dict:
        """JSON-friendly counters for the ``/stats`` endpoint."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hits / lookups, 4) if lookups else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
