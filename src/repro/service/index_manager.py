"""Resident index management for the query-serving subsystem.

A one-shot experiment rebuilds its index per run; a server cannot afford to.
:class:`IndexManager` keeps any number of *named*, memory-resident
:class:`~repro.core.interfaces.SetContainmentIndex` instances alive across
requests.  Each entry is guarded by a reader-writer lock: any number of
queries read one index handle concurrently (the storage engine is safe for
concurrent readers and charges each query through its own
:class:`~repro.storage.stats.ReadContext`), while inserts, delta flushes and
rebuild swaps take the exclusive write side.

Lifecycle:

* ``create`` builds an index of any registered kind (OIF, IF, unordered
  B-tree, signature file, naive scan) over a dataset;
* ``insert`` routes updates through the delta-buffer machinery of
  :mod:`repro.core.updates` (OIF/IF only) and fires its update listeners, so
  the result cache drops exactly the affected entries;
* ``rebuild`` builds a fresh index *outside* any lock, replays any inserts
  that raced with the build, then swaps the handle in atomically — queries
  keep being served from the old index during the (slow) build;
* ``drop`` evicts the index and flushes its cache entries.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator

from repro.baselines.naive import NaiveScanIndex
from repro.baselines.signature_file import SignatureFile
from repro.baselines.unordered_btree import UnorderedBTreeInvertedFile
from repro.concurrency import ReadWriteLock
from repro.core.interfaces import QueryType, SetContainmentIndex
from repro.core.items import Item
from repro.core.records import Dataset
from repro.core.shard import ShardQueryStat
from repro.core.updates import (
    UpdatableIF,
    UpdatableOIF,
    UpdatableShardedOIF,
    UpdateReport,
)
from repro.errors import ServiceError, UnknownIndexError
from repro.service.cache import ResultCache
from repro.storage.stats import IOSnapshot

#: Index kinds the manager can build.  ``oif`` and ``if`` are updatable (they
#: wrap the delta-buffer machinery); the rest are static baselines.
INDEX_KINDS = ("oif", "if", "ubt", "sig", "naive")

_STATIC_CLASSES = {
    "ubt": UnorderedBTreeInvertedFile,
    "sig": SignatureFile,
    "naive": NaiveScanIndex,
}


class ManagedIndex:
    """One named, resident index plus the reader-writer lock guarding it.

    Queries hold the read side of :attr:`lock` and run concurrently — the
    buffer pool below is thread-safe and every query carries its own read
    context, so the per-query page counts stay exact under interleaving.
    Inserts, flushes, the drop flag and rebuild swaps take the write side.
    """

    def __init__(self, name: str, kind: str, dataset: Dataset, **options) -> None:
        if kind not in INDEX_KINDS:
            raise ServiceError(
                f"unknown index kind {kind!r}; expected one of {list(INDEX_KINDS)}"
            )
        self.name = name
        self.kind = kind
        self.options = dict(options)
        #: Reader-writer guard: shared for queries, exclusive for mutation.
        self.lock = ReadWriteLock()
        #: Serializes rebuilds only; queries proceed under :attr:`lock`.
        self.rebuild_lock = threading.Lock()
        #: Set (under the write lock) when the index is evicted, so an
        #: in-flight evaluation cannot re-populate the result cache after
        #: the drop already invalidated the index's entries.
        self.dropped = False
        self._listeners: list = []
        self._insert_log: list[frozenset] = []
        #: Transactions trimmed off the front of the log (see insert_count).
        self._insert_log_base = 0
        start = time.perf_counter()
        self._handle = self._build_handle(dataset)
        self.build_seconds = time.perf_counter() - start

    def _build_handle(self, dataset: Dataset):
        options = dict(self.options)
        shards = options.pop("shards", None)
        build_workers = options.pop("build_workers", None)
        for option_name, value in (("shards", shards), ("build_workers", build_workers)):
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int) or value < 1
            ):
                raise ServiceError(
                    f"{option_name!r} must be a positive integer, got {value!r}"
                )
        sharded = bool(shards and shards > 1)
        if sharded and self.kind != "oif":
            raise ServiceError(
                f"sharding is only supported for kind 'oif', not {self.kind!r}"
            )
        if not sharded:
            # Silently building a monolithic index would ignore the client's
            # partitioning request — fail loudly instead.
            if "strategy" in options:
                raise ServiceError("the 'strategy' option requires 'shards' > 1")
            if build_workers is not None:
                raise ServiceError("the 'build_workers' option requires 'shards' > 1")
        if self.kind == "oif":
            if sharded:
                # Shard builds (and later rebuild swaps / flushes) run
                # concurrently; by default one worker per shard.
                handle = UpdatableShardedOIF(
                    dataset, shards, max_workers=build_workers or shards, **options
                )
            else:
                handle = UpdatableOIF(dataset, **options)
        elif self.kind == "if":
            handle = UpdatableIF(dataset, **options)
        else:
            return _STATIC_CLASSES[self.kind](dataset, **options)
        handle.add_update_listener(self._fanout)
        return handle

    def _fanout(self, item_sets: list[frozenset]) -> None:
        for listener in self._listeners:
            listener(item_sets)

    # -- introspection ---------------------------------------------------------------

    @property
    def supports_updates(self) -> bool:
        return self.kind in ("oif", "if")

    @property
    def index(self) -> SetContainmentIndex:
        """The underlying disk-resident index (excluding any delta buffer)."""
        if self.supports_updates:
            return self._handle.index
        return self._handle

    @property
    def num_records(self) -> int:
        with self.lock.read_locked():
            count = len(self._handle.dataset)
            if self.supports_updates:
                count += self._handle.pending_updates
            return count

    @property
    def pending_updates(self) -> int:
        with self.lock.read_locked():
            return self._handle.pending_updates if self.supports_updates else 0

    @property
    def insert_count(self) -> int:
        """Total transactions inserted since creation (rebuild bookkeeping)."""
        return self._insert_log_base + len(self._insert_log)

    def describe(self) -> dict:
        """JSON-friendly summary for the ``/indexes`` endpoint."""
        with self.lock.read_locked():
            out = {
                "name": self.name,
                "kind": self.kind,
                "index": self.index.name,
                "records": self.num_records,
                "pending_updates": self.pending_updates,
                "size_bytes": self.index.index_size_bytes,
                "build_seconds": round(self.build_seconds, 4),
                "supports_updates": self.supports_updates,
            }
            if isinstance(self._handle, UpdatableShardedOIF):
                out["shards"] = self._handle.num_shards
                out["shard_records"] = self._handle.index.shard_record_counts()
                out["pending_per_shard"] = self._handle.pending_per_shard()
            return out

    # -- serving operations ----------------------------------------------------------

    def query(self, query_type: "QueryType | str", items: Iterable[Item]) -> list[int]:
        """Answer one containment query (delta-aware for updatable kinds)."""
        with self.lock.read_locked():
            return self._handle.query(query_type, items)

    def evaluate(self, expr) -> list[int]:
        """Answer one query expression (delta-aware for updatable kinds)."""
        with self.lock.read_locked():
            return self._handle.evaluate(expr)

    def measured_expr(
        self, expr, fanout_pool: "ThreadPoolExecutor | None" = None
    ) -> "tuple[tuple[int, ...], IOSnapshot, tuple[ShardQueryStat, ...] | None]":
        """Answer an expression: ``(record_ids, io_delta, shard_stats)``.

        ``io_delta`` is the exact I/O of this query, read from the
        traversal's own context(s) — page, random and sequential read counts
        stay correct when many queries interleave on this handle.
        ``shard_stats`` is the per-shard breakdown for sharded handles,
        ``None`` otherwise.

        Holds only the *read* side of the entry lock, so any number of
        queries evaluate concurrently.  Sharded handles fan out on
        ``fanout_pool`` (typically the query executor's own pool — see
        :func:`repro.core.shard.run_sharing_pool` for why sharing it cannot
        deadlock); without one the shards evaluate serially.
        """
        with self.lock.read_locked():
            if isinstance(self._handle, UpdatableShardedOIF):
                record_ids, shard_stats = self._handle.evaluate_detail(
                    expr, pool=fanout_pool
                )
                delta = IOSnapshot(
                    page_reads=sum(stat.page_accesses for stat in shard_stats),
                    random_reads=sum(stat.random_reads for stat in shard_stats),
                    sequential_reads=sum(stat.sequential_reads for stat in shard_stats),
                    decoded_hits=sum(stat.decoded_hits for stat in shard_stats),
                    decoded_misses=sum(stat.decoded_misses for stat in shard_stats),
                )
                return tuple(record_ids), delta, tuple(shard_stats)
            if self.supports_updates:
                record_ids, delta = self._handle.measured_evaluate(expr)
                return tuple(record_ids), delta, None
            result = self._handle.measured_execute(expr)
            delta = IOSnapshot(
                page_reads=result.page_accesses,
                random_reads=result.random_reads,
                sequential_reads=result.sequential_reads,
                decoded_hits=result.decoded_hits,
                decoded_misses=result.decoded_misses,
            )
            return result.record_ids, delta, None

    def measured_query(
        self, query_type: "QueryType | str", items: Iterable[Item]
    ) -> "tuple[tuple[int, ...], IOSnapshot, tuple[ShardQueryStat, ...] | None]":
        """Point-predicate :meth:`measured_expr`."""
        return self.measured_expr(QueryType.parse(query_type).leaf(items))

    def close(self) -> None:
        """Compatibility no-op: entries no longer own per-index resources.

        The dedicated per-entry shard fan-out pool is gone — fan-out borrows
        the caller's pool deadlock-free — so there is nothing left to
        release.  Kept so embedding servers written against the old
        lifecycle keep working.
        """

    def insert(self, transactions: Iterable[Iterable[Item]]) -> list[int]:
        """Buffer new records (updatable kinds only); fires update listeners."""
        if not self.supports_updates:
            raise ServiceError(
                f"index {self.name!r} (kind {self.kind!r}) does not support updates"
            )
        materialized = [frozenset(transaction) for transaction in transactions]
        with self.lock.write_locked():
            if self.dropped:
                # Mirrors the query-path guard: a write racing a drop must
                # fail loudly, not be acknowledged into a discarded handle.
                raise UnknownIndexError(f"no index named {self.name!r}")
            new_ids = self._handle.insert(materialized)
            self._insert_log.extend(materialized)
            return new_ids

    def flush(self) -> "UpdateReport | None":
        """Merge the delta buffer into the disk index (no-op for static kinds)."""
        if not self.supports_updates:
            return None
        with self.lock.write_locked():
            if self.dropped:
                raise UnknownIndexError(f"no index named {self.name!r}")
            if not self._handle.pending_updates:
                return None
            report = self._handle.flush()
            self._trim_insert_log()
            return report

    def _trim_insert_log(self) -> None:
        """Drop replay history no rebuild can still need (caller holds write lock).

        The log exists so a rebuild can replay inserts that raced with its
        build; once those inserts are part of the base index (flush) or of a
        swapped-in handle, the prefix is dead weight.  Skipped while a rebuild
        is in flight — its snapshot mark still points into the log.
        """
        if self.rebuild_lock.acquire(blocking=False):
            try:
                self._insert_log_base += len(self._insert_log)
                self._insert_log.clear()
            finally:
                self.rebuild_lock.release()

    def add_update_listener(self, listener) -> None:
        """Register a callback fired with the item-sets of each insert batch.

        The callback rides on :meth:`repro.core.updates._UpdatableBase.insert`
        via the handle's own listener hook, and survives rebuild swaps.
        """
        self._listeners.append(listener)

    # -- rebuild ---------------------------------------------------------------------

    def snapshot_dataset(self) -> Dataset:
        """Merged dataset (base + delta) as of now."""
        with self.lock.read_locked():
            if self.supports_updates and self._handle.pending_updates:
                return Dataset(list(self._handle.dataset) + self._handle.delta.records)
            return self._handle.dataset

    def swap_handle(self, fresh: "ManagedIndex", since_insert: int) -> None:
        """Atomically replace the underlying handle with ``fresh``'s.

        ``since_insert`` is the insert-log position the fresh handle was built
        from; any transactions inserted after it are replayed first so the
        swap loses no update.  Exclusive: readers drain before the swap and
        the next ones see the fresh handle — atomicity is the write lock.
        """
        with self.lock.write_locked():
            missed = self._insert_log[max(0, since_insert - self._insert_log_base):]
            if missed:
                fresh._handle.insert(missed)
            self._handle = fresh._handle
            if self.supports_updates:
                # The forwarder of the old handle dies with it; the fresh
                # handle was wired to ``fresh._fanout`` — rewire it to ours.
                fresh._listeners = self._listeners
            self.build_seconds = fresh.build_seconds
            # Everything in the log is now part of the swapped-in handle.
            self._insert_log_base += len(self._insert_log)
            self._insert_log.clear()


class IndexManager:
    """Registry of named resident indexes with lifecycle operations."""

    def __init__(self, result_cache: "ResultCache | None" = None) -> None:
        self.result_cache = result_cache
        self._indexes: dict[str, ManagedIndex] = {}
        self._registry_lock = threading.RLock()

    def __len__(self) -> int:
        with self._registry_lock:
            return sum(1 for entry in self._indexes.values() if entry is not None)

    def __contains__(self, name: str) -> bool:
        with self._registry_lock:
            return self._indexes.get(name) is not None

    def __iter__(self) -> Iterator[ManagedIndex]:
        with self._registry_lock:
            return iter([entry for entry in self._indexes.values() if entry is not None])

    def names(self) -> list[str]:
        with self._registry_lock:
            return sorted(name for name, entry in self._indexes.items() if entry is not None)

    def describe(self) -> list[dict]:
        # Iterate a snapshot of the live entries rather than name-then-get,
        # so a concurrent drop cannot make this read-only path raise.
        return [entry.describe() for entry in sorted(self, key=lambda e: e.name)]

    # -- lifecycle -------------------------------------------------------------------

    def create(
        self,
        name: str,
        dataset: Dataset,
        kind: str = "oif",
        **options,
    ) -> ManagedIndex:
        """Build an index over ``dataset`` and register it under ``name``."""
        with self._registry_lock:
            if name in self._indexes:
                raise ServiceError(f"an index named {name!r} already exists")
            # Reserve the name so concurrent creates fail fast; the (slow)
            # build below runs without blocking access to other indexes.
            self._indexes[name] = None  # type: ignore[assignment]
        try:
            entry = ManagedIndex(name, kind, dataset, **options)
        except BaseException:
            with self._registry_lock:
                self._indexes.pop(name, None)
            raise
        def _invalidate(item_sets: list[frozenset]) -> None:
            # Resolve the cache at fire time, so wiring a cache into the
            # manager after indexes were created still invalidates correctly.
            cache = self.result_cache
            if cache is not None:
                cache.invalidate_items(name, item_sets)

        entry.add_update_listener(_invalidate)
        with self._registry_lock:
            self._indexes[name] = entry
        return entry

    def get(self, name: str) -> ManagedIndex:
        with self._registry_lock:
            entry = self._indexes.get(name)
        if entry is None:
            raise UnknownIndexError(f"no index named {name!r}")
        return entry

    def drop(self, name: str) -> None:
        """Evict an index and invalidate its cached results."""
        with self._registry_lock:
            entry = self._indexes.get(name)
            if entry is None:
                # Covers both a genuinely unknown name and the None
                # reservation of an in-flight create — which must stay in
                # place, or a concurrent create could register the same name
                # twice and one index would be silently clobbered.
                raise UnknownIndexError(f"no index named {name!r}")
            del self._indexes[name]
        # Mark the entry dead under the exclusive lock *before* invalidating:
        # acquiring it drains every in-flight read (they finish and cache
        # first), and any later evaluation sees the flag and refuses to
        # cache stale results under a name that may be reused.
        with entry.lock.write_locked():
            entry.dropped = True
        entry.close()
        if self.result_cache is not None:
            self.result_cache.invalidate_index(name)

    def rebuild(self, name: str) -> ManagedIndex:
        """Rebuild ``name`` from its merged dataset and swap the handle in.

        The expensive build happens outside the per-index lock entirely, so
        readers keep hitting the old index; inserts that arrive during the
        build are replayed into the fresh handle before the swap, and the
        swap itself is the only exclusive section.  Cached results stay
        valid: the snapshot keeps every record id, so the swap changes the
        physical layout but no query answer.
        """
        entry = self.get(name)
        with entry.rebuild_lock:
            with entry.lock.read_locked():
                # Snapshot and log mark must be one atomic observation: an
                # insert between them would be in neither the snapshot nor
                # the replayed suffix.  Inserts take the write side, so the
                # shared read hold is enough.
                dataset = entry.snapshot_dataset()
                mark = entry.insert_count
            fresh = ManagedIndex(entry.name, entry.kind, dataset, **entry.options)
            entry.swap_handle(fresh, mark)
        return entry

    # -- updates ---------------------------------------------------------------------

    def insert(self, name: str, transactions: Iterable[Iterable[Item]]) -> list[int]:
        """Insert into one index; affected result-cache entries are dropped."""
        return self.get(name).insert(transactions)

    def flush(self, name: str) -> "UpdateReport | None":
        return self.get(name).flush()

    # -- lifecycle of the manager itself ----------------------------------------------

    def close(self) -> None:
        """Compatibility no-op (see :meth:`ManagedIndex.close`).

        Earlier versions parked a dedicated shard fan-out thread pool on
        every sharded entry and released them here; fan-out now shares the
        caller's executor pool, so no per-index threads exist to tear down.
        """
        for entry in self:
            entry.close()
