"""Resident index management for the query-serving subsystem.

A one-shot experiment rebuilds its index per run; a server cannot afford to.
:class:`IndexManager` keeps any number of *named*, memory-resident
:class:`~repro.core.interfaces.SetContainmentIndex` instances alive across
requests.  Each entry is guarded by a reader-writer lock: any number of
queries read one index handle concurrently (the storage engine is safe for
concurrent readers and charges each query through its own
:class:`~repro.storage.stats.ReadContext`), while inserts, delta flushes and
rebuild swaps take the exclusive write side.

Lifecycle:

* ``create`` builds an index of any registered kind (OIF, IF, unordered
  B-tree, signature file, naive scan) over a dataset; with a ``data_dir``
  configured, OIF indexes are additionally *persisted* — page images,
  manifest and a write-ahead log under ``data_dir/<name>/`` — so a restarted
  server reopens them in seconds instead of rebuilding from the dataset;
* ``insert``/``delete`` route updates through the delta-buffer machinery of
  :mod:`repro.core.updates` (OIF/IF only) and fire its update listeners, so
  the result cache drops exactly the affected entries; durable entries
  write-ahead-log every update before acking;
* ``checkpoint`` flushes a durable entry's deltas and publishes a new
  on-disk generation, truncating its WAL;
* ``open_resident`` brings every persisted index under ``data_dir`` back —
  no source dataset needed, crash-interrupted updates replayed from the WAL;
* ``rebuild`` builds a fresh index *outside* any lock, replays any updates
  that raced with the build, then swaps the handle in atomically — queries
  keep being served from the old index during the (slow) build;
* ``drop`` evicts the index, flushes its cache entries and (for durable
  entries) deletes its on-disk directory.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator

from repro.baselines.naive import NaiveScanIndex
from repro.baselines.signature_file import SignatureFile
from repro.baselines.unordered_btree import UnorderedBTreeInvertedFile
from repro.concurrency import ReadWriteLock
from repro.core.interfaces import QueryType, SetContainmentIndex
from repro.core.items import Item
from repro.core.records import Dataset
from repro.core.shard import ShardProcessPool, ShardQueryStat
from repro.core.updates import (
    UpdatableIF,
    UpdatableOIF,
    UpdatableShardedOIF,
    UpdateReport,
)
from repro.durability import (
    MANIFEST_NAME,
    DurableIndex,
    durable_env_factory,
    open_index,
    persist,
)
from repro.errors import ServiceError, UnknownIndexError
from repro.obs import trace as obs_trace
from repro.service.cache import ResultCache
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.storage.kvstore import PAPER_CACHE_BYTES
from repro.storage.stats import IOSnapshot

#: Index kinds the manager can build.  ``oif`` and ``if`` are updatable (they
#: wrap the delta-buffer machinery); the rest are static baselines.
INDEX_KINDS = ("oif", "if", "ubt", "sig", "naive")

_STATIC_CLASSES = {
    "ubt": UnorderedBTreeInvertedFile,
    "sig": SignatureFile,
    "naive": NaiveScanIndex,
}

#: How sharded entries fan queries out: in-process threads (exact but
#: GIL-bound) or a persistent worker-process pool (see
#: :class:`repro.core.shard.ShardProcessPool`).
SHARD_BACKENDS = ("threads", "processes")


def _unwrap(handle):
    """Strip the durability facade for type dispatch on the inner handle."""
    return handle.inner if isinstance(handle, DurableIndex) else handle


class ManagedIndex:
    """One named, resident index plus the reader-writer lock guarding it.

    Queries hold the read side of :attr:`lock` and run concurrently — the
    buffer pool below is thread-safe and every query carries its own read
    context, so the per-query page counts stay exact under interleaving.
    Inserts, flushes, the drop flag and rebuild swaps take the write side.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        dataset: Dataset,
        *,
        catalog_envs: bool = False,
        handle=None,
        shard_backend: str = "threads",
        shard_workers: "int | None" = None,
        **options,
    ) -> None:
        if kind not in INDEX_KINDS:
            raise ServiceError(
                f"unknown index kind {kind!r}; expected one of {list(INDEX_KINDS)}"
            )
        if shard_backend not in SHARD_BACKENDS:
            raise ServiceError(
                f"unknown shard_backend {shard_backend!r}; "
                f"expected one of {list(SHARD_BACKENDS)}"
            )
        if shard_workers is not None and (
            isinstance(shard_workers, bool)
            or not isinstance(shard_workers, int)
            or shard_workers < 1
        ):
            raise ServiceError(
                f"'shard_workers' must be a positive integer, got {shard_workers!r}"
            )
        if shard_backend == "processes":
            shards = options.get("shards")
            if kind != "oif" or not (
                isinstance(shards, int) and not isinstance(shards, bool) and shards > 1
            ):
                raise ServiceError(
                    "shard_backend 'processes' requires kind 'oif' with 'shards' > 1"
                )
            # Worker processes reopen shards from page images, which needs
            # the page-0 catalog — force catalog environments regardless of
            # whether the entry is also persisted.
            catalog_envs = True
        self.name = name
        self.kind = kind
        self.shard_backend = shard_backend
        self.shard_workers = shard_workers
        self._shard_pool: "ShardProcessPool | None" = None
        self.options = dict(options)
        #: Build (or build-and-flush-rebuild) on catalog-enabled storage
        #: environments, the prerequisite for persisting the page images.
        self.catalog_envs = catalog_envs or handle is not None
        #: Reader-writer guard: shared for queries, exclusive for mutation.
        self.lock = ReadWriteLock()
        #: Serializes rebuilds only; queries proceed under :attr:`lock`.
        self.rebuild_lock = threading.Lock()
        #: Set (under the write lock) when the index is evicted, so an
        #: in-flight evaluation cannot re-populate the result cache after
        #: the drop already invalidated the index's entries.
        self.dropped = False
        self._listeners: list = []
        #: Update transactions since creation — the replay source for
        #: rebuilds.  One ``("insert", (record_id, items))`` entry per
        #: inserted record, one ``("delete", ids)`` entry per delete batch.
        self._insert_log: list[tuple] = []
        #: Transactions trimmed off the front of the log (see insert_count).
        self._insert_log_base = 0
        start = time.perf_counter()
        if handle is not None:
            # Adopt an already-opened handle (the ``open_resident`` path): no
            # build happens, just the listener wiring.
            self._handle = handle
            if self.supports_updates:
                handle.add_update_listener(self._fanout)
        else:
            self._handle = self._build_handle(dataset)
        self.build_seconds = time.perf_counter() - start

    def _build_handle(self, dataset: Dataset):
        options = dict(self.options)
        shards = options.pop("shards", None)
        build_workers = options.pop("build_workers", None)
        for option_name, value in (("shards", shards), ("build_workers", build_workers)):
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int) or value < 1
            ):
                raise ServiceError(
                    f"{option_name!r} must be a positive integer, got {value!r}"
                )
        sharded = bool(shards and shards > 1)
        if sharded and self.kind != "oif":
            raise ServiceError(
                f"sharding is only supported for kind 'oif', not {self.kind!r}"
            )
        if not sharded:
            # Silently building a monolithic index would ignore the client's
            # partitioning request — fail loudly instead.
            if "strategy" in options:
                raise ServiceError("the 'strategy' option requires 'shards' > 1")
            if build_workers is not None:
                raise ServiceError("the 'build_workers' option requires 'shards' > 1")
        if self.kind == "oif":
            env_factory = None
            if self.catalog_envs:
                page_size = options.get("page_size", DEFAULT_PAGE_SIZE)
                cache_bytes = options.get("cache_bytes", PAPER_CACHE_BYTES)
                env_factory = durable_env_factory(page_size, cache_bytes)
            if sharded:
                # Shard builds (and later rebuild swaps / flushes) run
                # concurrently; by default one worker per shard.
                handle = UpdatableShardedOIF(
                    dataset,
                    shards,
                    max_workers=build_workers or shards,
                    env_factory=env_factory,
                    **options,
                )
            else:
                handle = UpdatableOIF(dataset, env_factory=env_factory, **options)
        elif self.kind == "if":
            handle = UpdatableIF(dataset, **options)
        else:
            return _STATIC_CLASSES[self.kind](dataset, **options)
        handle.add_update_listener(self._fanout)
        return handle

    def make_durable(
        self,
        directory: str,
        *,
        fsync: str = "always",
        seed: "int | None" = None,
        dataset_config: "dict | None" = None,
    ) -> None:
        """Persist the freshly built handle under ``directory`` (generation 0).

        From here on every acked update is write-ahead-logged and
        :meth:`checkpoint` publishes new generations.  Requires the entry to
        have been built with ``catalog_envs=True``.
        """
        if self.kind != "oif":
            raise ServiceError(
                f"durability is only supported for kind 'oif', not {self.kind!r}"
            )
        persist_options = {
            key: value for key, value in self.options.items()
            if key not in ("shards", "strategy", "build_workers")
        }
        with self.lock.write_locked():
            self._handle = persist(
                directory,
                self._handle,
                options=persist_options,
                fsync=fsync,
                seed=seed,
                dataset_config=dataset_config,
            )

    def attach_shard_pool(self) -> "ShardProcessPool | None":
        """Spawn the multiprocess shard backend (``shard_backend='processes'``).

        Durable entries checkpoint on demand first (a fresh generation keeps
        the WAL short and the base shards maximal before imaging); then every
        live shard is materialized into the pool's temp directory and its
        owning worker opens it.  No-op for the threads backend; idempotent.
        """
        if self.shard_backend != "processes" or self._shard_pool is not None:
            return self._shard_pool
        inner = _unwrap(self._handle)
        if not isinstance(inner, UpdatableShardedOIF):
            raise ServiceError(
                f"index {self.name!r} is not sharded; the process backend "
                "needs an 'oif' entry with 'shards' > 1"
            )
        if self.is_durable:
            self.checkpoint(force=False)
        pool_options = {
            key: value
            for key, value in self.options.items()
            if key not in ("shards", "strategy", "build_workers")
        }
        pool = ShardProcessPool(
            inner.index, self.shard_workers, options=pool_options
        )
        try:
            inner.attach_process_pool(pool)
        except BaseException:
            pool.close()
            raise
        self._shard_pool = pool
        return pool

    def close_shard_pool(self) -> None:
        """Detach and shut down the process backend (no-op when absent)."""
        pool, self._shard_pool = self._shard_pool, None
        if pool is None:
            return
        inner = _unwrap(self._handle)
        if getattr(inner, "process_pool", None) is pool:
            inner.detach_process_pool()
        pool.close()

    def _fanout(self, item_sets: list[frozenset]) -> None:
        for listener in self._listeners:
            listener(item_sets)

    # -- introspection ---------------------------------------------------------------

    @property
    def supports_updates(self) -> bool:
        return self.kind in ("oif", "if")

    @property
    def is_durable(self) -> bool:
        """True when the entry persists updates to disk (WAL + checkpoints)."""
        return isinstance(self._handle, DurableIndex)

    @property
    def index(self) -> SetContainmentIndex:
        """The underlying disk-resident index (excluding any delta buffer)."""
        if self.supports_updates:
            return self._handle.index
        return self._handle

    @property
    def num_records(self) -> int:
        """Records a query can currently return (buffered adds minus deletes)."""
        with self.lock.read_locked():
            handle = _unwrap(self._handle)
            count = len(handle.dataset)
            if self.supports_updates:
                count += len(handle.delta) - handle.pending_deletes
            return count

    @property
    def pending_updates(self) -> int:
        with self.lock.read_locked():
            return self._handle.pending_updates if self.supports_updates else 0

    @property
    def insert_count(self) -> int:
        """Total transactions inserted since creation (rebuild bookkeeping)."""
        return self._insert_log_base + len(self._insert_log)

    def describe(self) -> dict:
        """JSON-friendly summary for the ``/indexes`` endpoint."""
        with self.lock.read_locked():
            out = {
                "name": self.name,
                "kind": self.kind,
                "index": self.index.name,
                "records": self.num_records,
                "pending_updates": self.pending_updates,
                "size_bytes": self.index.index_size_bytes,
                "build_seconds": round(self.build_seconds, 4),
                "supports_updates": self.supports_updates,
            }
            if isinstance(_unwrap(self._handle), UpdatableShardedOIF):
                out["shards"] = self._handle.num_shards
                out["shard_records"] = self._handle.index.shard_record_counts()
                out["pending_per_shard"] = self._handle.pending_per_shard()
                out["shard_backend"] = self.shard_backend
                if self._shard_pool is not None:
                    out["shard_workers"] = self._shard_pool.num_workers
            if self.is_durable:
                store = self._handle.store
                out["durable"] = True
                out["generation"] = store.generation
                out["checkpoint_age_seconds"] = round(store.checkpoint_age_seconds(), 3)
                out["wal_bytes"] = sum(wal.size_bytes for wal in store._wals)
            return out

    # -- serving operations ----------------------------------------------------------

    def query(self, query_type: "QueryType | str", items: Iterable[Item]) -> list[int]:
        """Answer one containment query (delta-aware for updatable kinds)."""
        with self.lock.read_locked():
            return self._handle.query(query_type, items)

    def evaluate(self, expr) -> list[int]:
        """Answer one query expression (delta-aware for updatable kinds)."""
        with self.lock.read_locked():
            return self._handle.evaluate(expr)

    def measured_expr(
        self, expr, fanout_pool: "ThreadPoolExecutor | None" = None
    ) -> "tuple[tuple[int, ...], IOSnapshot, tuple[ShardQueryStat, ...] | None]":
        """Answer an expression: ``(record_ids, io_delta, shard_stats)``.

        ``io_delta`` is the exact I/O of this query, read from the
        traversal's own context(s) — page, random and sequential read counts
        stay correct when many queries interleave on this handle.
        ``shard_stats`` is the per-shard breakdown for sharded handles,
        ``None`` otherwise.

        Holds only the *read* side of the entry lock, so any number of
        queries evaluate concurrently.  Sharded handles fan out on
        ``fanout_pool`` (typically the query executor's own pool — see
        :func:`repro.core.shard.run_sharing_pool` for why sharing it cannot
        deadlock); without one the shards evaluate serially.
        """
        with self.lock.read_locked():
            if isinstance(_unwrap(self._handle), UpdatableShardedOIF):
                record_ids, shard_stats = self._handle.evaluate_detail(
                    expr, pool=fanout_pool
                )
                delta = IOSnapshot(
                    page_reads=sum(stat.page_accesses for stat in shard_stats),
                    random_reads=sum(stat.random_reads for stat in shard_stats),
                    sequential_reads=sum(stat.sequential_reads for stat in shard_stats),
                    decoded_hits=sum(stat.decoded_hits for stat in shard_stats),
                    decoded_misses=sum(stat.decoded_misses for stat in shard_stats),
                )
                return tuple(record_ids), delta, tuple(shard_stats)
            if self.supports_updates:
                record_ids, delta = self._handle.measured_evaluate(expr)
                return tuple(record_ids), delta, None
            result = self._handle.measured_execute(expr)
            delta = IOSnapshot(
                page_reads=result.page_accesses,
                random_reads=result.random_reads,
                sequential_reads=result.sequential_reads,
                decoded_hits=result.decoded_hits,
                decoded_misses=result.decoded_misses,
            )
            return result.record_ids, delta, None

    def measured_query(
        self, query_type: "QueryType | str", items: Iterable[Item]
    ) -> "tuple[tuple[int, ...], IOSnapshot, tuple[ShardQueryStat, ...] | None]":
        """Point-predicate :meth:`measured_expr`."""
        return self.measured_expr(QueryType.parse(query_type).leaf(items))

    def close(self) -> None:
        """Release per-entry resources.

        Durable entries own open WAL file handles through their store;
        process-backend entries own their worker pool; plain entries own
        nothing (fan-out borrows the caller's pool) and close as a no-op.
        """
        self.close_shard_pool()
        if self.is_durable:
            self._handle.close()

    def insert(self, transactions: Iterable[Iterable[Item]]) -> list[int]:
        """Buffer new records (updatable kinds only); fires update listeners."""
        if not self.supports_updates:
            raise ServiceError(
                f"index {self.name!r} (kind {self.kind!r}) does not support updates"
            )
        materialized = [frozenset(transaction) for transaction in transactions]
        with self.lock.write_locked():
            if self.dropped:
                # Mirrors the query-path guard: a write racing a drop must
                # fail loudly, not be acknowledged into a discarded handle.
                raise UnknownIndexError(f"no index named {self.name!r}")
            new_ids = self._handle.insert(materialized)
            self._insert_log.extend(
                ("insert", (record_id, items))
                for record_id, items in zip(new_ids, materialized)
            )
            return new_ids

    def delete(self, record_ids: Iterable[int]) -> list:
        """Delete records by id (updatable kinds only); fires update listeners."""
        if not self.supports_updates:
            raise ServiceError(
                f"index {self.name!r} (kind {self.kind!r}) does not support updates"
            )
        ids = list(record_ids)
        with self.lock.write_locked():
            if self.dropped:
                raise UnknownIndexError(f"no index named {self.name!r}")
            removed = self._handle.delete(ids)
            self._insert_log.append(("delete", tuple(ids)))
            return removed

    def checkpoint(self, force: bool = False) -> dict:
        """Flush deltas and publish a new on-disk generation (durable only)."""
        if not self.is_durable:
            raise ServiceError(f"index {self.name!r} is not durable")
        with self.lock.write_locked():
            if self.dropped:
                raise UnknownIndexError(f"no index named {self.name!r}")
            result = self._handle.checkpoint(force=force)
            self._trim_insert_log()
            return result

    def flush(self) -> "UpdateReport | None":
        """Merge the delta buffer into the disk index (no-op for static kinds)."""
        if not self.supports_updates:
            return None
        with self.lock.write_locked():
            if self.dropped:
                raise UnknownIndexError(f"no index named {self.name!r}")
            if not self._handle.pending_updates:
                return None
            report = self._handle.flush()
            self._trim_insert_log()
            return report

    def _trim_insert_log(self) -> None:
        """Drop replay history no rebuild can still need (caller holds write lock).

        The log exists so a rebuild can replay inserts that raced with its
        build; once those inserts are part of the base index (flush) or of a
        swapped-in handle, the prefix is dead weight.  Skipped while a rebuild
        is in flight — its snapshot mark still points into the log.
        """
        if self.rebuild_lock.acquire(blocking=False):
            try:
                self._insert_log_base += len(self._insert_log)
                self._insert_log.clear()
            finally:
                self.rebuild_lock.release()

    def add_update_listener(self, listener) -> None:
        """Register a callback fired with the item-sets of each insert batch.

        The callback rides on :meth:`repro.core.updates._UpdatableBase.insert`
        via the handle's own listener hook, and survives rebuild swaps.
        """
        self._listeners.append(listener)

    # -- rebuild ---------------------------------------------------------------------

    def snapshot_dataset(self) -> Dataset:
        """Merged dataset (base + delta, minus tombstones) as of now."""
        with self.lock.read_locked():
            handle = _unwrap(self._handle)
            if self.supports_updates and handle.pending_updates:
                return handle.live_dataset()
            return handle.dataset

    def swap_handle(self, fresh: "ManagedIndex", since_insert: int) -> None:
        """Atomically replace the underlying handle with ``fresh``'s.

        ``since_insert`` is the update-log position the fresh handle was built
        from; transactions logged after it are replayed first — inserts under
        their original, already-acked record ids — so the swap loses no
        update.  Exclusive: readers drain before the swap and the next ones
        see the fresh handle — atomicity is the write lock.  For durable
        entries the :class:`~repro.durability.DurableIndex` facade (WAL +
        manifest) stays in place; only its wrapped handle is swapped.
        """
        with self.lock.write_locked():
            missed = self._insert_log[max(0, since_insert - self._insert_log_base):]
            fresh_inner = _unwrap(fresh._handle)
            for op, payload in missed:
                if op == "insert":
                    record_id, items = payload
                    # Re-apply under the id the live handle acked: aligning
                    # the counter makes the fresh handle assign exactly it.
                    fresh_inner._next_id = max(fresh_inner._next_id, record_id)
                    assigned = fresh._handle.insert([items])
                    if assigned != [record_id]:
                        raise ServiceError(
                            f"rebuild replay assigned id {assigned}, "
                            f"expected [{record_id}]"
                        )
                else:
                    fresh._handle.delete(list(payload))
            if self.supports_updates:
                # An id acked before the swap must never be reassigned after
                # it, even when deleting the max-id record shrank the fresh
                # handle's view of the id space.
                fresh_inner._next_id = max(
                    fresh_inner._next_id, _unwrap(self._handle)._next_id
                )
            if self.is_durable:
                self._handle.swap_inner(fresh_inner)
            else:
                self._handle = fresh._handle
            if self.supports_updates:
                # The forwarder of the old handle dies with it; the fresh
                # handle was wired to ``fresh._fanout`` — rewire it to ours.
                fresh._listeners = self._listeners
            self.build_seconds = fresh.build_seconds
            # Everything in the log is now part of the swapped-in handle.
            self._insert_log_base += len(self._insert_log)
            self._insert_log.clear()
        if self._shard_pool is not None:
            # The old pool's workers hold images of the replaced shards;
            # rebuild it over the fresh handle (outside the write lock — the
            # spawn is slow and the swapped-in handle is already live).
            self.close_shard_pool()
            self.attach_shard_pool()


class IndexManager:
    """Registry of named resident indexes with lifecycle operations.

    With a ``data_dir``, every OIF index the manager creates is persisted
    under ``data_dir/<name>/`` (page images + manifest + WAL) and
    :meth:`open_resident` brings the whole catalog of persisted indexes back
    after a restart — including updates that were acked but never
    checkpointed, replayed from the WALs.
    """

    def __init__(
        self,
        result_cache: "ResultCache | None" = None,
        data_dir: "str | None" = None,
        fsync: str = "always",
        shard_backend: str = "threads",
        shard_workers: "int | None" = None,
    ) -> None:
        if shard_backend not in SHARD_BACKENDS:
            raise ServiceError(
                f"unknown shard_backend {shard_backend!r}; "
                f"expected one of {list(SHARD_BACKENDS)}"
            )
        self.result_cache = result_cache
        self.data_dir = data_dir
        self.fsync = fsync
        #: Default fan-out backend for sharded entries; a create request can
        #: override it per index with a ``shard_backend`` option.
        self.shard_backend = shard_backend
        self.shard_workers = shard_workers
        self._indexes: dict[str, ManagedIndex] = {}
        self._registry_lock = threading.RLock()

    def __len__(self) -> int:
        with self._registry_lock:
            return sum(1 for entry in self._indexes.values() if entry is not None)

    def __contains__(self, name: str) -> bool:
        with self._registry_lock:
            return self._indexes.get(name) is not None

    def __iter__(self) -> Iterator[ManagedIndex]:
        with self._registry_lock:
            return iter([entry for entry in self._indexes.values() if entry is not None])

    def names(self) -> list[str]:
        with self._registry_lock:
            return sorted(name for name, entry in self._indexes.items() if entry is not None)

    def describe(self) -> list[dict]:
        # Iterate a snapshot of the live entries rather than name-then-get,
        # so a concurrent drop cannot make this read-only path raise.
        return [entry.describe() for entry in sorted(self, key=lambda e: e.name)]

    # -- lifecycle -------------------------------------------------------------------

    def create(
        self,
        name: str,
        dataset: Dataset,
        kind: str = "oif",
        dataset_config: "dict | None" = None,
        **options,
    ) -> ManagedIndex:
        """Build an index over ``dataset`` and register it under ``name``.

        With a ``data_dir`` configured, ``oif`` indexes are built on
        catalog-enabled environments and persisted to ``data_dir/<name>/``
        before the entry is registered; ``dataset_config`` (if given) is
        recorded in the manifest as provenance.
        """
        with self._registry_lock:
            if name in self._indexes:
                raise ServiceError(f"an index named {name!r} already exists")
            # Reserve the name so concurrent creates fail fast; the (slow)
            # build below runs without blocking access to other indexes.
            self._indexes[name] = None  # type: ignore[assignment]
        durable = self.data_dir is not None and kind == "oif"
        explicit_backend = "shard_backend" in options
        shard_backend = options.pop("shard_backend", self.shard_backend)
        shard_workers = options.pop("shard_workers", self.shard_workers)
        shards = options.get("shards")
        if not explicit_backend and shard_backend == "processes" and not (
            isinstance(shards, int) and not isinstance(shards, bool) and shards > 1
        ):
            # The server-wide default must not break unsharded creates; an
            # explicit per-request 'processes' ask still fails loudly.
            shard_backend = "threads"
        try:
            entry = ManagedIndex(
                name,
                kind,
                dataset,
                catalog_envs=durable,
                shard_backend=shard_backend,
                shard_workers=shard_workers,
                **options,
            )
            if durable:
                entry.make_durable(
                    os.path.join(self.data_dir, name),
                    fsync=self.fsync,
                    dataset_config=dataset_config,
                )
            entry.attach_shard_pool()
        except BaseException:
            with self._registry_lock:
                self._indexes.pop(name, None)
            raise
        self._register(name, entry)
        return entry

    def _register(self, name: str, entry: ManagedIndex) -> None:
        def _invalidate(item_sets: list[frozenset]) -> None:
            # Resolve the cache at fire time, so wiring a cache into the
            # manager after indexes were created still invalidates correctly.
            cache = self.result_cache
            if cache is not None:
                cache.invalidate_items(name, item_sets)

        entry.add_update_listener(_invalidate)
        with self._registry_lock:
            self._indexes[name] = entry

    def open_resident(self) -> list[dict]:
        """Reopen every persisted index under ``data_dir``; returns stats.

        Each subdirectory holding a manifest is opened without its source
        dataset — pages are loaded, the OIF state rebuilt and any updates
        acked after the last checkpoint replayed from the WALs.  Returns one
        stats dict per recovered index (name, generation, records, WAL
        records replayed, torn bytes truncated, open seconds).
        """
        if self.data_dir is None:
            return []
        recovered: list[dict] = []
        try:
            names = sorted(os.listdir(self.data_dir))
        except FileNotFoundError:
            return []
        for name in names:
            directory = os.path.join(self.data_dir, name)
            if not os.path.isfile(os.path.join(directory, MANIFEST_NAME)):
                continue
            with self._registry_lock:
                if name in self._indexes:
                    raise ServiceError(
                        f"an index named {name!r} already exists; cannot recover "
                        f"{directory!r} over it"
                    )
            with obs_trace.span("index.recover", index=name):
                start = time.perf_counter()
                durable = open_index(directory, fsync=self.fsync)
                store = durable.store
                options = store.options
                if store.kind == "sharded-oif":
                    options["shards"] = store.manifest["shards"]
                    if store.manifest.get("strategy", "hash") != "hash":
                        options["strategy"] = store.manifest["strategy"]
                # The manager-wide process backend applies only to entries it
                # can serve (sharded); monolithic recoveries stay threaded.
                backend = (
                    self.shard_backend
                    if options.get("shards", 0) and options["shards"] > 1
                    else "threads"
                )
                entry = ManagedIndex(
                    name,
                    "oif",
                    durable.dataset,
                    handle=durable,
                    shard_backend=backend,
                    shard_workers=self.shard_workers,
                    **options,
                )
                entry.attach_shard_pool()
                self._register(name, entry)
                recovered.append(
                    {
                        "name": name,
                        "generation": store.generation,
                        "records": entry.num_records,
                        "wal_records_replayed": store.replayed_records,
                        "torn_bytes_truncated": store.torn_bytes_truncated,
                        "open_seconds": round(time.perf_counter() - start, 4),
                    }
                )
        return recovered

    def checkpoint(self, name: str, force: bool = False) -> dict:
        """Checkpoint one durable index (flush deltas, publish a generation)."""
        return self.get(name).checkpoint(force=force)

    def get(self, name: str) -> ManagedIndex:
        with self._registry_lock:
            entry = self._indexes.get(name)
        if entry is None:
            raise UnknownIndexError(f"no index named {name!r}")
        return entry

    def drop(self, name: str) -> None:
        """Evict an index and invalidate its cached results."""
        with self._registry_lock:
            entry = self._indexes.get(name)
            if entry is None:
                # Covers both a genuinely unknown name and the None
                # reservation of an in-flight create — which must stay in
                # place, or a concurrent create could register the same name
                # twice and one index would be silently clobbered.
                raise UnknownIndexError(f"no index named {name!r}")
            del self._indexes[name]
        # Mark the entry dead under the exclusive lock *before* invalidating:
        # acquiring it drains every in-flight read (they finish and cache
        # first), and any later evaluation sees the flag and refuses to
        # cache stale results under a name that may be reused.
        with entry.lock.write_locked():
            entry.dropped = True
        entry.close_shard_pool()
        if entry.is_durable:
            # Dropping a durable index removes its on-disk directory too —
            # a restart must not resurrect an index the client evicted.
            entry._handle.store.destroy()
        else:
            entry.close()
        if self.result_cache is not None:
            self.result_cache.invalidate_index(name)

    def rebuild(self, name: str) -> ManagedIndex:
        """Rebuild ``name`` from its merged dataset and swap the handle in.

        The expensive build happens outside the per-index lock entirely, so
        readers keep hitting the old index; inserts that arrive during the
        build are replayed into the fresh handle before the swap, and the
        swap itself is the only exclusive section.  Cached results stay
        valid: the snapshot keeps every record id, so the swap changes the
        physical layout but no query answer.
        """
        entry = self.get(name)
        with entry.rebuild_lock:
            with entry.lock.read_locked():
                # Snapshot and log mark must be one atomic observation: an
                # insert between them would be in neither the snapshot nor
                # the replayed suffix.  Inserts take the write side, so the
                # shared read hold is enough.
                dataset = entry.snapshot_dataset()
                mark = entry.insert_count
            fresh = ManagedIndex(
                entry.name,
                entry.kind,
                dataset,
                catalog_envs=entry.catalog_envs,
                **entry.options,
            )
            entry.swap_handle(fresh, mark)
        return entry

    # -- updates ---------------------------------------------------------------------

    def insert(self, name: str, transactions: Iterable[Iterable[Item]]) -> list[int]:
        """Insert into one index; affected result-cache entries are dropped."""
        return self.get(name).insert(transactions)

    def flush(self, name: str) -> "UpdateReport | None":
        return self.get(name).flush()

    # -- lifecycle of the manager itself ----------------------------------------------

    def close(self, checkpoint: bool = True) -> None:
        """Release per-entry resources; checkpoint durable entries first.

        A clean shutdown checkpoints every durable index so the next open is
        a pure page load with an empty WAL; pass ``checkpoint=False`` to
        skip that (crash-simulation paths).  Plain entries own no resources
        (fan-out shares the caller's executor pool) and close as a no-op.
        """
        for entry in self:
            if checkpoint and entry.is_durable and not entry.dropped:
                try:
                    entry.checkpoint()
                except ServiceError:
                    pass
            entry.close()
