"""JSON-over-HTTP front end for the query-serving subsystem (stdlib only).

The server glues the serving components together — an
:class:`~repro.service.index_manager.IndexManager`, a
:class:`~repro.service.cache.ResultCache` and a
:class:`~repro.service.executor.QueryExecutor` — behind a
:class:`http.server.ThreadingHTTPServer`, one OS thread per connection on top
of the executor's worker pool.

Endpoints (all payloads JSON):

* ``GET  /healthz``              — liveness: status, resident indexes, uptime;
* ``GET  /stats``                — serving counters, cache counters, index list;
* ``GET  /metrics``              — latency histograms and serving counters in
  Prometheus text exposition format (the one non-JSON endpoint);
* ``GET  /slowlog``              — the retained slow-query records (ring
  buffer; enabled with ``slow_query_ms``);
* ``GET  /indexes``              — describe the resident indexes;
* ``POST /indexes``              — create an index from inline transactions or
  a transaction file (``{"name", "kind", "transactions" | "path", ...}``; an
  optional ``"shards": N`` partitions an OIF over N concurrently built
  shards);
* ``DELETE /indexes/<name>``     — drop an index (and, for durable indexes,
  its on-disk directory);
* ``POST /indexes/<name>/rebuild`` — rebuild and swap the index in place;
* ``POST /indexes/<name>/checkpoint`` — flush deltas and publish a new
  on-disk generation, truncating the index's write-ahead log
  (``{"force"?: bool}``; durable indexes only);
* ``POST /query``                — one query ``{"index", "type", "items"}``
  (or ``{"index", "expr"}``), with an optional ``"deadline_ms"`` wall-clock
  budget override;
* ``POST /batch``                — ``{"queries": [...]}``, answered
  concurrently, results in request order; ``"deadline_ms"`` applies per
  query or as a batch default;
* ``POST /update``               — insert and/or delete records
  (``{"index", "transactions"?, "deletes"?, "flush"?}``); affected cache
  entries drop, durable indexes write-ahead-log each change before acking.

Overload control: ``max_queue`` / ``max_inflight_per_index`` bound how much
work the executor will hold — excess requests are shed immediately with
``429`` and a ``Retry-After`` hint; ``default_deadline_ms`` arms a wall-clock
deadline per request (overridable with ``deadline_ms`` on the wire) and an
expired query answers ``408`` after stopping at its next page access.

With ``data_dir`` set, indexes are persisted under it and a restarted server
reopens every one of them at construction — pages loaded, WAL replayed — in
seconds, without the source datasets.  ``checkpoint_interval`` arms a
background thread that periodically checkpoints every durable index.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import unquote

from repro.core.query.expr import (
    And,
    Expr,
    Leaf,
    Limit,
    Not,
    Or,
    expr_from_dict,
    leaf_for,
)
from repro.core.records import Dataset
from repro.datasets.io import read_transactions
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    ServiceError,
    StorageError,
    UnknownIndexError,
)
from repro.obs import trace as obs_trace
from repro.obs.slowlog import SlowQueryLog
from repro.service.cache import ResultCache
from repro.service.executor import DEFAULT_WORKERS, QueryExecutor, QueryRequest
from repro.service.index_manager import IndexManager
from repro.service.stats import (
    CHECKPOINT_AGE,
    CHECKPOINTS_TOTAL,
    WAL_BYTES,
    WAL_REPLAYED_TOTAL,
    WAL_TORN_BYTES_TOTAL,
)

#: Request body ceiling — a 100K-transaction dataset fits comfortably.
MAX_BODY_BYTES = 64 * 1024 * 1024


def _stringify_items(expr: Expr) -> Expr:
    """Coerce every leaf's items to strings, mirroring the transaction ingest.

    Served datasets are built from JSON transactions whose items are
    stringified on the way in, so expression items must match.
    """
    if isinstance(expr, Leaf):
        return type(expr)(frozenset(str(item) for item in expr.items))
    if isinstance(expr, (And, Or)):
        return type(expr)(tuple(_stringify_items(child) for child in expr.operands))
    if isinstance(expr, Not):
        return Not(_stringify_items(expr.operand))
    if isinstance(expr, Limit):
        return Limit(_stringify_items(expr.operand), count=expr.count, offset=expr.offset)
    return expr


class ServiceServer:
    """Owns the serving components and the threaded HTTP front end."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        manager: "IndexManager | None" = None,
        cache: "ResultCache | None" = None,
        executor: "QueryExecutor | None" = None,
        max_workers: int = DEFAULT_WORKERS,
        cache_capacity: int = 4096,
        quiet: bool = True,
        slow_query_ms: "float | None" = None,
        slow_query_log: "str | None" = None,
        trace: bool = False,
        trace_sample: int = 1,
        data_dir: "str | None" = None,
        checkpoint_interval: "float | None" = None,
        fsync: str = "always",
        shard_backend: str = "threads",
        shard_workers: "int | None" = None,
        max_queue: "int | None" = None,
        max_inflight_per_index: "int | None" = None,
        default_deadline_ms: "float | None" = None,
    ) -> None:
        # One cache must serve both roles — executor lookups and manager
        # invalidation; a split pair would never see its entries invalidated.
        # A supplied executor is authoritative (its cache/manager are already
        # bound); otherwise adopt a supplied manager's cache.
        # Only a manager this server created itself is torn down on
        # shutdown; an externally supplied one (directly or via an executor)
        # may outlive the server, so its resources stay armed.
        self._owns_manager = executor is None and manager is None
        if data_dir is not None and not self._owns_manager:
            raise ServiceError(
                "'data_dir' configures the manager this server builds; an "
                "externally supplied manager/executor carries its own data_dir"
            )
        if shard_backend != "threads" and not self._owns_manager:
            raise ServiceError(
                "'shard_backend' configures the manager this server builds; "
                "set it on the supplied manager instead"
            )
        if executor is not None:
            if manager is not None and manager is not executor.manager:
                raise ServiceError(
                    "the supplied manager is not the one the executor is bound to"
                )
            if cache is not None and cache is not executor.cache:
                raise ServiceError(
                    "the supplied cache is not the one the executor is bound to"
                )
            self.executor = executor
            self.manager = executor.manager
            self.cache = executor.cache  # may be None: serving without a cache
        else:
            if cache is None and manager is not None and manager.result_cache is not None:
                cache = manager.result_cache
            self.cache = cache if cache is not None else ResultCache(capacity=cache_capacity)
            self.manager = manager if manager is not None else IndexManager(
                result_cache=self.cache,
                data_dir=data_dir,
                fsync=fsync,
                shard_backend=shard_backend,
                shard_workers=shard_workers,
            )
            self.executor = QueryExecutor(
                self.manager,
                cache=self.cache,
                max_workers=max_workers,
                slow_log=SlowQueryLog(threshold_ms=slow_query_ms, sink=slow_query_log),
                max_queue=max_queue,
                max_inflight_per_index=max_inflight_per_index,
                default_deadline_ms=default_deadline_ms,
            )
        self.manager.result_cache = self.cache
        self.slow_log = self.executor.slow_log
        if executor is not None and slow_query_ms is not None:
            # A supplied executor keeps its slow log; arm its threshold/sink.
            self.slow_log.threshold_ms = slow_query_ms
            if slow_query_log is not None:
                self.slow_log.sink = Path(slow_query_log)
        if executor is not None:
            # Same pattern for overload control: a supplied executor keeps
            # its admission controller; these parameters re-arm its bounds.
            if max_queue is not None:
                self.executor.admission.max_queue = max_queue
            if max_inflight_per_index is not None:
                self.executor.admission.max_inflight_per_index = max_inflight_per_index
            if default_deadline_ms is not None:
                self.executor.default_deadline_ms = default_deadline_ms
        if trace:
            obs_trace.configure(enabled=True, sample_every=trace_sample)
        #: Per-index recovery stats from opening the resident catalog (if any).
        self.recovered: list[dict] = []
        if self._owns_manager and self.manager.data_dir is not None:
            registry = self.executor.stats.registry
            self.recovered = self.manager.open_resident()
            for info in self.recovered:
                registry.counter(
                    WAL_REPLAYED_TOTAL,
                    "WAL records replayed during recovery",
                    index=info["name"],
                ).inc(info["wal_records_replayed"])
                if info["torn_bytes_truncated"]:
                    registry.counter(
                        WAL_TORN_BYTES_TOTAL,
                        "Torn WAL tail bytes truncated during recovery",
                        index=info["name"],
                    ).inc(info["torn_bytes_truncated"])
        self._checkpoint_interval = checkpoint_interval
        self._checkpoint_stop = threading.Event()
        self._checkpoint_thread: "threading.Thread | None" = None
        if checkpoint_interval:
            self._checkpoint_thread = threading.Thread(
                target=self._checkpoint_loop, name="repro-checkpoint", daemon=True
            )
            self._checkpoint_thread.start()
        self.started_at = time.time()
        handler = _make_handler(self, quiet=quiet)
        self._http = ThreadingHTTPServer((host, port), handler)
        self._http.daemon_threads = True
        self.host, self.port = self._http.server_address[:2]
        self._thread: "threading.Thread | None" = None
        self._serving = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or Ctrl-C upstream)."""
        self._serving = True
        self._http.serve_forever()

    def start(self) -> "ServiceServer":
        """Serve from a daemon thread (tests and embedded use); returns self."""
        if self._thread is not None:
            raise ServiceError("the server is already running")
        self._serving = True
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def _checkpoint_loop(self) -> None:
        """Periodically checkpoint every durable index (background daemon)."""
        while not self._checkpoint_stop.wait(self._checkpoint_interval):
            for entry in self.manager:
                # Re-check between entries: shutdown must not wait for a
                # whole sweep, only for the checkpoint already in flight.
                if self._checkpoint_stop.is_set():
                    return
                if not entry.is_durable or entry.dropped:
                    continue
                try:
                    result = entry.checkpoint()
                except ReproError:
                    continue  # e.g. the entry was dropped mid-iteration
                if not result.get("skipped"):
                    self.executor.stats.registry.counter(
                        CHECKPOINTS_TOTAL,
                        "Checkpoints published",
                        index=entry.name,
                        trigger="interval",
                    ).inc()

    def shutdown(self) -> None:
        """Stop the HTTP loop, close the socket and drain the executor."""
        self._checkpoint_stop.set()
        if self._checkpoint_thread is not None:
            # Wait without a timeout: a checkpoint caught mid-write must
            # finish before manager.close() tears the WAL handles down under
            # it — the per-entry stop re-check in the loop bounds the wait to
            # one in-flight checkpoint, not a whole sweep.
            self._checkpoint_thread.join()
            self._checkpoint_thread = None
        if self._serving:
            # BaseServer.shutdown() waits on an event only serve_forever()
            # sets — calling it on a never-started server hangs forever.
            self._http.shutdown()
            self._serving = False
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.executor.shutdown()
        if self._owns_manager:
            # Clean shutdown: checkpoints every durable index (so the next
            # open is a pure page load with an empty WAL) and releases the
            # WAL file handles.  An externally supplied manager may keep
            # serving after this server is gone, so it stays armed.
            self.manager.close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- endpoint implementations (called by the handler) ----------------------------

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "indexes": self.manager.names(),
            "uptime_seconds": round(time.time() - self.started_at, 3),
        }

    def stats(self) -> dict:
        return {
            "serving": self.executor.stats.as_dict(),
            "admission": self.executor.admission.snapshot(),
            "cache": self.cache.stats() if self.cache is not None else {"enabled": False},
            "indexes": self.manager.describe(),
        }

    def metrics(self) -> str:
        """The Prometheus text payload: serving instruments plus liveness gauges."""
        registry = self.executor.stats.registry
        registry.gauge(
            "repro_uptime_seconds", "Seconds since the server started"
        ).set(time.time() - self.started_at)
        registry.gauge(
            "repro_resident_indexes", "Number of resident indexes"
        ).set(len(self.manager.names()))
        self.executor.stats.set_queue_depth(self.executor.admission.queue_depth)
        if self.cache is not None:
            for key, value in self.cache.stats().items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    registry.gauge(
                        f"repro_result_cache_{key}", "Result cache statistic"
                    ).set(value)
        for entry in self.manager:
            if entry.is_durable and not entry.dropped:
                store = entry._handle.store
                registry.gauge(
                    CHECKPOINT_AGE,
                    "Seconds since the index's last checkpoint",
                    index=entry.name,
                ).set(store.checkpoint_age_seconds())
                registry.gauge(
                    WAL_BYTES,
                    "Write-ahead log size in bytes",
                    index=entry.name,
                ).set(sum(wal.size_bytes for wal in store._wals))
        return self.executor.stats.render_prometheus()

    def slowlog(self) -> dict:
        return self.slow_log.as_dict()

    def create_index(self, payload: dict) -> dict:
        name = payload.get("name")
        if not name or not isinstance(name, str):
            raise ServiceError("index creation needs a non-empty string 'name'")
        if "/" in name or name != name.strip():
            raise ServiceError(
                "index names must not contain '/' or leading/trailing whitespace"
            )
        kind = payload.get("kind", "oif")
        transactions = payload.get("transactions")
        path = payload.get("path")
        if (transactions is None) == (path is None):
            raise ServiceError(
                "index creation needs exactly one of 'transactions' or 'path'"
            )
        if path is not None:
            try:
                dataset = read_transactions(path)
            except OSError as error:
                # A bad path is a client mistake, not a server fault.
                raise ServiceError(f"cannot read transaction file: {error}") from error
        else:
            dataset = Dataset.from_transactions(self._transactions(payload))
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise ServiceError("'options' must be an object of index keyword arguments")
        if "shards" in payload:
            # Top-level convenience mirroring the CLI's --shards; validated
            # by the manager when the handle is built.
            if "shards" in options and options["shards"] != payload["shards"]:
                raise ServiceError(
                    "conflicting 'shards' values in the request body and 'options'"
                )
            options = {**options, "shards": payload["shards"]}
        provenance = (
            {"source": "path", "path": str(path)}
            if path is not None
            else {"source": "inline", "transactions": len(dataset)}
        )
        try:
            entry = self.manager.create(
                name, dataset, kind=kind, dataset_config=provenance, **options
            )
        except TypeError as error:
            # An unknown/invalid index option is a client mistake, not a
            # server fault — surface it as 400 with the constructor's message.
            raise ServiceError(f"invalid index options: {error}") from error
        return entry.describe()

    def checkpoint_index(self, name: str, payload: dict) -> dict:
        """Checkpoint one durable index on request (``POST .../checkpoint``)."""
        result = self.manager.checkpoint(name, force=bool(payload.get("force")))
        if not result.get("skipped"):
            self.executor.stats.registry.counter(
                CHECKPOINTS_TOTAL,
                "Checkpoints published",
                index=name,
                trigger="request",
            ).inc()
        return {"index": name, **result}

    def run_query(self, payload: dict) -> dict:
        request = QueryRequest.of(
            self._field(payload, "index"),
            self._expr(payload),
            deadline_ms=self._deadline_ms(payload),
        )
        return self.executor.submit_request(request).result().as_dict()

    def run_batch(self, payload: dict) -> dict:
        """Answer a batch concurrently.

        A batch whose first unserved query is shed fails as a whole with 429
        — partial answers over a single JSON response would be ambiguous.
        """
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise ServiceError("'queries' must be a non-empty list")
        default_index = payload.get("index")
        default_deadline = self._deadline_ms(payload)
        pairs = []
        for query in queries:
            if not isinstance(query, dict):
                raise ServiceError(
                    "each batch query must be an object with 'expr' or 'type'/'items'"
                )
            index = query.get("index", default_index)
            if not index:
                raise ServiceError("each batch query needs an 'index' (or a batch default)")
            deadline_ms = self._deadline_ms(query)
            pairs.append(
                QueryRequest.of(
                    index,
                    self._expr(query),
                    deadline_ms=deadline_ms if deadline_ms is not None else default_deadline,
                )
            )
        outcomes = self.executor.execute_batch(pairs)
        return {
            "count": len(outcomes),
            "results": [outcome.as_dict() for outcome in outcomes],
        }

    def update(self, payload: dict) -> dict:
        name = self._field(payload, "index")
        deletes = payload.get("deletes")
        if deletes is not None and (
            not isinstance(deletes, list)
            or not deletes
            or not all(
                isinstance(record_id, int) and not isinstance(record_id, bool)
                for record_id in deletes
            )
        ):
            raise ServiceError("'deletes' must be a non-empty list of record ids")
        if payload.get("transactions") is None and deletes is None:
            raise ServiceError("an update needs 'transactions' and/or 'deletes'")
        response: dict = {"index": name}
        if payload.get("transactions") is not None:
            new_ids = self.manager.insert(name, self._transactions(payload))
            response.update({"record_ids": new_ids, "inserted": len(new_ids)})
        if deletes is not None:
            removed = self.manager.get(name).delete(deletes)
            response["deleted"] = len(removed)
        if payload.get("flush"):
            report = self.manager.flush(name)
            if report is not None:
                response["flush"] = {
                    "records_merged": report.records_merged,
                    "merge_seconds": round(report.merge_seconds, 4),
                    "page_reads": report.page_reads,
                    "page_writes": report.page_writes,
                }
        return response

    @staticmethod
    def _transactions(payload: dict) -> list[frozenset]:
        """Validate and coerce a ``transactions`` payload into item sets."""
        transactions = payload.get("transactions")
        if not isinstance(transactions, list) or not transactions or not all(
            isinstance(transaction, list) for transaction in transactions
        ):
            raise ServiceError("'transactions' must be a non-empty list of item lists")
        return [
            frozenset(str(item) for item in transaction) for transaction in transactions
        ]

    @staticmethod
    def _deadline_ms(payload: dict) -> "float | None":
        """Parse the optional per-request ``deadline_ms`` wall-clock budget."""
        value = payload.get("deadline_ms")
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
            raise ServiceError("'deadline_ms' must be a positive number")
        return float(value)

    @staticmethod
    def _field(payload: dict, key: str) -> str:
        value = payload.get(key)
        if not value or not isinstance(value, str):
            raise ServiceError(f"request needs a non-empty string {key!r}")
        return value

    @staticmethod
    def _items(payload: dict) -> frozenset:
        items = payload.get("items")
        if not isinstance(items, list) or not items:
            raise ServiceError("'items' must be a non-empty list of query items")
        return frozenset(str(item) for item in items)

    @classmethod
    def _expr(cls, payload: dict) -> Expr:
        """Parse one query payload: an ``expr`` tree or legacy ``type``/``items``."""
        wire = payload.get("expr")
        if wire is not None:
            if "type" in payload or "items" in payload:
                raise ServiceError("pass either 'expr' or 'type'/'items', not both")
            return _stringify_items(expr_from_dict(wire))
        return leaf_for(cls._field(payload, "type"), cls._items(payload))


def _make_handler(service: ServiceServer, quiet: bool) -> type:
    """Build the request-handler class bound to one :class:`ServiceServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-oif"

        # -- plumbing ----------------------------------------------------------------

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            if not quiet:
                super().log_message(format, *args)

        def _send(
            self, status: int, payload: dict, headers: "dict | None" = None
        ) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, text: str, content_type: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(
            self,
            status: int,
            message: str,
            *,
            error_type: "str | None" = None,
            retry_after: "float | None" = None,
            reason: "str | None" = None,
        ) -> None:
            payload: dict = {"error": message}
            if error_type is not None:
                payload["error_type"] = error_type
            if reason is not None:
                payload["reason"] = reason
            headers = None
            if retry_after is not None:
                payload["retry_after"] = round(retry_after, 3)
                # Decimal seconds (our client parses floats); sub-second
                # backoff hints would round to a useless 0 or a 20x-too-long
                # 1 as the spec's integer delta-seconds.
                headers = {"Retry-After": f"{retry_after:.3f}"}
            self._send(status, payload, headers)

        def _body(self) -> dict:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                self.close_connection = True
                raise ServiceError("malformed Content-Length header") from None
            if length < 0:
                # rfile.read(-1) would block until the peer closes, pinning
                # the connection thread.
                self.close_connection = True
                raise ServiceError("malformed Content-Length header") from None
            if length > MAX_BODY_BYTES:
                # The body is left unread, which would desync a keep-alive
                # connection's next request — force this connection closed.
                self.close_connection = True
                raise ServiceError(f"request body of {length} bytes is too large")
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as error:
                raise ServiceError(f"malformed JSON body: {error}") from None
            if not isinstance(payload, dict):
                raise ServiceError("the request body must be a JSON object")
            return payload

        def _dispatch(self, route) -> None:
            # Ordered most-specific first; every branch names the error type
            # in the body so the client can raise a typed exception without
            # sniffing messages.
            try:
                self._send(200, route())
            except OverloadedError as error:
                self._error(
                    429,
                    str(error),
                    error_type="overloaded",
                    retry_after=error.retry_after,
                    reason=error.reason,
                )
            except DeadlineExceededError as error:
                self._error(408, str(error), error_type="deadline_exceeded")
            except UnknownIndexError as error:
                self._error(404, str(error), error_type="unknown_index")
            except StorageError as error:
                # A storage failure is the server's fault, not the client's.
                self._error(500, f"storage failure: {error}", error_type="storage")
            except ReproError as error:
                self._error(400, str(error), error_type=type(error).__name__)
            except Exception as error:  # pragma: no cover - defensive
                self._error(500, f"internal error: {error}", error_type="internal")

        # -- verbs -------------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802
            if self.path == "/healthz":
                self._dispatch(service.healthz)
            elif self.path == "/stats":
                self._dispatch(service.stats)
            elif self.path == "/metrics":
                try:
                    text = service.metrics()
                except Exception as error:  # pragma: no cover - defensive
                    self._error(500, f"internal error: {error}")
                else:
                    # Prometheus scrapers expect the text exposition format,
                    # not JSON (version suffix per the 0.0.4 spec).
                    self._send_text(200, text, "text/plain; version=0.0.4")
            elif self.path == "/slowlog":
                self._dispatch(service.slowlog)
            elif self.path == "/indexes":
                self._dispatch(lambda: {"indexes": service.manager.describe()})
            else:
                self._error(404, f"unknown path {self.path!r}")

        def do_POST(self) -> None:  # noqa: N802
            try:
                payload = self._body()
            except ServiceError as error:
                self._error(400, str(error))
                return
            if self.path == "/indexes":
                self._dispatch(lambda: service.create_index(payload))
            elif self.path == "/query":
                self._dispatch(lambda: service.run_query(payload))
            elif self.path == "/batch":
                self._dispatch(lambda: service.run_batch(payload))
            elif self.path == "/update":
                self._dispatch(lambda: service.update(payload))
            elif self.path.startswith("/indexes/") and self.path.endswith("/rebuild"):
                name = unquote(self.path[len("/indexes/"):-len("/rebuild")])
                self._dispatch(lambda: service.manager.rebuild(name).describe())
            elif self.path.startswith("/indexes/") and self.path.endswith("/checkpoint"):
                name = unquote(self.path[len("/indexes/"):-len("/checkpoint")])
                self._dispatch(lambda: service.checkpoint_index(name, payload))
            else:
                self._error(404, f"unknown path {self.path!r}")

        def do_DELETE(self) -> None:  # noqa: N802
            try:
                self._body()  # drain any body so keep-alive stays in sync
            except ServiceError as error:
                self._error(400, str(error))
                return
            if self.path.startswith("/indexes/"):
                name = unquote(self.path[len("/indexes/"):])

                def _drop() -> dict:
                    service.manager.drop(name)
                    return {"dropped": name}

                self._dispatch(_drop)
            else:
                self._error(404, f"unknown path {self.path!r}")

    return Handler
