"""Query-serving subsystem: resident indexes, concurrent execution, caching.

The experiment harness answers queries one-shot and exits; this package turns
the same indexes into a long-lived service:

* :class:`IndexManager` keeps named indexes resident with per-index locks and
  a build-outside-the-lock rebuild/swap path;
* :class:`QueryExecutor` fans queries out over a thread pool, deduplicates
  identical in-flight queries and tracks latency/page-access stats;
* :class:`ResultCache` is an LRU over query results with predicate-aware
  invalidation wired to the update path of :mod:`repro.core.updates`;
* :class:`ServiceServer` / :class:`ServiceClient` expose it all over
  JSON-over-HTTP (stdlib only) — see ``repro-oif serve`` and
  ``repro-oif client``.
"""

from repro.service.cache import CacheKey, ResultCache, make_key
from repro.service.index_manager import INDEX_KINDS, IndexManager, ManagedIndex

#: Heavier modules (thread pool, HTTP server/client) resolve lazily (PEP
#: 562), so importing the package for its light pieces — e.g. the CLI needs
#: only ``INDEX_KINDS`` to build its parser — stays cheap.
_LAZY_EXPORTS = {
    "AdmissionController": "admission",
    "QueryExecutor": "executor",
    "QueryOutcome": "executor",
    "QueryRequest": "executor",
    "ServiceClient": "client",
    "ServiceServer": "server",
    "LatencyRecorder": "stats",
    "ServingStats": "stats",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f"repro.service.{module_name}"), name)


__all__ = [
    "AdmissionController",
    "CacheKey",
    "INDEX_KINDS",
    "IndexManager",
    "LatencyRecorder",
    "ManagedIndex",
    "QueryExecutor",
    "QueryOutcome",
    "QueryRequest",
    "ResultCache",
    "ServiceClient",
    "ServiceServer",
    "ServingStats",
    "make_key",
]
