"""Small stdlib HTTP client for the query-serving subsystem.

:class:`ServiceClient` mirrors the server's endpoints one method per route.
Connections are **persistent**: each thread keeps one
:class:`http.client.HTTPConnection` alive and pipelines its requests over it
(HTTP/1.1 keep-alive), so benchmark loops measure the server rather than TCP
setup.  The per-thread connection (``threading.local``) keeps the client
thread-safe without any locking; a request that fails on a *reused*
connection — the server may close an idle keep-alive at any time — is
retried once on a fresh one.  Error responses surface as
:class:`~repro.errors.ServiceError` with the server-provided message.
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection, HTTPException
from typing import Iterable, Sequence
from urllib.parse import quote

from repro.errors import ServiceError


class ServiceClient:
    """Python-side handle on a running :class:`~repro.service.server.ServiceServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._local = threading.local()

    # -- transport -------------------------------------------------------------------

    def _connection(self) -> tuple[HTTPConnection, bool]:
        """This thread's live connection; True when it is freshly opened."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection, False
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        self._local.connection = connection
        return connection, True

    def _discard_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        self._local.connection = None
        if connection is not None:
            connection.close()

    def close(self) -> None:
        """Close this thread's persistent connection (others close on GC)."""
        self._discard_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, payload: "dict | None" = None) -> dict:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        connection, fresh = self._connection()
        try:
            connection.request(method, path, body=body, headers=headers)
        except (OSError, HTTPException) as error:
            # Failed while *sending*: the server never processed the request,
            # so one retry on a fresh connection is safe for any method (the
            # usual cause is a keep-alive the server closed while idle).
            self._discard_connection()
            if not fresh:
                return self._request(method, path, payload)
            raise ServiceError(
                f"cannot reach {self.host}:{self.port}: {error}"
            ) from error
        try:
            response = connection.getresponse()
            raw = response.read()
        except (OSError, HTTPException) as error:
            self._discard_connection()
            if not fresh and method == "GET":
                # The request may already have been processed server-side, so
                # only idempotent reads are replayed; retrying a POST/DELETE
                # here could apply a mutation twice.
                return self._request(method, path, payload)
            # HTTPException covers non-HTTP peers (BadStatusLine etc.), so
            # every transport failure surfaces as one catchable ServiceError.
            raise ServiceError(
                f"cannot reach {self.host}:{self.port}: {error}"
            ) from error
        if response.will_close:
            self._discard_connection()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            raise ServiceError(
                f"{method} {path}: non-JSON response (HTTP {response.status})"
            ) from None
        if response.status >= 400:
            message = decoded.get("error", raw.decode("utf-8", "replace"))
            raise ServiceError(f"{method} {path}: {message}")
        return decoded

    def _request_text(self, path: str) -> str:
        """GET a non-JSON endpoint (``/metrics``) as raw text."""
        connection, fresh = self._connection()
        try:
            connection.request("GET", path)
        except (OSError, HTTPException) as error:
            self._discard_connection()
            if not fresh:
                return self._request_text(path)
            raise ServiceError(
                f"cannot reach {self.host}:{self.port}: {error}"
            ) from error
        try:
            response = connection.getresponse()
            raw = response.read()
        except (OSError, HTTPException) as error:
            self._discard_connection()
            if not fresh:
                return self._request_text(path)
            raise ServiceError(
                f"cannot reach {self.host}:{self.port}: {error}"
            ) from error
        if response.will_close:
            self._discard_connection()
        text = raw.decode("utf-8", "replace")
        if response.status >= 400:
            raise ServiceError(f"GET {path}: {text.strip()}")
        return text

    # -- endpoints -------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """The server's Prometheus text exposition payload."""
        return self._request_text("/metrics")

    def slowlog(self) -> dict:
        return self._request("GET", "/slowlog")

    def indexes(self) -> list[dict]:
        return self._request("GET", "/indexes")["indexes"]

    def create_index(
        self,
        name: str,
        *,
        transactions: "Sequence[Iterable] | None" = None,
        path: "str | None" = None,
        kind: str = "oif",
        shards: "int | None" = None,
        **options,
    ) -> dict:
        payload: dict = {"name": name, "kind": kind}
        if transactions is not None:
            payload["transactions"] = [sorted(str(item) for item in t) for t in transactions]
        if path is not None:
            payload["path"] = path
        if shards is not None:
            payload["shards"] = shards
        if options:
            payload["options"] = options
        return self._request("POST", "/indexes", payload)

    def drop_index(self, name: str) -> dict:
        return self._request("DELETE", f"/indexes/{quote(name, safe='')}")

    def rebuild_index(self, name: str) -> dict:
        return self._request("POST", f"/indexes/{quote(name, safe='')}/rebuild", {})

    def checkpoint(self, name: str, *, force: bool = False) -> dict:
        """Flush deltas and publish a new on-disk generation (durable indexes)."""
        return self._request(
            "POST", f"/indexes/{quote(name, safe='')}/checkpoint", {"force": force}
        )

    def query(self, index: str, query_type: str, items: Iterable) -> dict:
        return self._request(
            "POST",
            "/query",
            {"index": index, "type": query_type, "items": [str(item) for item in items]},
        )

    def query_expr(self, index: str, expr) -> dict:
        """Run one composite query expression.

        ``expr`` is a :class:`~repro.core.query.expr.Expr` or its wire-format
        dict (the server parses either shape of the ``expr`` payload).
        """
        wire = expr.to_dict() if hasattr(expr, "to_dict") else expr
        return self._request("POST", "/query", {"index": index, "expr": wire})

    def batch(
        self, queries: Sequence[dict], *, index: "str | None" = None
    ) -> list[dict]:
        """Run many queries at once; each dict holds ``expr`` or ``type``/``items``
        (plus an optional per-query ``index``)."""
        payload: dict = {"queries": list(queries)}
        if index is not None:
            payload["index"] = index
        return self._request("POST", "/batch", payload)["results"]

    def insert(
        self, index: str, transactions: Sequence[Iterable], *, flush: bool = False
    ) -> dict:
        return self._request(
            "POST",
            "/update",
            {
                "index": index,
                "transactions": [sorted(str(item) for item in t) for t in transactions],
                "flush": flush,
            },
        )

    def delete(
        self, index: str, record_ids: Sequence[int], *, flush: bool = False
    ) -> dict:
        """Delete records by id; the server tombstones them until the next merge."""
        return self._request(
            "POST",
            "/update",
            {"index": index, "deletes": list(record_ids), "flush": flush},
        )
