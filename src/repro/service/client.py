"""Small stdlib HTTP client for the query-serving subsystem.

:class:`ServiceClient` mirrors the server's endpoints one method per route.
Connections are **persistent**: each thread keeps one
:class:`http.client.HTTPConnection` alive and pipelines its requests over it
(HTTP/1.1 keep-alive), so benchmark loops measure the server rather than TCP
setup.  The per-thread connection (``threading.local``) keeps the client
thread-safe without any locking.

Failure semantics:

* non-2xx responses raise **typed** exceptions carrying the status:
  :class:`~repro.errors.ServiceOverloadedError` for 429 (with the server's
  ``Retry-After`` hint), :class:`~repro.errors.ServiceTimeoutError` for 408,
  :class:`~repro.errors.ServiceHTTPError` otherwise — all subclasses of
  :class:`~repro.errors.ServiceError`, so broad handlers keep working;
* a request that fails in transit on a *reused* connection (the server may
  close an idle keep-alive at any time) is retried once on a fresh
  connection — but only for **idempotent reads** (``GET``, ``/query``,
  ``/batch``).  A non-idempotent ``/update`` is never re-sent: the server
  may have received and applied it even though the send appeared to fail,
  and replaying it would double the mutation.  It fails fast instead, with
  the ambiguity spelled out;
* 429 sheds are retried with capped, jittered exponential backoff that
  honors the server's ``Retry-After`` hint — again only for idempotent
  reads, and at most ``max_retries`` times;
* a per-request ``timeout`` overrides the client-wide default; a timed-out
  request is *not* retried (it may still be executing server-side, and
  re-sending doubles the load exactly when the server is slow).
"""

from __future__ import annotations

import json
import random
import threading
import time
from http.client import HTTPConnection, HTTPException
from typing import Iterable, Sequence
from urllib.parse import quote

from repro.errors import (
    ServiceError,
    ServiceHTTPError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)


class ServiceClient:
    """Python-side handle on a running :class:`~repro.service.server.ServiceServer`.

    Parameters
    ----------
    timeout:
        Default per-request socket timeout in seconds.
    max_retries:
        Backoff retries for 429-shed idempotent reads (0 disables).
    backoff_base / backoff_cap:
        Exponential backoff schedule in seconds: attempt *n* waits
        ``min(cap, max(base * 2**n, server Retry-After hint))``, jittered
        down by up to 50% to spread synchronized retriers.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        *,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        if max_retries < 0:
            raise ServiceError(f"max_retries must be >= 0, got {max_retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._local = threading.local()

    # -- transport -------------------------------------------------------------------

    def _connection(self, timeout: "float | None") -> tuple[HTTPConnection, bool]:
        """This thread's live connection; True when it is freshly opened."""
        effective = self.timeout if timeout is None else timeout
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            if connection.timeout != effective:
                connection.timeout = effective
                if connection.sock is not None:
                    connection.sock.settimeout(effective)
            return connection, False
        connection = HTTPConnection(self.host, self.port, timeout=effective)
        self._local.connection = connection
        return connection, True

    def _discard_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        self._local.connection = None
        if connection is not None:
            connection.close()

    def close(self) -> None:
        """Close this thread's persistent connection (others close on GC)."""
        self._discard_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _idempotent(method: str, path: str) -> bool:
        """Whether a request may safely be sent twice.

        Queries are reads however they travel (the server answers ``POST
        /query`` / ``POST /batch`` without mutating anything); ``/update``
        and the index-management routes are not.
        """
        return method == "GET" or (method == "POST" and path in ("/query", "/batch"))

    def _request(
        self,
        method: str,
        path: str,
        payload: "dict | None" = None,
        *,
        timeout: "float | None" = None,
    ) -> dict:
        idempotent = self._idempotent(method, path)
        attempt = 0
        while True:
            try:
                return self._request_once(
                    method, path, payload, timeout=timeout, idempotent=idempotent
                )
            except ServiceOverloadedError as error:
                if not idempotent or attempt >= self.max_retries:
                    raise
                delay = self.backoff_base * (2.0**attempt)
                if error.retry_after is not None:
                    delay = max(delay, error.retry_after)
                delay = min(self.backoff_cap, delay)
                # Jitter down by up to 50%: synchronized shed clients must
                # not come back as one synchronized retry wave.
                time.sleep(delay * (0.5 + random.random() * 0.5))
                attempt += 1

    def _request_once(
        self,
        method: str,
        path: str,
        payload: "dict | None",
        *,
        timeout: "float | None",
        idempotent: bool,
        retried: bool = False,
    ) -> dict:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        connection, fresh = self._connection(timeout)
        try:
            connection.request(method, path, body=body, headers=headers)
        except (OSError, HTTPException) as error:
            self._discard_connection()
            if isinstance(error, TimeoutError):
                raise ServiceError(
                    f"{method} {path}: timed out sending the request"
                ) from error
            # Failed while *sending* — usually a keep-alive the server closed
            # while idle.  The server may nonetheless have received (part of)
            # the request before the failure surfaced here, so only
            # idempotent reads are replayed on a fresh connection; a mutation
            # fails fast rather than risk being applied twice.
            if not fresh and not retried:
                if idempotent:
                    return self._request_once(
                        method, path, payload,
                        timeout=timeout, idempotent=idempotent, retried=True,
                    )
                raise ServiceError(
                    f"{method} {path}: the persistent connection failed "
                    f"mid-send ({error}); the request is NOT retried because "
                    "the server may already have applied it — verify before "
                    "re-sending"
                ) from error
            raise ServiceError(
                f"cannot reach {self.host}:{self.port}: {error}"
            ) from error
        try:
            response = connection.getresponse()
            raw = response.read()
        except (OSError, HTTPException) as error:
            self._discard_connection()
            if isinstance(error, TimeoutError):
                # The request may still be executing server-side; re-sending
                # doubles the load exactly when the server is slowest.
                raise ServiceError(
                    f"{method} {path}: timed out waiting for the response"
                ) from error
            if not fresh and not retried and idempotent:
                # The request may already have been processed server-side, so
                # only idempotent reads are replayed; re-sending a mutation
                # here could apply it twice.
                return self._request_once(
                    method, path, payload,
                    timeout=timeout, idempotent=idempotent, retried=True,
                )
            # HTTPException covers non-HTTP peers (BadStatusLine etc.), so
            # every transport failure surfaces as one catchable ServiceError.
            raise ServiceError(
                f"cannot reach {self.host}:{self.port}: {error}"
            ) from error
        retry_after = self._retry_after(response)
        if response.will_close:
            self._discard_connection()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            raise ServiceError(
                f"{method} {path}: non-JSON response (HTTP {response.status})"
            ) from None
        if response.status >= 400:
            message = decoded.get("error", raw.decode("utf-8", "replace"))
            full = f"{method} {path}: {message}"
            if response.status == 429:
                raise ServiceOverloadedError(
                    full, status=429, retry_after=retry_after
                )
            if response.status == 408:
                raise ServiceTimeoutError(full, status=408)
            raise ServiceHTTPError(full, status=response.status)
        return decoded

    @staticmethod
    def _retry_after(response) -> "float | None":
        header = response.getheader("Retry-After")
        if header is None:
            return None
        try:
            return float(header)
        except ValueError:
            return None

    def _request_text(self, path: str, retried: bool = False) -> str:
        """GET a non-JSON endpoint (``/metrics``) as raw text."""
        connection, fresh = self._connection(None)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            raw = response.read()
        except (OSError, HTTPException) as error:
            self._discard_connection()
            if not fresh and not retried:
                return self._request_text(path, retried=True)
            raise ServiceError(
                f"cannot reach {self.host}:{self.port}: {error}"
            ) from error
        if response.will_close:
            self._discard_connection()
        text = raw.decode("utf-8", "replace")
        if response.status >= 400:
            raise ServiceHTTPError(f"GET {path}: {text.strip()}", status=response.status)
        return text

    # -- endpoints -------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """The server's Prometheus text exposition payload."""
        return self._request_text("/metrics")

    def slowlog(self) -> dict:
        return self._request("GET", "/slowlog")

    def indexes(self) -> list[dict]:
        return self._request("GET", "/indexes")["indexes"]

    def create_index(
        self,
        name: str,
        *,
        transactions: "Sequence[Iterable] | None" = None,
        path: "str | None" = None,
        kind: str = "oif",
        shards: "int | None" = None,
        **options,
    ) -> dict:
        payload: dict = {"name": name, "kind": kind}
        if transactions is not None:
            payload["transactions"] = [sorted(str(item) for item in t) for t in transactions]
        if path is not None:
            payload["path"] = path
        if shards is not None:
            payload["shards"] = shards
        if options:
            payload["options"] = options
        return self._request("POST", "/indexes", payload)

    def drop_index(self, name: str) -> dict:
        return self._request("DELETE", f"/indexes/{quote(name, safe='')}")

    def rebuild_index(self, name: str) -> dict:
        return self._request("POST", f"/indexes/{quote(name, safe='')}/rebuild", {})

    def checkpoint(self, name: str, *, force: bool = False) -> dict:
        """Flush deltas and publish a new on-disk generation (durable indexes)."""
        return self._request(
            "POST", f"/indexes/{quote(name, safe='')}/checkpoint", {"force": force}
        )

    def query(
        self,
        index: str,
        query_type: str,
        items: Iterable,
        *,
        deadline_ms: "float | None" = None,
        timeout: "float | None" = None,
    ) -> dict:
        payload: dict = {
            "index": index,
            "type": query_type,
            "items": [str(item) for item in items],
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._request("POST", "/query", payload, timeout=timeout)

    def query_expr(
        self,
        index: str,
        expr,
        *,
        deadline_ms: "float | None" = None,
        timeout: "float | None" = None,
    ) -> dict:
        """Run one composite query expression.

        ``expr`` is a :class:`~repro.core.query.expr.Expr` or its wire-format
        dict (the server parses either shape of the ``expr`` payload).
        """
        wire = expr.to_dict() if hasattr(expr, "to_dict") else expr
        payload: dict = {"index": index, "expr": wire}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._request("POST", "/query", payload, timeout=timeout)

    def batch(
        self,
        queries: Sequence[dict],
        *,
        index: "str | None" = None,
        deadline_ms: "float | None" = None,
        timeout: "float | None" = None,
    ) -> list[dict]:
        """Run many queries at once; each dict holds ``expr`` or ``type``/``items``
        (plus an optional per-query ``index`` and ``deadline_ms``)."""
        payload: dict = {"queries": list(queries)}
        if index is not None:
            payload["index"] = index
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._request("POST", "/batch", payload, timeout=timeout)["results"]

    def insert(
        self, index: str, transactions: Sequence[Iterable], *, flush: bool = False
    ) -> dict:
        return self._request(
            "POST",
            "/update",
            {
                "index": index,
                "transactions": [sorted(str(item) for item in t) for t in transactions],
                "flush": flush,
            },
        )

    def delete(
        self, index: str, record_ids: Sequence[int], *, flush: bool = False
    ) -> dict:
        """Delete records by id; the server tombstones them until the next merge."""
        return self._request(
            "POST",
            "/update",
            {"index": index, "deletes": list(record_ids), "flush": flush},
        )
