"""Small stdlib HTTP client for the query-serving subsystem.

:class:`ServiceClient` mirrors the server's endpoints one method per route.
Each call opens a fresh :class:`http.client.HTTPConnection`, which keeps the
client trivially thread-safe (the server reuses worker threads either way).
Error responses surface as :class:`~repro.errors.ServiceError` with the
server-provided message.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException
from typing import Iterable, Sequence
from urllib.parse import quote

from repro.errors import ServiceError


class ServiceClient:
    """Python-side handle on a running :class:`~repro.service.server.ServiceServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -------------------------------------------------------------------

    def _request(self, method: str, path: str, payload: "dict | None" = None) -> dict:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                raise ServiceError(
                    f"{method} {path}: non-JSON response (HTTP {response.status})"
                ) from None
            if response.status >= 400:
                message = decoded.get("error", raw.decode("utf-8", "replace"))
                raise ServiceError(f"{method} {path}: {message}")
            return decoded
        except ServiceError:
            raise
        except (OSError, HTTPException) as error:
            # HTTPException covers non-HTTP peers (BadStatusLine etc.), so
            # every transport failure surfaces as one catchable ServiceError.
            raise ServiceError(
                f"cannot reach {self.host}:{self.port}: {error}"
            ) from error
        finally:
            connection.close()

    # -- endpoints -------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def indexes(self) -> list[dict]:
        return self._request("GET", "/indexes")["indexes"]

    def create_index(
        self,
        name: str,
        *,
        transactions: "Sequence[Iterable] | None" = None,
        path: "str | None" = None,
        kind: str = "oif",
        shards: "int | None" = None,
        **options,
    ) -> dict:
        payload: dict = {"name": name, "kind": kind}
        if transactions is not None:
            payload["transactions"] = [sorted(str(item) for item in t) for t in transactions]
        if path is not None:
            payload["path"] = path
        if shards is not None:
            payload["shards"] = shards
        if options:
            payload["options"] = options
        return self._request("POST", "/indexes", payload)

    def drop_index(self, name: str) -> dict:
        return self._request("DELETE", f"/indexes/{quote(name, safe='')}")

    def rebuild_index(self, name: str) -> dict:
        return self._request("POST", f"/indexes/{quote(name, safe='')}/rebuild", {})

    def query(self, index: str, query_type: str, items: Iterable) -> dict:
        return self._request(
            "POST",
            "/query",
            {"index": index, "type": query_type, "items": [str(item) for item in items]},
        )

    def query_expr(self, index: str, expr) -> dict:
        """Run one composite query expression.

        ``expr`` is a :class:`~repro.core.query.expr.Expr` or its wire-format
        dict (the server parses either shape of the ``expr`` payload).
        """
        wire = expr.to_dict() if hasattr(expr, "to_dict") else expr
        return self._request("POST", "/query", {"index": index, "expr": wire})

    def batch(
        self, queries: Sequence[dict], *, index: "str | None" = None
    ) -> list[dict]:
        """Run many queries at once; each dict holds ``expr`` or ``type``/``items``
        (plus an optional per-query ``index``)."""
        payload: dict = {"queries": list(queries)}
        if index is not None:
            payload["index"] = index
        return self._request("POST", "/batch", payload)["results"]

    def insert(
        self, index: str, transactions: Sequence[Iterable], *, flush: bool = False
    ) -> dict:
        return self._request(
            "POST",
            "/update",
            {
                "index": index,
                "transactions": [sorted(str(item) for item in t) for t in transactions],
                "flush": flush,
            },
        )
