"""Admission control for the serving hot path: bounded queue, load shedding.

An unbounded executor queue turns overload into unbounded latency: every
request is eventually answered, long after its sender stopped caring, and the
backlog grows without limit.  The :class:`AdmissionController` puts an
explicit bound on how much work the serving layer will *hold* and sheds the
excess immediately with a retry hint, so an overloaded server degrades into
bounded-latency service for the requests it accepts plus fast, honest ``429``
rejections for the rest.

Two gates run at submit time, before a request touches the thread pool:

* **queue bound** — at most ``max_queue`` admitted requests may be held
  beyond worker capacity (admitted minus ``workers``, i.e. the executor's
  backlog).  A full queue sheds with reason ``"queue_full"``;
* **per-index concurrency** — at most ``max_inflight_per_index`` admitted
  requests (queued or running) may target one index, so a single hot index
  cannot starve every other tenant of the shared pool.  Breaching it sheds
  with reason ``"index_limit"``.

A shed raises :class:`~repro.errors.OverloadedError` carrying a
``retry_after`` hint in seconds, derived from the EWMA of observed
*executed* service times scaled by the current backlog: roughly "how long
until the queue has drained enough to admit you".  The HTTP layer maps it to
``429`` with a ``Retry-After`` header; :class:`~repro.service.client.ServiceClient`
honors the hint in its backoff.

Cache and dedup hits bypass admission entirely — they are answered inline
(or piggyback on an already-admitted evaluation) and never occupy a worker,
so shedding them would throw away free capacity.
"""

from __future__ import annotations

import threading

from repro.errors import OverloadedError

#: Fallback service-time guess (seconds) before the EWMA has any sample.
_DEFAULT_SERVICE_TIME_S = 0.05

#: EWMA smoothing factor: ~63% of the weight sits on the last ~10 samples.
_EWMA_ALPHA = 0.1

#: Bounds on the Retry-After hint (seconds).
_MIN_RETRY_AFTER = 0.05
_MAX_RETRY_AFTER = 30.0


class AdmissionController:
    """Bounded admission for a :class:`~repro.service.executor.QueryExecutor`.

    Parameters
    ----------
    workers:
        Worker-thread count of the executor this controller guards; admitted
        requests beyond this number are the *queue*.
    max_queue:
        Maximum queued (admitted but not yet running) requests before
        shedding; ``None`` disables the queue bound.
    max_inflight_per_index:
        Maximum admitted requests per target index; ``None`` disables the
        per-index gate.
    """

    def __init__(
        self,
        workers: int,
        *,
        max_queue: "int | None" = None,
        max_inflight_per_index: "int | None" = None,
    ) -> None:
        if max_queue is not None and max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if max_inflight_per_index is not None and max_inflight_per_index < 1:
            raise ValueError(
                f"max_inflight_per_index must be >= 1, got {max_inflight_per_index}"
            )
        self.workers = max(1, workers)
        self.max_queue = max_queue
        self.max_inflight_per_index = max_inflight_per_index
        self._lock = threading.Lock()
        self._admitted = 0
        self._running = 0
        self._per_index: dict[str, int] = {}
        self._shed: dict[str, int] = {}
        self._service_time_s = _DEFAULT_SERVICE_TIME_S
        self._samples = 0

    # -- the gates ---------------------------------------------------------------------

    def admit(self, index: str) -> None:
        """Admit one request for ``index`` or shed it.

        Raises :class:`~repro.errors.OverloadedError` (with ``reason`` and a
        ``retry_after`` hint) when a gate rejects; on success the caller owns
        one slot and must eventually pair this call with :meth:`release`.
        """
        with self._lock:
            # Backlog is measured against worker *capacity*, not the running
            # count: a worker calls started() only once it picks the task up,
            # and gating on that transient would shed requests a free worker
            # was about to serve.
            queued = self._admitted - self.workers
            if self.max_queue is not None and queued >= self.max_queue:
                self._shed["queue_full"] = self._shed.get("queue_full", 0) + 1
                hint = self._retry_after_locked()
                raise OverloadedError(
                    f"admission queue is full ({queued} waiting, bound "
                    f"{self.max_queue}); retry after {hint:.2f}s",
                    reason="queue_full",
                    retry_after=hint,
                )
            held = self._per_index.get(index, 0)
            if (
                self.max_inflight_per_index is not None
                and held >= self.max_inflight_per_index
            ):
                self._shed["index_limit"] = self._shed.get("index_limit", 0) + 1
                hint = self._retry_after_locked()
                raise OverloadedError(
                    f"index {index!r} already has {held} requests in flight "
                    f"(bound {self.max_inflight_per_index}); retry after "
                    f"{hint:.2f}s",
                    reason="index_limit",
                    retry_after=hint,
                )
            self._admitted += 1
            self._per_index[index] = held + 1

    def started(self) -> None:
        """An admitted request began executing (left the queue)."""
        with self._lock:
            self._running += 1

    def release(
        self, index: str, *, started: bool, service_time_s: "float | None" = None
    ) -> None:
        """Free the slot taken by :meth:`admit`.

        ``started`` says whether the paired :meth:`started` call happened
        (a request shed between admit and execution never did).
        ``service_time_s`` feeds the Retry-After EWMA; pass it only for
        requests that actually executed to completion — expired or failed
        requests would drag the estimate toward their truncated times.
        """
        with self._lock:
            self._admitted = max(0, self._admitted - 1)
            if started:
                self._running = max(0, self._running - 1)
            held = self._per_index.get(index, 0) - 1
            if held > 0:
                self._per_index[index] = held
            else:
                self._per_index.pop(index, None)
            if service_time_s is not None and service_time_s >= 0.0:
                self._samples += 1
                if self._samples == 1:
                    self._service_time_s = service_time_s
                else:
                    self._service_time_s += _EWMA_ALPHA * (
                        service_time_s - self._service_time_s
                    )

    # -- readout -----------------------------------------------------------------------

    def _retry_after_locked(self) -> float:
        # "Time until the backlog drains": one queue's worth of work spread
        # over the worker pool, floored/capped to keep the hint sane.
        queued = max(1, self._admitted - self.workers)
        hint = self._service_time_s * queued / self.workers
        return min(_MAX_RETRY_AFTER, max(_MIN_RETRY_AFTER, hint))

    def retry_after(self) -> float:
        """The current Retry-After hint in seconds."""
        with self._lock:
            return self._retry_after_locked()

    @property
    def queue_depth(self) -> int:
        """Admitted requests beyond worker capacity (the held backlog)."""
        with self._lock:
            return max(0, self._admitted - self.workers)

    @property
    def running(self) -> int:
        with self._lock:
            return self._running

    @property
    def shed_total(self) -> int:
        with self._lock:
            return sum(self._shed.values())

    def snapshot(self) -> dict:
        """JSON-friendly state for ``/stats``."""
        with self._lock:
            return {
                "max_queue": self.max_queue,
                "max_inflight_per_index": self.max_inflight_per_index,
                "queue_depth": max(0, self._admitted - self.workers),
                "running": self._running,
                "per_index_inflight": dict(self._per_index),
                "shed": dict(self._shed),
                "service_time_ewma_ms": round(self._service_time_s * 1000.0, 4),
                "retry_after_s": round(self._retry_after_locked(), 4),
            }
