"""Service-side metrics: latency histograms and serving counters.

The serving subsystem keeps its own accounting on top of the storage engine's
:class:`~repro.storage.stats.IOStatistics`: log-bucketed latency histograms
(global, per-index and per-shard) with p50/p95/p99/p999 readout, the cache
hit/miss/dedup split, per-index error counts and the page accesses charged to
served queries.  Every instrument lives in a
:class:`~repro.obs.metrics.MetricsRegistry`, so the same numbers back both the
JSON ``/stats`` endpoint and the Prometheus text ``/metrics`` endpoint.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import Histogram, MetricsRegistry

#: Metric family names exported through ``/metrics``.
QUERY_LATENCY = "repro_query_latency_ms"
SHARD_LATENCY = "repro_shard_latency_ms"
QUERIES_TOTAL = "repro_queries_total"
ERRORS_TOTAL = "repro_errors_total"
SHED_TOTAL = "repro_shed_total"
DEADLINE_EXPIRED_TOTAL = "repro_deadline_expired_total"
QUEUE_DEPTH = "repro_admission_queue_depth"
PAGE_ACCESSES_TOTAL = "repro_page_accesses_total"
READS_TOTAL = "repro_reads_total"
DECODED_TOTAL = "repro_decoded_lookups_total"
WAL_REPLAYED_TOTAL = "repro_wal_records_replayed_total"
WAL_TORN_BYTES_TOTAL = "repro_wal_torn_bytes_truncated_total"
CHECKPOINTS_TOTAL = "repro_checkpoints_total"
CHECKPOINT_AGE = "repro_last_checkpoint_age_seconds"
WAL_BYTES = "repro_wal_bytes"
POSTINGS_REPR_TOTAL = "repro_postings_repr_total"
BITMAP_KERNEL_CALLS_TOTAL = "repro_bitmap_kernel_calls_total"
BITMAP_KERNEL_SECONDS_TOTAL = "repro_bitmap_kernel_seconds_total"


class LatencyRecorder:
    """Latency aggregate in milliseconds, backed by a log-bucketed histogram.

    Keeps the historical count/mean/min/max surface, and adds percentiles
    (p50/p95/p99/p999, exact to one histogram bucket width).  The backing
    :class:`~repro.obs.metrics.Histogram` may be shared with a
    :class:`~repro.obs.metrics.MetricsRegistry`, in which case recording here
    updates ``/metrics`` for free.
    """

    __slots__ = ("histogram",)

    def __init__(self, histogram: "Histogram | None" = None) -> None:
        self.histogram = histogram if histogram is not None else Histogram()

    def record(self, latency_ms: float) -> None:
        self.histogram.record(latency_ms)

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def total_ms(self) -> float:
        return self.histogram.total

    @property
    def mean_ms(self) -> float:
        return self.histogram.mean

    @property
    def min_ms(self) -> float:
        value = self.histogram.min
        return value if value is not None else float("inf")

    @property
    def max_ms(self) -> float:
        value = self.histogram.max
        return value if value is not None else 0.0

    def as_dict(self) -> dict:
        # min/max serialize as explicit nulls when empty: the old rendering
        # collapsed min=inf to 0.0, indistinguishable from a real 0ms minimum.
        summary = self.histogram.as_dict()
        return {
            "count": summary["count"],
            "mean_ms": summary["mean"],
            "min_ms": summary["min"],
            "max_ms": summary["max"],
            "p50_ms": summary["p50"],
            "p95_ms": summary["p95"],
            "p99_ms": summary["p99"],
            "p999_ms": summary["p999"],
        }


class ShardRecorder:
    """Aggregate cost of one shard position of one sharded resident index."""

    __slots__ = ("queries", "matches", "page_accesses", "latency")

    def __init__(self, histogram: "Histogram | None" = None) -> None:
        self.queries = 0
        self.matches = 0
        self.page_accesses = 0
        self.latency = LatencyRecorder(histogram)

    @property
    def total_ms(self) -> float:
        return self.latency.total_ms

    def record(self, matches: int, page_accesses: int, elapsed_ms: float) -> None:
        self.queries += 1
        self.matches += matches
        self.page_accesses += page_accesses
        self.latency.record(max(0.0, elapsed_ms))

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "matches": self.matches,
            "page_accesses": self.page_accesses,
            "mean_ms": round(self.total_ms / self.queries, 4) if self.queries else 0.0,
            "p95_ms": self.latency.as_dict()["p95_ms"],
        }


class ServingStats:
    """Counters for one :class:`~repro.service.executor.QueryExecutor`.

    ``queries`` counts every answered query, split into ``cache_hits`` (served
    from the result cache), ``dedup_hits`` (piggybacked on an identical
    in-flight query) and ``executed`` (actually evaluated on an index).
    Queries answered by a sharded index additionally feed a per-shard
    latency/page breakdown (``per_index_shards``).  All latency aggregates are
    registry-backed histograms; :meth:`render_prometheus` exposes the whole
    collection in Prometheus text format.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.queries = 0
        self.cache_hits = 0
        self.dedup_hits = 0
        self.executed = 0
        self.errors = 0
        self.errors_per_index: dict[str, int] = {}
        self.shed: dict[str, int] = {}
        self.deadline_expired = 0
        self.deadline_expired_per_index: dict[str, int] = {}
        self.page_accesses = 0
        self.random_reads = 0
        self.sequential_reads = 0
        self.decoded_hits = 0
        self.decoded_misses = 0
        self.latency = LatencyRecorder(
            self.registry.histogram(QUERY_LATENCY, "Query latency in milliseconds")
        )
        self.per_index: dict[str, LatencyRecorder] = {}
        self.per_index_shards: dict[str, dict] = {}
        self._lock = threading.Lock()
        # Last-seen snapshots of the process-wide posting-layer counters,
        # for the delta sync in _sync_postings_metrics.
        self._repr_seen: dict[str, int] = {}
        self._kernel_seen: dict[str, tuple[int, float]] = {}

    def _index_recorder(self, index_name: str) -> LatencyRecorder:
        recorder = self.per_index.get(index_name)
        if recorder is None:
            recorder = self.per_index[index_name] = LatencyRecorder(
                self.registry.histogram(
                    QUERY_LATENCY, "Query latency in milliseconds", index=index_name
                )
            )
        return recorder

    def record_query(
        self,
        index_name: str,
        latency_ms: float,
        *,
        cached: bool,
        deduplicated: bool,
        page_accesses: int,
        random_reads: int = 0,
        sequential_reads: int = 0,
        decoded_hits: int = 0,
        decoded_misses: int = 0,
        shard_stats=None,
    ) -> None:
        """Account one answered query (thread-safe).

        ``shard_stats`` is the fan-out breakdown — an iterable of
        :class:`~repro.core.shard.ShardQueryStat` — for queries evaluated on
        a sharded index.  Negative latencies (clock adjustments mid-query)
        clamp to zero rather than corrupting the histogram minimum.
        """
        latency_ms = max(0.0, latency_ms)
        outcome = "cached" if cached else "deduplicated" if deduplicated else "executed"
        with self._lock:
            self.queries += 1
            if cached:
                self.cache_hits += 1
            elif deduplicated:
                self.dedup_hits += 1
            else:
                self.executed += 1
            self.page_accesses += page_accesses
            self.random_reads += random_reads
            self.sequential_reads += sequential_reads
            self.decoded_hits += decoded_hits
            self.decoded_misses += decoded_misses
            self.latency.record(latency_ms)
            self._index_recorder(index_name).record(latency_ms)
            if shard_stats:
                shards = self.per_index_shards.setdefault(index_name, {})
                for stat in shard_stats:
                    slot = shards.get(stat.shard)
                    if slot is None:
                        slot = shards[stat.shard] = ShardRecorder(
                            self.registry.histogram(
                                SHARD_LATENCY,
                                "Per-shard fan-out latency in milliseconds",
                                index=index_name,
                                shard=str(stat.shard),
                            )
                        )
                    slot.record(stat.matches, stat.page_accesses, stat.elapsed_ms)
        self.registry.counter(
            QUERIES_TOTAL, "Answered queries by outcome", outcome=outcome
        ).inc()
        if page_accesses:
            self.registry.counter(
                PAGE_ACCESSES_TOTAL, "Disk page accesses charged to queries"
            ).inc(page_accesses)
        if random_reads:
            self.registry.counter(
                READS_TOTAL, "Physical reads by access pattern", pattern="random"
            ).inc(random_reads)
        if sequential_reads:
            self.registry.counter(
                READS_TOTAL, "Physical reads by access pattern", pattern="sequential"
            ).inc(sequential_reads)
        if decoded_hits:
            self.registry.counter(
                DECODED_TOTAL, "Decoded-block cache lookups", result="hit"
            ).inc(decoded_hits)
        if decoded_misses:
            self.registry.counter(
                DECODED_TOTAL, "Decoded-block cache lookups", result="miss"
            ).inc(decoded_misses)

    def record_error(self, index_name: "str | None" = None) -> None:
        """Account one failed query, attributed to its index when known."""
        with self._lock:
            self.errors += 1
            if index_name is not None:
                self.errors_per_index[index_name] = (
                    self.errors_per_index.get(index_name, 0) + 1
                )
        self.registry.counter(
            ERRORS_TOTAL, "Failed queries by index", index=index_name or "unknown"
        ).inc()

    def record_shed(self, reason: str) -> None:
        """Account one request rejected by an admission gate."""
        with self._lock:
            self.shed[reason] = self.shed.get(reason, 0) + 1
        self.registry.counter(
            SHED_TOTAL, "Requests shed by admission control, by gate", reason=reason
        ).inc()

    def record_deadline_expired(self, index_name: "str | None" = None) -> None:
        """Account one request whose deadline expired before it finished.

        Counted *in addition to* :meth:`record_error` — the deadline family
        answers "how often do we time out", the error family "how often do we
        fail" (a timeout is both).
        """
        with self._lock:
            self.deadline_expired += 1
            if index_name is not None:
                self.deadline_expired_per_index[index_name] = (
                    self.deadline_expired_per_index.get(index_name, 0) + 1
                )
        self.registry.counter(
            DEADLINE_EXPIRED_TOTAL,
            "Requests whose wall-clock deadline expired mid-execution",
        ).inc()

    def set_queue_depth(self, depth: int) -> None:
        """Publish the current admission-queue depth gauge."""
        self.registry.gauge(
            QUEUE_DEPTH, "Admitted requests waiting for a worker"
        ).set(depth)

    def _sync_postings_metrics(self) -> None:
        """Mirror the posting-layer counters into the registry (delta-based).

        The representation and bitmap-kernel counters live process-wide in
        :mod:`repro.core.postings` — query evaluation deep in the engine has
        no handle on the serving registry — so each render pulls the current
        totals in as deltas against the last sync.  The representation
        families are registered even at zero so a scrape always shows them.
        """
        from repro.core.postings import REPR_ARRAY, REPR_BITMAP, kernel_counters, repr_counters

        with self._lock:
            counts = repr_counters()
            for repr_tag in (REPR_ARRAY, REPR_BITMAP):
                counter = self.registry.counter(
                    POSTINGS_REPR_TOTAL,
                    "Posting runs decoded, by chosen representation",
                    repr=repr_tag,
                )
                delta = counts.get(repr_tag, 0) - self._repr_seen.get(repr_tag, 0)
                if delta > 0:
                    self._repr_seen[repr_tag] = counts[repr_tag]
                    counter.inc(delta)
            for kernel, (calls, seconds) in kernel_counters().items():
                seen_calls, seen_seconds = self._kernel_seen.get(kernel, (0, 0.0))
                if calls > seen_calls:
                    self._kernel_seen[kernel] = (calls, seconds)
                    self.registry.counter(
                        BITMAP_KERNEL_CALLS_TOTAL,
                        "Bitmap intersection-kernel invocations",
                        kernel=kernel,
                    ).inc(calls - seen_calls)
                    self.registry.counter(
                        BITMAP_KERNEL_SECONDS_TOTAL,
                        "Cumulative bitmap-kernel wall time in seconds",
                        kernel=kernel,
                    ).inc(max(0.0, seconds - seen_seconds))

    def render_prometheus(self) -> str:
        """All serving instruments in Prometheus text exposition format."""
        self._sync_postings_metrics()
        return self.registry.render()

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "queries": self.queries,
                "cache_hits": self.cache_hits,
                "dedup_hits": self.dedup_hits,
                "executed": self.executed,
                "errors": self.errors,
                "errors_per_index": dict(self.errors_per_index),
                "shed": dict(self.shed),
                "deadline_expired": self.deadline_expired,
                "deadline_expired_per_index": dict(self.deadline_expired_per_index),
                "page_accesses": self.page_accesses,
                "random_reads": self.random_reads,
                "sequential_reads": self.sequential_reads,
                "decoded_hits": self.decoded_hits,
                "decoded_misses": self.decoded_misses,
                "latency": self.latency.as_dict(),
                "per_index": {
                    name: recorder.as_dict() for name, recorder in self.per_index.items()
                },
                "per_index_shards": {
                    name: {
                        str(position): recorder.as_dict()
                        for position, recorder in sorted(shards.items())
                    }
                    for name, shards in self.per_index_shards.items()
                },
            }
