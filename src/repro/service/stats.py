"""Service-side metrics: latency tracking and serving counters.

The serving subsystem keeps its own counters on top of the storage engine's
:class:`~repro.storage.stats.IOStatistics`: per-query latency aggregates, the
cache hit/miss/dedup split and the page accesses charged to served queries.
Everything here is plain counting — cheap enough for the hot path — and every
aggregate can be exported as a JSON-friendly dict for the ``/stats`` endpoint.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class LatencyRecorder:
    """Streaming latency aggregate (count / total / min / max) in milliseconds."""

    count: int = 0
    total_ms: float = 0.0
    min_ms: float = float("inf")
    max_ms: float = 0.0

    def record(self, latency_ms: float) -> None:
        self.count += 1
        self.total_ms += latency_ms
        if latency_ms < self.min_ms:
            self.min_ms = latency_ms
        if latency_ms > self.max_ms:
            self.max_ms = latency_ms

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 4),
            "min_ms": round(self.min_ms, 4) if self.count else 0.0,
            "max_ms": round(self.max_ms, 4),
        }


@dataclass
class ShardRecorder:
    """Aggregate cost of one shard position of one sharded resident index."""

    queries: int = 0
    matches: int = 0
    page_accesses: int = 0
    total_ms: float = 0.0

    def record(self, matches: int, page_accesses: int, elapsed_ms: float) -> None:
        self.queries += 1
        self.matches += matches
        self.page_accesses += page_accesses
        self.total_ms += elapsed_ms

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "matches": self.matches,
            "page_accesses": self.page_accesses,
            "mean_ms": round(self.total_ms / self.queries, 4) if self.queries else 0.0,
        }


@dataclass
class ServingStats:
    """Counters for one :class:`~repro.service.executor.QueryExecutor`.

    ``queries`` counts every answered query, split into ``cache_hits`` (served
    from the result cache), ``dedup_hits`` (piggybacked on an identical
    in-flight query) and ``executed`` (actually evaluated on an index).
    Queries answered by a sharded index additionally feed a per-shard
    latency/page breakdown (``per_index_shards``).
    """

    queries: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    executed: int = 0
    errors: int = 0
    page_accesses: int = 0
    random_reads: int = 0
    sequential_reads: int = 0
    decoded_hits: int = 0
    decoded_misses: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    per_index: dict = field(default_factory=dict)
    per_index_shards: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_query(
        self,
        index_name: str,
        latency_ms: float,
        *,
        cached: bool,
        deduplicated: bool,
        page_accesses: int,
        random_reads: int = 0,
        sequential_reads: int = 0,
        decoded_hits: int = 0,
        decoded_misses: int = 0,
        shard_stats=None,
    ) -> None:
        """Account one answered query (thread-safe).

        ``shard_stats`` is the fan-out breakdown — an iterable of
        :class:`~repro.core.shard.ShardQueryStat` — for queries evaluated on
        a sharded index.
        """
        with self._lock:
            self.queries += 1
            if cached:
                self.cache_hits += 1
            elif deduplicated:
                self.dedup_hits += 1
            else:
                self.executed += 1
            self.page_accesses += page_accesses
            self.random_reads += random_reads
            self.sequential_reads += sequential_reads
            self.decoded_hits += decoded_hits
            self.decoded_misses += decoded_misses
            self.latency.record(latency_ms)
            recorder = self.per_index.get(index_name)
            if recorder is None:
                recorder = self.per_index[index_name] = LatencyRecorder()
            recorder.record(latency_ms)
            if shard_stats:
                shards = self.per_index_shards.setdefault(index_name, {})
                for stat in shard_stats:
                    slot = shards.get(stat.shard)
                    if slot is None:
                        slot = shards[stat.shard] = ShardRecorder()
                    slot.record(stat.matches, stat.page_accesses, stat.elapsed_ms)

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "queries": self.queries,
                "cache_hits": self.cache_hits,
                "dedup_hits": self.dedup_hits,
                "executed": self.executed,
                "errors": self.errors,
                "page_accesses": self.page_accesses,
                "random_reads": self.random_reads,
                "sequential_reads": self.sequential_reads,
                "decoded_hits": self.decoded_hits,
                "decoded_misses": self.decoded_misses,
                "latency": self.latency.as_dict(),
                "per_index": {
                    name: recorder.as_dict() for name, recorder in self.per_index.items()
                },
                "per_index_shards": {
                    name: {
                        str(position): recorder.as_dict()
                        for position, recorder in sorted(shards.items())
                    }
                    for name, shards in self.per_index_shards.items()
                },
            }
