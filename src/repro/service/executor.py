"""Concurrent query execution with result caching and in-flight deduplication.

The executor is the serving hot path.  Each query — a full expression, not
just a point predicate — goes through three gates:

1. **Result cache** — a hit is answered immediately, without touching the
   thread pool or any index (the skewed workloads of the paper make this the
   common case for hot query sets);
2. **In-flight dedup** — if an *equivalent* query (same index and same
   normalized expression) is already being evaluated, the new request
   piggybacks on its future instead of evaluating the query twice;
3. **Thread pool** — otherwise the query is dispatched to a worker, which
   takes the *read side* of the target index's reader-writer lock (many
   queries evaluate concurrently; only inserts/flushes/swaps are exclusive),
   evaluates the expression through the planner/cursor machinery, charges
   exactly its own page accesses through the traversal's read context and
   populates the cache.  Sharded indexes fan their per-shard work out over
   this same pool — :func:`repro.core.shard.run_sharing_pool` runs tasks the
   saturated pool never starts inline in the submitting worker, so sharing
   cannot deadlock.

Batches (:meth:`QueryExecutor.execute_batch`) dispatch every query before
waiting on any, so independent queries overlap across indexes and cache hits
never wait behind slow misses.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro import deadline as _deadline
from repro.core.interfaces import QueryType
from repro.core.query.expr import Expr, Leaf
from repro.core.shard import ShardQueryStat
from repro.errors import DeadlineExceededError, OverloadedError, ServiceError, UnknownIndexError
from repro.obs import trace as obs_trace
from repro.obs.slowlog import SlowQueryLog
from repro.service.admission import AdmissionController
from repro.service.cache import CacheKey, ResultCache
from repro.service.index_manager import IndexManager
from repro.service.stats import ServingStats

DEFAULT_WORKERS = 4


@dataclass(frozen=True)
class QueryRequest:
    """One query expression addressed to a named resident index.

    ``expr`` is stored normalized, so equal requests — however they were
    phrased — share one cache slot and one in-flight future.  ``deadline_ms``
    is this request's wall-clock budget override (``None`` defers to the
    executor's default); it is excluded from equality so requests differing
    only in budget still share one cache slot and in-flight future.
    """

    index: str
    expr: Expr
    deadline_ms: "float | None" = field(default=None, compare=False)

    @classmethod
    def of(
        cls, index: str, expr: Expr, *, deadline_ms: "float | None" = None
    ) -> "QueryRequest":
        if not isinstance(expr, Expr):
            raise ServiceError(f"a query needs an expression, got {expr!r}")
        return cls(index=index, expr=expr.normalize(), deadline_ms=deadline_ms)

    @classmethod
    def coerce(
        cls,
        index: str,
        query_type: "QueryType | str",
        items: Iterable,
        *,
        deadline_ms: "float | None" = None,
    ) -> "QueryRequest":
        """Build a point-predicate request (the pre-expression calling style)."""
        item_set = frozenset(items)
        if not item_set:
            raise ServiceError("a containment query needs at least one item")
        return cls.of(
            index, QueryType.parse(query_type).leaf(item_set), deadline_ms=deadline_ms
        )

    @property
    def key(self) -> CacheKey:
        return (self.index, self.expr)


@dataclass(frozen=True)
class QueryOutcome:
    """Answer of one served query plus how it was produced.

    ``page_accesses`` / ``random_reads`` / ``sequential_reads`` come from the
    query's own read context, so they are exact for this query even when it
    ran interleaved with others on the same index.
    """

    index: str
    expr: Expr
    record_ids: tuple[int, ...]
    cached: bool
    deduplicated: bool
    latency_ms: float
    page_accesses: int
    random_reads: int = 0
    sequential_reads: int = 0
    #: Decoded-block cache lookups of this query's traversal: hits skipped
    #: the v-byte decode (pure CPU savings; page counts are unaffected).
    decoded_hits: int = 0
    decoded_misses: int = 0
    #: Per-shard cost breakdown when the target index is sharded (the fan-out
    #: path measured each shard separately); ``None`` for monolithic indexes
    #: and for answers that never touched an index (cache/dedup hits).
    shard_stats: "tuple[ShardQueryStat, ...] | None" = None
    #: Rendered span tree of this query's evaluation (see :mod:`repro.obs.trace`);
    #: ``None`` unless tracing was enabled and this query was sampled.
    trace: "dict | None" = None

    @property
    def query_type(self) -> "QueryType | None":
        """The predicate for point queries, ``None`` for composite expressions."""
        if isinstance(self.expr, Leaf):
            return QueryType(self.expr.op)
        return None

    @property
    def items(self) -> frozenset:
        """All items the expression references (the leaf's set for point queries)."""
        return self.expr.referenced_items()

    @property
    def cardinality(self) -> int:
        return len(self.record_ids)

    def as_dict(self) -> dict:
        """JSON-friendly rendering for the HTTP layer.

        Point queries keep the legacy ``type``/``items`` fields; every
        outcome additionally carries the expression in wire form.
        """
        out = {
            "index": self.index,
            "expr": self.expr.to_dict(),
            "record_ids": list(self.record_ids),
            "cardinality": self.cardinality,
            "cached": self.cached,
            "deduplicated": self.deduplicated,
            "latency_ms": round(self.latency_ms, 4),
            "page_accesses": self.page_accesses,
            "random_reads": self.random_reads,
            "sequential_reads": self.sequential_reads,
            "decoded_hits": self.decoded_hits,
            "decoded_misses": self.decoded_misses,
        }
        if self.shard_stats is not None:
            out["shards"] = [stat.as_dict() for stat in self.shard_stats]
        if self.trace is not None:
            out["trace"] = self.trace
        query_type = self.query_type
        if query_type is not None:
            out["type"] = query_type.value
            out["items"] = sorted(self.expr.referenced_items(), key=str)
        return out


class QueryExecutor:
    """Dispatches query expressions over a thread pool with caching/dedup."""

    def __init__(
        self,
        manager: IndexManager,
        cache: "ResultCache | None" = None,
        max_workers: int = DEFAULT_WORKERS,
        slow_log: "SlowQueryLog | None" = None,
        *,
        max_queue: "int | None" = None,
        max_inflight_per_index: "int | None" = None,
        default_deadline_ms: "float | None" = None,
    ) -> None:
        if max_workers < 1:
            raise ServiceError(f"need at least one worker thread, got {max_workers}")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ServiceError(
                f"default_deadline_ms must be positive, got {default_deadline_ms}"
            )
        # The executor's lookup cache and the manager's invalidation cache
        # must be the same object, or inserts would invalidate one while
        # queries keep reading stale entries from the other.
        if cache is None:
            cache = manager.result_cache
        elif manager.result_cache is None:
            # Bind it, so the manager's insert listeners invalidate the cache
            # this executor reads.
            manager.result_cache = cache
        elif cache is not manager.result_cache:
            raise ServiceError(
                "the executor's cache must be the manager's result_cache "
                "(a split pair would serve stale results after updates)"
            )
        self.manager = manager
        self.cache = cache
        self.max_workers = max_workers
        self.stats = ServingStats()
        self.slow_log = slow_log if slow_log is not None else SlowQueryLog()
        self.default_deadline_ms = default_deadline_ms
        self.admission = AdmissionController(
            max_workers,
            max_queue=max_queue,
            max_inflight_per_index=max_inflight_per_index,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        self._inflight: dict[CacheKey, Future] = {}
        self._inflight_lock = threading.Lock()
        self._closed = False

    # -- public API ------------------------------------------------------------------

    def submit_request(self, request: QueryRequest) -> "Future[QueryOutcome]":
        """Schedule one request; returns a future resolving to its outcome."""
        if self._closed:
            raise ServiceError("the query executor has been shut down")
        start = time.perf_counter()

        # Optimistic lock-free probe first: a cached value is valid to serve
        # regardless of in-flight state, and this keeps the hot path (repeated
        # queries, the skewed-workload common case) off the executor-global
        # lock.  The miss is not counted here — the authoritative locked
        # lookup below charges it exactly once.
        if self.cache is not None:
            hit = self.cache.get(request.key, count_miss=False)
            if hit is not None:
                return self._cached_outcome(request, hit, start)

        # Cache probe and in-flight registration happen under one lock: a
        # primary for the same key pops itself from the in-flight map only
        # *after* populating the cache, so checking in this order can never
        # miss both and evaluate an equivalent query a second time.
        with self._inflight_lock:
            primary = self._inflight.get(request.key)
            if primary is None:
                if self.cache is not None:
                    hit = self.cache.get(request.key)
                    if hit is not None:
                        return self._cached_outcome(request, hit, start)
                # Admission gates run only for primaries: cache hits are
                # answered inline and piggybacks ride an already-admitted
                # evaluation, so neither occupies a worker slot.  The
                # deadline starts ticking *now* — queue wait counts against
                # the request's budget.
                deadline = self._arm(request)
                try:
                    self.admission.admit(request.index)
                except OverloadedError as error:
                    self.stats.record_shed(error.reason)
                    self.stats.set_queue_depth(self.admission.queue_depth)
                    raise
                try:
                    primary = self._pool.submit(self._evaluate, request, start, deadline)
                except BaseException:
                    self.admission.release(request.index, started=False)
                    raise
                self.stats.set_queue_depth(self.admission.queue_depth)
                self._inflight[request.key] = primary
                return primary
        return self._piggyback(request, primary, start)

    def submit_expr(self, index: str, expr: Expr) -> "Future[QueryOutcome]":
        """Schedule one expression against a named index."""
        return self.submit_request(QueryRequest.of(index, expr))

    def submit(
        self, index: str, query_type: "QueryType | str", items: Iterable
    ) -> "Future[QueryOutcome]":
        """Schedule one point-predicate query (compatibility entry point)."""
        return self.submit_request(QueryRequest.coerce(index, query_type, items))

    def execute_expr(self, index: str, expr: Expr) -> QueryOutcome:
        """Answer one expression, blocking until it resolves."""
        return self.submit_expr(index, expr).result()

    def execute(
        self, index: str, query_type: "QueryType | str", items: Iterable
    ) -> QueryOutcome:
        """Answer one point-predicate query, blocking until it resolves."""
        return self.submit(index, query_type, items).result()

    def execute_batch(self, requests: Sequence) -> list[QueryOutcome]:
        """Answer a batch of requests, each a :class:`QueryRequest`, an
        ``(index, expr)`` pair or an ``(index, type, items)`` triple.

        Every query is dispatched before any result is awaited, so the batch
        runs with the full concurrency of the pool; results come back in
        request order.
        """
        futures = []
        for request in requests:
            if isinstance(request, QueryRequest):
                futures.append(self.submit_request(request))
            elif len(request) == 2:
                futures.append(self.submit_expr(*request))
            else:
                futures.append(self.submit(*request))
        return [future.result() for future in futures]

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting queries and (optionally) wait for in-flight ones."""
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- internals -------------------------------------------------------------------

    def _arm(self, request: QueryRequest) -> "_deadline.Deadline | None":
        """Build this request's deadline (override beats the server default).

        Raises :class:`~repro.errors.DeadlineExceededError` on a non-positive
        budget, before any admission slot is taken.
        """
        budget_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.default_deadline_ms
        )
        if budget_ms is None:
            return None
        return _deadline.Deadline.after_ms(budget_ms)

    def _cached_outcome(
        self, request: QueryRequest, record_ids: tuple[int, ...], start: float
    ) -> "Future[QueryOutcome]":
        """Package a cache hit as an already-resolved future."""
        outcome = QueryOutcome(
            index=request.index,
            expr=request.expr,
            record_ids=record_ids,
            cached=True,
            deduplicated=False,
            latency_ms=(time.perf_counter() - start) * 1000.0,
            page_accesses=0,
        )
        self.stats.record_query(
            request.index, outcome.latency_ms, cached=True,
            deduplicated=False, page_accesses=0,
        )
        self._maybe_log_slow(outcome)
        done: Future = Future()
        done.set_result(outcome)
        return done

    def _maybe_log_slow(self, outcome: QueryOutcome) -> None:
        """Feed one finished query to the slow-query log (cheap when disabled)."""
        log = self.slow_log
        if log is None or not log.enabled:
            return
        log.record(
            expr=json.dumps(outcome.expr.to_dict(), sort_keys=True),
            latency_ms=outcome.latency_ms,
            index=outcome.index,
            counters={
                "page_accesses": outcome.page_accesses,
                "random_reads": outcome.random_reads,
                "sequential_reads": outcome.sequential_reads,
                "decoded_hits": outcome.decoded_hits,
                "decoded_misses": outcome.decoded_misses,
                "cached": outcome.cached,
                "deduplicated": outcome.deduplicated,
            },
            trace=outcome.trace,
        )

    def _evaluate(
        self,
        request: QueryRequest,
        start: float,
        deadline: "_deadline.Deadline | None" = None,
    ) -> QueryOutcome:
        """Worker body: run the query on its index and populate the cache."""
        self.admission.started()
        exec_start = time.perf_counter()
        executed = False
        deregistered = False
        token = None
        root = obs_trace.begin("query", index=request.index)
        try:
            if deadline is not None:
                # A request that spent its whole budget queued returns 408
                # here without touching the index or reading a page.
                deadline.check()
                token = _deadline.activate(deadline)
            # The two spans partition the root's whole window (lookup, then
            # execute), so their durations sum to the end-to-end latency.
            with obs_trace.span("lookup"):
                entry = self.manager.get(request.index)
            # Shared (read-side) hold: any number of workers evaluate this
            # index at once.  The cache is still populated while the hold is
            # open, and inserts take the exclusive write side, so an insert
            # can never slip between evaluating the query and caching its
            # (then stale) result — it serializes wholly after the put, and
            # its invalidation listeners then drop the entry.
            with obs_trace.span("execute"), entry.lock.read_locked():
                if entry.dropped:
                    raise UnknownIndexError(f"no index named {request.index!r}")
                record_ids, io_delta, shard_stats = entry.measured_expr(
                    request.expr, fanout_pool=self._pool
                )
                if self.cache is not None:
                    self.cache.put(request.key, record_ids)
                # Deregister from in-flight while the read hold is still
                # open: an insert acknowledged after this point waits for the
                # write side, so no later request can piggyback on this (now
                # potentially stale) result — it will probe the cache, which
                # that insert's listeners keep honest.
                with self._inflight_lock:
                    self._inflight.pop(request.key, None)
                    deregistered = True
            span_tree = obs_trace.finish(root)
            root = None
            outcome = QueryOutcome(
                index=request.index,
                expr=request.expr,
                record_ids=record_ids,
                cached=False,
                deduplicated=False,
                latency_ms=(time.perf_counter() - start) * 1000.0,
                page_accesses=io_delta.page_reads,
                random_reads=io_delta.random_reads,
                sequential_reads=io_delta.sequential_reads,
                decoded_hits=io_delta.decoded_hits,
                decoded_misses=io_delta.decoded_misses,
                shard_stats=shard_stats,
                trace=span_tree,
            )
            self.stats.record_query(
                request.index, outcome.latency_ms, cached=False,
                deduplicated=False, page_accesses=io_delta.page_reads,
                random_reads=io_delta.random_reads,
                sequential_reads=io_delta.sequential_reads,
                decoded_hits=io_delta.decoded_hits,
                decoded_misses=io_delta.decoded_misses,
                shard_stats=shard_stats,
            )
            self._maybe_log_slow(outcome)
            executed = True
            return outcome
        except BaseException as error:
            self.stats.record_error(request.index)
            if isinstance(error, DeadlineExceededError):
                self.stats.record_deadline_expired(request.index)
                self._log_expired(request, start)
            raise
        finally:
            if token is not None:
                _deadline.deactivate(token)
            # Abandon the root span on error paths (no-op after a clean finish).
            obs_trace.discard(root)
            # Error-path cleanup only: after the in-lock deregistration above,
            # the map slot may already belong to a *newer* request for the
            # same key, which must not be evicted.
            if not deregistered:
                with self._inflight_lock:
                    self._inflight.pop(request.key, None)
            # The slot frees whether the query finished, expired or failed —
            # only completed executions feed the Retry-After EWMA (truncated
            # times would drag the estimate down).
            self.admission.release(
                request.index,
                started=True,
                service_time_s=(time.perf_counter() - exec_start) if executed else None,
            )
            self.stats.set_queue_depth(self.admission.queue_depth)

    def _log_expired(self, request: QueryRequest, start: float) -> None:
        """Record a deadline expiry in the slow-query log (admission outcome)."""
        log = self.slow_log
        if log is None or not log.enabled:
            return
        log.record(
            expr=json.dumps(request.expr.to_dict(), sort_keys=True),
            latency_ms=(time.perf_counter() - start) * 1000.0,
            index=request.index,
            counters={"outcome": "deadline_expired"},
        )

    def _piggyback(
        self, request: QueryRequest, primary: "Future[QueryOutcome]", start: float
    ) -> "Future[QueryOutcome]":
        """Return a future that mirrors ``primary`` but is marked deduplicated."""
        mirror: Future = Future()

        def _propagate(done: "Future[QueryOutcome]") -> None:
            error = done.exception()
            if error is not None:
                mirror.set_exception(error)
                return
            result = done.result()
            outcome = QueryOutcome(
                index=result.index,
                expr=result.expr,
                record_ids=result.record_ids,
                cached=result.cached,
                deduplicated=True,
                latency_ms=(time.perf_counter() - start) * 1000.0,
                # The page accesses were charged to the primary execution.
                page_accesses=0,
            )
            self.stats.record_query(
                request.index, outcome.latency_ms, cached=False,
                deduplicated=True, page_accesses=0,
            )
            self._maybe_log_slow(outcome)
            mirror.set_result(outcome)

        primary.add_done_callback(_propagate)
        return mirror
