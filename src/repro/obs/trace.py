"""Zero-dependency trace spans, contextvar-propagated across thread pools.

A *trace* is one tree of :class:`Span` nodes describing where a single query
spent its time.  Two granularities coexist:

* **spans** (``with trace.span("plan"):``) — real tree nodes for coarse
  phases: the root query, planning, execution, one node per fanned-out shard.
  Nested ``span()`` calls parent correctly because the active span lives in a
  :mod:`contextvars` variable, and :func:`wrap` ships a copy of the caller's
  context into pool workers, so shard spans land under the right query even
  on a shared executor;
* **stages** (``token = trace.stage_begin() ... trace.stage_end("decode",
  token)``) — aggregate counters on the *current* span for hot-loop
  instrumentation points (block scans, v-byte decodes, buffer-pool fetches,
  intersections).  Each stage records its **self time**: an enclosing stage
  subtracts the time of stages nested inside it, so the per-stage totals of a
  span never double-count and always sum to at most the span's duration.

Everything is disabled by default.  When disabled, ``begin`` returns ``None``
and every other entry point is a couple of attribute checks — no
``perf_counter`` calls, no allocation — so the instrumented hot paths run at
their uninstrumented speed and the benchmarked page counts and results are
bit-identical.  A sampling knob (``configure(sample_every=N)``) traces only
every N-th query for always-on production use.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar, copy_context
from time import perf_counter
from typing import Callable, Iterator

_enabled = False
_sample_every = 1
_sample_counter = 0
_sample_lock = threading.Lock()

#: The innermost open span of the current logical context (None = not tracing).
_current: "ContextVar[_Active | None]" = ContextVar("repro-trace", default=None)


class Span:
    """One node of a trace tree: a named phase with nested children and stages."""

    __slots__ = ("name", "meta", "started", "duration_ms", "children", "stages", "_lock")

    def __init__(self, name: str, meta: dict) -> None:
        self.name = name
        self.meta = meta
        self.started = perf_counter()
        self.duration_ms = 0.0
        self.children: list[Span] = []
        #: stage name -> [count, total self-time ms]; written only by the
        #: thread owning the span's context, read after the span closes.
        self.stages: dict[str, list] = {}
        self._lock = threading.Lock()

    def close(self) -> None:
        self.duration_ms = (perf_counter() - self.started) * 1000.0

    def adopt(self, child: "Span") -> None:
        """Append a finished child (fan-out workers adopt concurrently)."""
        with self._lock:
            self.children.append(child)

    def adopt_rendered(self, tree: dict) -> None:
        """Append an already-rendered child tree (from another process).

        Worker processes cannot share contextvars with the parent, so they
        finish their spans locally and ship the rendered dict back;
        :meth:`as_dict` splices these in next to the live children.
        """
        with self._lock:
            self.children.append(tree)

    def add_stage(self, name: str, elapsed_ms: float) -> None:
        slot = self.stages.get(name)
        if slot is None:
            self.stages[name] = [1, elapsed_ms]
        else:
            slot[0] += 1
            slot[1] += elapsed_ms

    def as_dict(self) -> dict:
        out: dict = {"name": self.name, "duration_ms": round(self.duration_ms, 4)}
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.stages:
            out["stages"] = {
                name: {"count": count, "total_ms": round(total, 4)}
                for name, (count, total) in self.stages.items()
            }
        if self.children:
            out["children"] = [
                child if isinstance(child, dict) else child.as_dict()
                for child in self.children
            ]
        return out


class _Active:
    """The contextvar payload: the open span plus its stage-frame stack."""

    __slots__ = ("span", "frames", "token")

    def __init__(self, span: Span) -> None:
        self.span = span
        #: One accumulator per open stage: time consumed by *nested* stages,
        #: subtracted on close so each stage reports self time only.
        self.frames: list[list] = []
        self.token = None


# -- configuration -------------------------------------------------------------------


def configure(enabled: bool = True, sample_every: int = 1) -> None:
    """Turn tracing on/off globally; trace every ``sample_every``-th query."""
    global _enabled, _sample_every, _sample_counter
    if sample_every < 1:
        raise ValueError(f"sample_every must be >= 1, got {sample_every}")
    with _sample_lock:
        _enabled = enabled
        _sample_every = sample_every
        _sample_counter = 0


def disable() -> None:
    configure(enabled=False)


def is_enabled() -> bool:
    """Whether tracing is globally on (new roots may still be sampled out)."""
    return _enabled


def is_active() -> bool:
    """Whether the calling context is inside an open trace."""
    return _current.get() is not None


# -- roots ---------------------------------------------------------------------------


def begin(name: str, **meta) -> "_Active | None":
    """Open a root span for one query; ``None`` when disabled or sampled out.

    The returned handle must be passed to :func:`finish` (or :func:`discard`)
    by the same logical context that called ``begin``.
    """
    global _sample_counter
    if not _enabled:
        return None
    if _sample_every > 1:
        with _sample_lock:
            sampled = _sample_counter % _sample_every == 0
            _sample_counter += 1
        if not sampled:
            return None
    active = _Active(Span(name, meta))
    active.token = _current.set(active)
    return active


def finish(active: "_Active | None") -> "dict | None":
    """Close a root opened by :func:`begin` and return its rendered tree."""
    if active is None:
        return None
    active.span.close()
    _current.reset(active.token)
    return active.span.as_dict()


def discard(active: "_Active | None") -> None:
    """Abandon a root (error paths): restore the context, render nothing."""
    if active is not None:
        _current.reset(active.token)


# -- nested spans --------------------------------------------------------------------


@contextmanager
def span(name: str, **meta) -> Iterator["Span | None"]:
    """Open a child span under the current one; no-op outside a trace."""
    parent = _current.get()
    if parent is None:
        yield None
        return
    child = Span(name, meta)
    active = _Active(child)
    token = _current.set(active)
    try:
        yield child
    finally:
        child.close()
        _current.reset(token)
        parent.span.adopt(child)


def attach_rendered(tree: "dict | None") -> None:
    """Adopt a pre-rendered span tree as a child of the current span.

    The cross-process graft point: a shard worker traces its evaluation in
    its own interpreter, renders the tree with :meth:`Span.as_dict` and ships
    the dict home; the parent calls this inside the query's span so the
    worker's phases land under the right query.  No-op outside a trace or
    for ``None`` (the worker was not tracing).
    """
    if tree is None:
        return
    active = _current.get()
    if active is not None:
        active.span.adopt_rendered(tree)


# -- hot-loop stages -----------------------------------------------------------------


def stage_begin() -> "float | None":
    """Start timing one stage; returns ``None`` (do nothing) outside a trace."""
    active = _current.get()
    if active is None:
        return None
    active.frames.append([0.0])
    return perf_counter()


def stage_end(name: str, token: "float | None") -> None:
    """Close the stage opened with ``token``, charging self time to the span."""
    if token is None:
        return
    active = _current.get()
    if active is None or not active.frames:
        return
    elapsed_ms = (perf_counter() - token) * 1000.0
    frame = active.frames.pop()
    if active.frames:
        active.frames[-1][0] += elapsed_ms
    active.span.add_stage(name, elapsed_ms - frame[0])


# -- pool propagation ----------------------------------------------------------------


def wrap(fn: Callable) -> Callable:
    """Capture the caller's trace context for execution on another thread.

    Identity when not tracing (zero overhead); otherwise the returned
    callable runs ``fn`` inside a private copy of the submitting context, so
    ``span()`` calls in a pool worker parent under the submitting query.
    Capture one wrapper per task — a single context copy cannot run
    concurrently.
    """
    if _current.get() is None:
        return fn
    ctx = copy_context()

    def _in_context(*args, **kwargs):
        return ctx.run(fn, *args, **kwargs)

    return _in_context


# -- rendering -----------------------------------------------------------------------


def format_tree(tree: "dict | None", indent: int = 0) -> str:
    """Human-readable nested rendering of a span tree (the ``--trace`` output)."""
    if tree is None:
        return "(no trace recorded)"
    pad = "  " * indent
    meta = tree.get("meta")
    suffix = (
        " [" + ", ".join(f"{k}={v}" for k, v in sorted(meta.items())) + "]"
        if meta
        else ""
    )
    lines = [f"{pad}{tree['name']}{suffix} {tree['duration_ms']:.3f}ms"]
    for name, stage in sorted(tree.get("stages", {}).items()):
        lines.append(
            f"{pad}  · {name} {stage['total_ms']:.3f}ms x{stage['count']}"
        )
    for child in tree.get("children", ()):
        lines.append(format_tree(child, indent + 1))
    return "\n".join(lines)
