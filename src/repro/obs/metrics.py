"""Thread-safe metric instruments and a Prometheus-text registry.

Three instrument kinds cover the serving subsystem's needs:

* :class:`Counter` — a monotonically increasing count (queries, errors);
* :class:`Gauge` — a value that moves both ways (resident indexes, uptime);
* :class:`Histogram` — a log-bucketed latency distribution with
  percentile readout exact to one bucket width.

The histogram buckets grow geometrically by ``GROWTH`` (~19% per bucket), so
~160 sparse buckets span nanoseconds to hours and any percentile is off by at
most the width of the bucket it falls in — precise enough to tell a p99
regression from noise without storing samples.

A :class:`MetricsRegistry` names instruments, attaches labels and renders the
whole collection in the Prometheus text exposition format (version 0.0.4),
which is what ``GET /metrics`` serves.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable

#: Geometric bucket growth factor: 2 ** (1/4) keeps relative error under ~19%.
GROWTH = 2.0 ** 0.25
_LN_GROWTH = math.log(GROWTH)

#: Bucket index reserved for non-positive values (clock wobble clamps here).
_ZERO_BUCKET = -(10**9)


def bucket_index(value: float) -> int:
    """The histogram bucket ``value`` falls in: ``(GROWTH**(i-1), GROWTH**i]``."""
    if value <= 0.0:
        return _ZERO_BUCKET
    # ceil of log_GROWTH(value); the epsilon guards values sitting exactly on
    # a bucket boundary against float log jitter pushing them one bucket up.
    return math.ceil(math.log(value) / _LN_GROWTH - 1e-9)


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper bound of bucket ``index`` (0.0 for the zero bucket)."""
    if index == _ZERO_BUCKET:
        return 0.0
    return GROWTH**index


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Log-bucketed distribution with percentiles exact to one bucket width.

    Buckets are sparse (a dict), so an idle histogram costs nothing and a busy
    one holds only the ~dozen buckets its latencies actually span.  ``count``,
    ``sum``, ``min`` and ``max`` are tracked exactly.
    """

    __slots__ = ("_buckets", "count", "total", "min", "max", "_lock")

    def __init__(self) -> None:
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: "float | None" = None
        self.max: "float | None" = None
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        """Add one observation (non-positive values land in the zero bucket)."""
        index = bucket_index(value)
        with self._lock:
            self._buckets[index] = self._buckets.get(index, 0) + 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        with other._lock:
            buckets = dict(other._buckets)
            count, total = other.count, other.total
            other_min, other_max = other.min, other.max
        with self._lock:
            for index, n in buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + n
            self.count += count
            self.total += total
            if other_min is not None and (self.min is None or other_min < self.min):
                self.min = other_min
            if other_max is not None and (self.max is None or other_max > self.max):
                self.max = other_max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> "float | None":
        """The ``q``-quantile (``0 < q <= 1``) with inverted-CDF semantics.

        Returns the upper bound of the bucket holding the nearest-rank
        observation, clamped to the exact observed ``[min, max]`` — so the
        result is within one bucket width (< 19% relative) of the true order
        statistic.  ``None`` on an empty histogram.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return None
            target = max(1, math.ceil(q * self.count))
            seen = 0
            for index in sorted(self._buckets):
                seen += self._buckets[index]
                if seen >= target:
                    bound = bucket_upper_bound(index)
                    return max(self.min, min(self.max, bound))
            return self.max  # pragma: no cover - unreachable (counts sum up)

    def percentiles(self, qs: Iterable[float]) -> "dict[float, float | None]":
        return {q: self.percentile(q) for q in qs}

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs for Prometheus rendering."""
        with self._lock:
            out: list[tuple[float, int]] = []
            seen = 0
            for index in sorted(self._buckets):
                seen += self._buckets[index]
                out.append((bucket_upper_bound(index), seen))
            return out

    def as_dict(self, round_to: int = 4) -> dict:
        """JSON-friendly summary used by ``/stats``."""
        summary: dict = {
            "count": self.count,
            "mean": round(self.mean, round_to),
            "min": round(self.min, round_to) if self.min is not None else None,
            "max": round(self.max, round_to) if self.max is not None else None,
        }
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999)):
            value = self.percentile(q)
            summary[label] = round(value, round_to) if value is not None else None
        return summary


_TYPES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: tuple[tuple[str, str], ...], extra: "str | None" = None) -> str:
    parts = [f'{key}="{_escape_label(value)}"' for key, value in labels]
    if extra is not None:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, int) or value == int(value):
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Named, labeled instruments rendered as Prometheus text.

    Instruments are created on first use and returned on every later call
    with the same name and labels, so callers write
    ``registry.counter("repro_queries_total", index="default").inc()``
    without any registration ceremony.  Metric names must be stable per
    instrument kind — reusing a name for a different kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: name -> (kind, help text, {label tuple -> instrument})
        self._families: dict[str, tuple[type, str, dict]] = {}

    def _instrument(self, kind: type, name: str, help_text: str, labels: dict):
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (kind, help_text, {})
                self._families[name] = family
            elif family[0] is not kind:
                raise ValueError(
                    f"metric {name!r} is a {_TYPES[family[0]]}, not a {_TYPES[kind]}"
                )
            instrument = family[2].get(key)
            if instrument is None:
                instrument = family[2][key] = kind()
            return instrument

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        return self._instrument(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        return self._instrument(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "", **labels) -> Histogram:
        return self._instrument(Histogram, name, help_text, labels)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, (kind, help_text, instruments) in families:
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {_TYPES[kind]}")
            for labels in sorted(instruments):
                instrument = instruments[labels]
                if kind is Histogram:
                    for bound, cumulative in instrument.cumulative_buckets():
                        le = _format_labels(labels, f'le="{_format_value(bound)}"')
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    inf = _format_labels(labels, 'le="+Inf"')
                    lines.append(f"{name}_bucket{inf} {instrument.count}")
                    suffix = _format_labels(labels)
                    lines.append(f"{name}_sum{suffix} {_format_value(instrument.total)}")
                    lines.append(f"{name}_count{suffix} {instrument.count}")
                else:
                    suffix = _format_labels(labels)
                    lines.append(f"{name}{suffix} {_format_value(instrument.value)}")
        return "\n".join(lines) + "\n"
