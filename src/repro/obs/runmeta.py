"""Per-run benchmark artifacts: a validated manifest plus a metrics stream.

Every benchmark invocation gets its own ``benchmarks/results/<run>/``
directory holding:

* ``manifest.json`` — what produced the numbers: run name, creation time,
  git revision, benchmark scale, seed, python version, and the free-form
  config of the run.  The schema is asserted in CI (see :func:`main`), so a
  results directory always stays machine-readable across PRs;
* ``metrics.jsonl`` — one JSON object per line, appended as results arrive:
  experiment tables, serving histogram summaries, anything a benchmark
  wants persisted alongside its human-readable output.

The module doubles as a CLI — ``python -m repro.obs.runmeta <dir>`` walks
``<dir>`` for ``manifest.json`` files and exits non-zero if any is missing
required fields or malformed, which is the CI validation step.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.jsonl"

#: Required manifest fields and the JSON types each may hold.
MANIFEST_SCHEMA: dict[str, tuple[type, ...]] = {
    "run": (str,),
    "created_unix": (int, float),
    "git_revision": (str, type(None)),
    "scale": (str,),
    "seed": (int, type(None)),
    "python": (str,),
    "config": (dict,),
}


def git_revision(cwd: "str | Path | None" = None) -> "str | None":
    """The current git commit hash, or ``None`` outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    revision = out.stdout.strip()
    return revision if out.returncode == 0 and revision else None


def validate_manifest(manifest: object) -> list[str]:
    """Schema problems with ``manifest``, empty when it is valid."""
    if not isinstance(manifest, dict):
        return [f"manifest must be a JSON object, got {type(manifest).__name__}"]
    problems = []
    for field, types in MANIFEST_SCHEMA.items():
        if field not in manifest:
            problems.append(f"missing required field {field!r}")
        elif not isinstance(manifest[field], types):
            expected = "/".join(t.__name__ for t in types)
            problems.append(
                f"field {field!r} must be {expected},"
                f" got {type(manifest[field]).__name__}"
            )
    return problems


class RunRecorder:
    """Owns one ``results/<run>/`` directory: manifest plus metrics stream."""

    def __init__(
        self,
        root: "str | Path",
        *,
        run: "str | None" = None,
        scale: str = "smoke",
        seed: "int | None" = None,
        config: "dict | None" = None,
    ) -> None:
        if run is None:
            run = time.strftime("%Y%m%dT%H%M%S") + f"-{os.getpid()}"
        self.run = run
        self.directory = Path(root) / run
        self.directory.mkdir(parents=True, exist_ok=True)
        self.manifest: dict = {
            "run": run,
            "created_unix": round(time.time(), 3),
            "git_revision": git_revision(),
            "scale": scale,
            "seed": seed,
            "python": platform.python_version(),
            "config": dict(config or {}),
        }
        problems = validate_manifest(self.manifest)
        if problems:  # pragma: no cover - guards future schema drift
            raise ValueError(f"invalid manifest: {problems}")
        self._write_manifest()

    def _write_manifest(self) -> None:
        path = self.directory / MANIFEST_NAME
        path.write_text(
            json.dumps(self.manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def update_config(self, **config) -> None:
        """Merge keys into the manifest's config and rewrite it."""
        self.manifest["config"].update(config)
        self._write_manifest()

    def append(self, kind: str, payload: dict) -> None:
        """Append one ``{"kind": ..., **payload}`` record to ``metrics.jsonl``."""
        record = {"kind": kind, **payload}
        line = json.dumps(record, sort_keys=True, default=str)
        with (self.directory / METRICS_NAME).open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")

    def metrics_path(self) -> Path:
        return self.directory / METRICS_NAME


def _validate_tree(root: Path) -> int:
    """Validate every manifest under ``root``; print findings, return rc."""
    manifests = sorted(root.rglob(MANIFEST_NAME))
    if not manifests:
        print(f"no {MANIFEST_NAME} found under {root}", file=sys.stderr)
        return 1
    failures = 0
    for path in manifests:
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {path}: unreadable ({exc})")
            failures += 1
            continue
        problems = validate_manifest(manifest)
        if problems:
            print(f"FAIL {path}: " + "; ".join(problems))
            failures += 1
        else:
            run = manifest["run"]
            metrics = path.parent / METRICS_NAME
            records = 0
            bad_line = None
            if metrics.exists():
                with metrics.open(encoding="utf-8") as fh:
                    for number, line in enumerate(fh, start=1):
                        if not line.strip():
                            continue
                        try:
                            json.loads(line)
                        except json.JSONDecodeError:
                            bad_line = number
                            break
                        records += 1
            if bad_line is not None:
                print(f"FAIL {metrics}: malformed JSON on line {bad_line}")
                failures += 1
            else:
                print(f"ok   {path} (run={run}, {records} metric records)")
    if failures:
        print(f"{failures}/{len(manifests)} manifest(s) invalid", file=sys.stderr)
        return 1
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.obs.runmeta <results-dir>", file=sys.stderr)
        return 2
    root = Path(args[0])
    if not root.exists():
        print(f"results directory {root} does not exist", file=sys.stderr)
        return 1
    return _validate_tree(root)


if __name__ == "__main__":
    raise SystemExit(main())
