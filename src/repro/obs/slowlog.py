"""Ring-buffered slow-query log with an optional JSONL sink.

The serving layer feeds every finished query's latency here; queries at or
above the configured threshold are captured as structured JSON records —
canonical expression, latency, page/decode counters and the span breakdown
when tracing is on — so a tail-latency incident can be diagnosed from the
last N offenders without replaying traffic.

The in-memory buffer is a bounded deque (oldest entries evicted); when a
``sink`` path is configured each slow record is additionally appended to a
JSONL file as it happens, surviving process restarts.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path


class SlowQueryLog:
    """Capture queries slower than ``threshold_ms`` into a bounded ring.

    ``threshold_ms=None`` disables capture entirely (``record`` becomes a
    single comparison), which is the default for embedded use.
    """

    def __init__(
        self,
        threshold_ms: "float | None" = None,
        capacity: int = 128,
        sink: "str | Path | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold_ms = threshold_ms
        self.capacity = capacity
        self.sink = Path(sink) if sink is not None else None
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._dropped = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def record(
        self,
        *,
        expr: str,
        latency_ms: float,
        index: "str | None" = None,
        counters: "dict | None" = None,
        trace: "dict | None" = None,
    ) -> bool:
        """Log the query if it breaches the threshold; returns whether it did."""
        if self.threshold_ms is None or latency_ms < self.threshold_ms:
            return False
        entry: dict = {
            "time_unix": round(time.time(), 3),
            "expr": expr,
            "latency_ms": round(latency_ms, 4),
            "threshold_ms": self.threshold_ms,
        }
        if index is not None:
            entry["index"] = index
        if counters:
            entry["counters"] = counters
        if trace is not None:
            entry["trace"] = trace
        with self._lock:
            if len(self._entries) == self.capacity:
                self._dropped += 1
            self._entries.append(entry)
        if self.sink is not None:
            line = json.dumps(entry, sort_keys=True)
            with self._lock:
                with self.sink.open("a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
        return True

    def entries(self) -> list[dict]:
        """The retained slow queries, oldest first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._dropped = 0

    def as_dict(self) -> dict:
        """JSON payload for ``GET /slowlog``."""
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "capacity": self.capacity,
                "dropped": self._dropped,
                "entries": list(self._entries),
            }
