"""Observability for the reproduction: metrics, traces, slow queries, run manifests.

The package is deliberately zero-dependency and cheap-by-default:

* :mod:`repro.obs.metrics` — thread-safe counters, gauges and log-bucketed
  latency histograms with exact-to-one-bucket percentiles, plus a
  :class:`~repro.obs.metrics.MetricsRegistry` that renders Prometheus text
  exposition format (the ``GET /metrics`` endpoint);
* :mod:`repro.obs.trace` — a contextvar-propagated span API
  (``with trace.span("decode"):``) that builds nested span trees across the
  executor pool and the shard fan-out, with aggregate *stages* for hot-loop
  instrumentation points (v-byte decode, buffer-pool fetches, intersections).
  Everything no-ops when tracing is disabled (the default), so the
  benchmarked page counts and timings are unaffected;
* :mod:`repro.obs.slowlog` — a ring-buffered, threshold-triggered slow-query
  log with an optional JSONL sink (``serve --slow-query-ms``);
* :mod:`repro.obs.runmeta` — per-run benchmark artifacts: a validated
  ``manifest.json`` (scale, seed, git revision, config) next to a
  ``metrics.jsonl`` stream, so perf trajectories are machine-readable
  across PRs.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.runmeta import RunRecorder, validate_manifest

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunRecorder",
    "SlowQueryLog",
    "validate_manifest",
]
