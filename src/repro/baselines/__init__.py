"""Baseline access methods the OIF is compared against.

* :class:`InvertedFile` — the classic inverted file (the paper's main
  competitor), hash-organized with whole-list values.
* :class:`UnorderedBTreeInvertedFile` — blocked lists in a B-tree without the
  OIF's ordering (the "impact of the ordering" ablation).
* :class:`SignatureFile` — superimposed-coding signature file (related-work
  extension baseline).
* :class:`NaiveScanIndex` — brute-force oracle used as ground truth in tests.
"""

from repro.baselines.inverted_file import IFBuildReport, InvertedFile
from repro.baselines.naive import NaiveScanIndex
from repro.baselines.signature_file import SignatureFile
from repro.baselines.unordered_btree import UnorderedBTreeInvertedFile

__all__ = [
    "InvertedFile",
    "IFBuildReport",
    "NaiveScanIndex",
    "SignatureFile",
    "UnorderedBTreeInvertedFile",
]
