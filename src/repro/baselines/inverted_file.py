"""The classic inverted file (IF): the paper's main competitor.

The IF follows the implementation the paper credits as the most efficient
reported scheme [30]: a **hash-organized** relation whose key is the item and
whose value is the item's *entire* inverted list.  Each posting carries the
record id and the record's set cardinality, ids are stored as v-byte d-gaps,
and — because Berkeley DB always retrieves whole tuples — answering a query
costs the bucket page plus *every* data page of every involved list.

Query evaluation (Section 2):

* subset — intersect the lists of all query items (shortest list first);
* equality — same intersection, but postings whose length differs from
  ``|qs|`` are pruned while merging;
* superset — union the lists while counting each record's occurrences; a
  record qualifies when its occurrence count equals its stored length.

Records keep their **original** ids; no reordering of any kind is applied.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from repro.compression.postings import Posting, PostingColumns, PostingListCodec
from repro.core.interfaces import SetContainmentIndex
from repro.core.intersect import (
    bitmap_and_dense,
    bitmap_probe,
    intersect_ids,
    superset_matches,
)
from repro.core.items import Item, ItemOrder
from repro.core.postings import (
    DEFAULT_DENSE_RATIO,
    REPR_ARRAY,
    REPR_BITMAP,
    DensePostings,
    choose_representation,
    extract_set_bits,
    record_repr_choice,
    to_dense,
)
from repro.core.records import Dataset
from repro.core.sequence import encode_rank
from repro.errors import IndexNotBuiltError, QueryError
from repro.storage.kvstore import PAPER_CACHE_BYTES, Environment
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.storage.stats import ReadContext


@dataclass(frozen=True)
class IFBuildReport:
    """Summary of one IF build, used by the space and update experiments."""

    num_records: int
    num_items: int
    num_postings: int
    index_pages: int
    index_size_bytes: int
    build_seconds: float


class InvertedFile(SetContainmentIndex):
    """Hash-organized classic inverted file over original record ids."""

    name = "IF"

    def __init__(
        self,
        dataset: Dataset,
        env: Environment | None = None,
        *,
        compress: bool = True,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_bytes: int = PAPER_CACHE_BYTES,
        num_buckets: int | None = None,
        posting_repr: str = "auto",
        dense_ratio: float = DEFAULT_DENSE_RATIO,
        build: bool = True,
    ) -> None:
        if env is None:
            env = Environment(page_size=page_size, cache_bytes=cache_bytes)
        super().__init__(dataset, env)
        if posting_repr not in ("auto", "array"):
            raise QueryError(
                f"posting_repr must be 'auto' or 'array', got {posting_repr!r}"
            )
        self.compress = compress
        self.num_buckets = num_buckets
        self.posting_repr = posting_repr
        self.dense_ratio = dense_ratio
        self._codec = PostingListCodec(compress=compress)
        self._order: ItemOrder | None = None
        self._table = None
        self._list_meta: dict[int, tuple[int, int]] = {}
        # rank -> representation tag, chosen from list support at build/flush
        # time so decode never re-inspects frequencies.  The tag is advisory:
        # decode still applies the bitmap geometry guard, so a stale or
        # adversarial tag can cost memory but never correctness — and the
        # on-disk bytes are identical either way, so page accounting is too.
        self._list_repr: dict[int, str] = {}
        self.build_report: IFBuildReport | None = None
        if build:
            self.build()

    # -- construction --------------------------------------------------------------

    def build(self) -> IFBuildReport:
        """(Re)build the inverted file from the current dataset contents."""
        start = time.perf_counter()
        vocabulary = self.dataset.vocabulary
        self._order = vocabulary.frequency_order()

        lists: dict[int, list[Posting]] = {}
        for record in sorted(self.dataset, key=lambda r: r.record_id):
            for item in record.items:
                rank = self._order.rank_of(item)
                lists.setdefault(rank, []).append(Posting(record.record_id, record.length))

        # Size the hash directory so buckets are well filled (roughly 24 bytes
        # per directory entry): a huge, mostly-empty directory would unfairly
        # inflate the IF's space footprint.
        buckets = self.num_buckets or max(4, (len(vocabulary) * 24) // self.env.page_size + 1)
        table = self.env.create_table(
            self._fresh_table_name(), access_method="hash", num_buckets=buckets
        )
        posting_count = 0
        # The in-memory vocabulary table keeps, per list, its posting count and
        # last record id (the document-frequency bookkeeping every inverted
        # file maintains); batch updates use it to append without decoding.
        self._list_meta = {}
        self._list_repr = {}
        num_records = len(self.dataset)
        for rank in sorted(lists):
            postings = lists[rank]
            posting_count += len(postings)
            table.put(encode_rank(rank), self._codec.encode(postings))
            self._list_meta[rank] = (len(postings), postings[-1].record_id)
            self._list_repr[rank] = choose_representation(
                len(postings), num_records, self.dense_ratio
            )
        self.env.pool.flush()

        self._table = table
        self.build_report = IFBuildReport(
            num_records=len(self.dataset),
            num_items=len(vocabulary),
            num_postings=posting_count,
            index_pages=self.env.page_file.num_pages,
            index_size_bytes=self.env.size_bytes,
            build_seconds=time.perf_counter() - start,
        )
        return self.build_report

    _table_counter = 0

    def _fresh_table_name(self) -> str:
        InvertedFile._table_counter += 1
        return f"if_lists_{InvertedFile._table_counter}"

    # -- list access ---------------------------------------------------------------

    @property
    def order(self) -> ItemOrder:
        """Frequency order of the indexed vocabulary (used only to name lists)."""
        if self._order is None:
            raise IndexNotBuiltError("the inverted file has not been built yet")
        return self._order

    def fetch_list(self, item: Item, ctx: "ReadContext | None" = None) -> list[Posting]:
        """Retrieve the complete inverted list of ``item`` (whole-tuple fetch)."""
        return self.fetch_columns(item, ctx).postings()

    def fetch_columns(self, item: Item, ctx: "ReadContext | None" = None) -> PostingColumns:
        """Retrieve one inverted list in columnar form (the query hot path).

        Same whole-tuple fetch as :meth:`fetch_list`, but the value is
        batch-decoded into parallel sorted id/length columns — no per-posting
        decode calls or :class:`Posting` allocations.
        """
        if self._table is None:
            raise IndexNotBuiltError("the inverted file has not been built yet")
        rank = self.order.try_rank_of(item)
        if rank is None:
            return PostingColumns((), ())
        if not self._table.contains(encode_rank(rank), ctx):
            return PostingColumns((), ())
        return self._codec.decode_columns(self._table.get(encode_rank(rank), ctx))

    def fetch_postings(
        self, item: Item, ctx: "ReadContext | None" = None
    ) -> "DensePostings | PostingColumns":
        """Retrieve one inverted list in its chosen representation.

        Same whole-tuple fetch and byte-identical decode as
        :meth:`fetch_columns`; a list tagged dense at build/flush time is then
        converted to a packed bitmap (subject to the geometry guard), so the
        intersection kernels dispatch on the runtime type.  Page accounting is
        identical to the array path — the conversion touches no storage.
        """
        columns = self.fetch_columns(item, ctx)
        if self.posting_repr != "array" and len(columns):
            rank = self.order.try_rank_of(item)
            if rank is not None and self._list_repr.get(rank) == REPR_BITMAP:
                dense = to_dense(columns)
                if dense is not None:
                    record_repr_choice(REPR_BITMAP)
                    return dense
        record_repr_choice(REPR_ARRAY)
        return columns

    def repr_for(self, item: Item) -> str:
        """The representation tag recorded for ``item`` (explain/metrics)."""
        if self.posting_repr == "array" or self._order is None:
            return REPR_ARRAY
        rank = self._order.try_rank_of(item)
        if rank is None:
            return REPR_ARRAY
        return self._list_repr.get(rank, REPR_ARRAY)

    def list_page_count(self, item: Item) -> int:
        """Number of data pages occupied by the item's list (for the space study)."""
        if self._table is None:
            raise IndexNotBuiltError("the inverted file has not been built yet")
        rank = self.order.try_rank_of(item)
        if rank is None:
            return 0
        return self._table.hashfile.value_page_count(encode_rank(rank))

    # -- incremental maintenance -----------------------------------------------------

    def merge_records(self, records: Iterable["object"]) -> int:
        """Append new records' postings to the existing lists (batch update).

        This is the classic inverted file's batch-update path: each affected
        list is fetched, extended and written back; the hash directory entry
        is repointed to the new value pages.  Records must have ids larger
        than every indexed record so that lists stay sorted.  Returns the
        number of postings written.
        """
        if self._table is None or self._order is None:
            raise IndexNotBuiltError("the inverted file has not been built yet")
        new_postings: dict[int, list[Posting]] = {}
        new_items: list = []
        for record in records:
            for item in record.items:
                rank = self._order.try_rank_of(item)
                if rank is None:
                    new_items.append(item)
                    continue
                new_postings.setdefault(rank, []).append(
                    Posting(record.record_id, record.length)
                )
        if new_items:
            raise QueryError(
                f"batch update contains items outside the indexed vocabulary: "
                f"{sorted(map(str, set(new_items)))[:5]}"
            )
        written = 0
        for rank, postings in new_postings.items():
            key = encode_rank(rank)
            postings.sort()
            count, last_id = self._list_meta.get(rank, (0, 0))
            if count:
                # Append without decoding: fetch the raw bytes, concatenate the
                # continuation (first new id encoded as a gap from the old tail)
                # and write the list back.
                existing_bytes = self._table.get(key)
                appended = existing_bytes + self._codec.encode_continuation(postings, last_id)
                self._table.put(key, appended, replace=True)
            else:
                self._table.put(key, self._codec.encode(postings), replace=True)
            new_count = count + len(postings)
            self._list_meta[rank] = (new_count, postings[-1].record_id)
            # Re-choose the representation as the list grows: a list that
            # crosses the density threshold on this flush decodes as a bitmap
            # from now on.  (Tags of untouched lists are revisited on the next
            # full build; meanwhile they are advisory-stale at worst.)
            self._list_repr[rank] = choose_representation(
                new_count, len(self.dataset), self.dense_ratio
            )
            written += len(postings)
        self.env.pool.flush()
        return written

    # -- query evaluation ----------------------------------------------------------

    def _probe_subset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        query = self._check_query(items)
        lists = [self.fetch_postings(item, ctx) for item in sorted(query, key=str)]
        if any(not len(run) for run in lists):
            return []
        arrays = [run for run in lists if not isinstance(run, DensePostings)]
        denses = [run for run in lists if isinstance(run, DensePostings)]
        if not arrays:
            # All lists dense: fold the word-AND kernel across the bitmaps
            # (cheapest chain: fewest postings first keeps intermediates
            # sparse) and extract ids once at the end.
            denses.sort(key=len)
            folded = denses[0]
            for dense in denses[1:]:
                folded = bitmap_and_dense(folded, dense)
                if not len(folded.words):
                    return []
            return list(extract_set_bits(folded.words, folded.base))
        # Shortest array first: ids are stored ascending, so the array chain
        # is a galloping merge join over sorted columns (no hashing).  Dense
        # lists then cost one O(1) membership probe per surviving candidate,
        # regardless of their own length — exactly where the galloping merge
        # hurt most.
        arrays.sort(key=len)
        result = list(arrays[0].ids)
        for columns in arrays[1:]:
            result = intersect_ids(result, columns.ids)
            if not result:
                return []
        for dense in denses:
            result = bitmap_probe(dense, result)
            if not result:
                return []
        return result

    def _probe_equality(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        query = self._check_query(items)
        cardinality = len(query)
        lists = [self.fetch_columns(item, ctx) for item in sorted(query, key=str)]
        if any(not len(columns) for columns in lists):
            return []
        lists.sort(key=len)
        result: "list[int] | None" = None
        for columns in lists:
            matching = [
                record_id
                for record_id, length in zip(columns.ids, columns.lengths)
                if length == cardinality
            ]
            result = matching if result is None else intersect_ids(result, matching)
            if not result:
                return []
        assert result is not None
        return result

    def _probe_superset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        query = self._check_query(items)
        runs = [
            (columns.ids, columns.lengths)
            for columns in (
                self.fetch_columns(item, ctx) for item in sorted(query, key=str)
            )
        ]
        return superset_matches(runs)

    @staticmethod
    def _check_query(items: Iterable[Item]) -> frozenset:
        query = frozenset(items)
        if not query:
            raise QueryError("containment queries require a non-empty query set")
        return query
