"""Unordered B-tree inverted file: the "impact of the ordering" ablation.

Section 5 of the paper asks whether the OIF's gains come from the special
record ordering + metadata, or merely from indexing the inverted lists with a
B-tree.  To answer it, the authors build a B-tree over the inverted lists with
the *same block size* as the OIF but **without any reordering** of the
records, and with only the record id as the block key.  This module
reproduces that competitor:

* records keep their original ids;
* each item's list is split into blocks of ``block_capacity`` postings;
* the block key is ``(item, last record id in the block)``;
* query evaluation can skip to intermediate points of a list through the
  B-tree (like a skip list), but — lacking the lexicographic ordering — it has
  no Range of Interest: subset/equality queries must scan the first list in
  full, and superset queries must scan every involved list in full.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

from repro.compression.postings import Posting, PostingBlockCodec, PostingColumns
from repro.core.interfaces import SetContainmentIndex
from repro.core.intersect import intersect_ids, superset_matches
from repro.core.items import Item, ItemOrder
from repro.core.records import Dataset
from repro.core.sequence import decode_rank, encode_rank
from repro.errors import IndexNotBuiltError, QueryError
from repro.storage.kvstore import PAPER_CACHE_BYTES, Environment
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.storage.stats import ReadContext


class UnorderedBTreeInvertedFile(SetContainmentIndex):
    """Blocked, B-tree-indexed inverted lists over unordered record ids."""

    name = "UBT"

    def __init__(
        self,
        dataset: Dataset,
        env: Environment | None = None,
        *,
        block_capacity: int = 128,
        max_block_bytes: int | None = None,
        compress: bool = True,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_bytes: int = PAPER_CACHE_BYTES,
        build: bool = True,
    ) -> None:
        if env is None:
            env = Environment(page_size=page_size, cache_bytes=cache_bytes)
        super().__init__(dataset, env)
        self.block_capacity = block_capacity
        self.max_block_bytes = (
            max_block_bytes if max_block_bytes is not None else env.page_size // 2
        )
        self.compress = compress
        self._codec = PostingBlockCodec(compress=compress)
        self._order: ItemOrder | None = None
        self._table = None
        self.num_blocks = 0
        self.build_seconds = 0.0
        if build:
            self.build()

    # -- construction --------------------------------------------------------------

    def build(self) -> None:
        """(Re)build the blocked inverted lists from the dataset."""
        start = time.perf_counter()
        vocabulary = self.dataset.vocabulary
        self._order = vocabulary.frequency_order()

        lists: dict[int, list[Posting]] = {}
        for record in sorted(self.dataset, key=lambda r: r.record_id):
            for item in record.items:
                rank = self._order.rank_of(item)
                lists.setdefault(rank, []).append(Posting(record.record_id, record.length))

        table = self.env.create_table(self._fresh_table_name(), access_method="btree")
        self.num_blocks = 0

        def entries() -> Iterator[tuple[bytes, bytes]]:
            for rank in sorted(lists):
                postings = lists[rank]
                for block in self._chunk(postings):
                    self.num_blocks += 1
                    key = encode_rank(rank) + encode_rank(block[-1].record_id)
                    yield key, self._codec.encode(block)

        table.bulk_load(entries())
        self.env.pool.flush()
        self._table = table
        self.build_seconds = time.perf_counter() - start

    def _chunk(self, postings: list[Posting]) -> Iterator[list[Posting]]:
        block: list[Posting] = []
        for posting in postings:
            block.append(posting)
            if len(block) >= self.block_capacity or (
                len(block) > 1 and self._codec.encoded_size(block) > self.max_block_bytes
            ):
                if self._codec.encoded_size(block) > self.max_block_bytes and len(block) > 1:
                    last = block.pop()
                    yield block
                    block = [last]
                else:
                    yield block
                    block = []
        if block:
            yield block

    _table_counter = 0

    def _fresh_table_name(self) -> str:
        UnorderedBTreeInvertedFile._table_counter += 1
        return f"ubt_blocks_{UnorderedBTreeInvertedFile._table_counter}"

    # -- list access ---------------------------------------------------------------

    @property
    def order(self) -> ItemOrder:
        """Frequency order of the vocabulary (used to pick the shortest list first)."""
        if self._order is None:
            raise IndexNotBuiltError("the unordered B-tree index has not been built yet")
        return self._order

    def scan_list(
        self,
        rank: int,
        low_id: int = 0,
        high_id: int | None = None,
        ctx: "ReadContext | None" = None,
    ) -> Iterator[Posting]:
        """Yield the postings of one list, optionally limited to an id window.

        Compatibility wrapper over :meth:`scan_list_columns`; the query
        probes consume the columnar blocks directly.
        """
        for columns in self.scan_list_columns(rank, low_id, high_id, ctx):
            yield from columns

    def scan_list_columns(
        self,
        rank: int,
        low_id: int = 0,
        high_id: int | None = None,
        ctx: "ReadContext | None" = None,
    ) -> Iterator[PostingColumns]:
        """Yield one list's blocks as columnar runs, trimmed to an id window.

        The B-tree lets the scan start at the first block whose last id is >=
        ``low_id`` and stop once a block's last id passes ``high_id`` — the
        "access to intermediate points" that this baseline shares with the
        OIF.  Each block is batch-decoded once; the window trim is a
        :mod:`bisect` cut on the sorted id column.
        """
        if self._table is None:
            raise IndexNotBuiltError("the unordered B-tree index has not been built yet")
        seek = encode_rank(rank) + encode_rank(low_id)
        for key, value in self._table.cursor(seek, ctx):
            key_rank = decode_rank(key, 0)
            if key_rank != rank:
                return
            last_id = decode_rank(key, 4)
            columns = self._codec.decode_columns(value)
            ids = columns.ids
            start = bisect_left(ids, low_id) if ids and ids[0] < low_id else 0
            end = len(ids)
            if high_id is not None and last_id > high_id:
                end = bisect_right(ids, high_id, start)
            if start or end < len(ids):
                trimmed = PostingColumns(ids[start:end], columns.lengths[start:end])
                if len(trimmed):
                    yield trimmed
            else:
                yield columns
            if high_id is not None and last_id >= high_id:
                return

    # -- query evaluation ----------------------------------------------------------

    def _probe_subset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        query = self._check_query(items)
        ranks = self._known_ranks(query)
        if ranks is None:
            return []
        # Least frequent item first: its list is the shortest.  Block scans
        # yield ascending id runs, so candidates stay a sorted column and
        # every step is a galloping merge join.
        ranks.sort(key=lambda rank: -rank)
        candidates: list[int] = []
        for columns in self.scan_list_columns(ranks[0], ctx=ctx):
            candidates.extend(columns.ids)
        for rank in ranks[1:]:
            if not candidates:
                return []
            low, high = candidates[0], candidates[-1]
            found: list[int] = []
            for columns in self.scan_list_columns(rank, low, high, ctx=ctx):
                found.extend(intersect_ids(candidates, columns.ids))
            candidates = found
        return candidates

    def _probe_equality(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        query = self._check_query(items)
        cardinality = len(query)
        ranks = self._known_ranks(query)
        if ranks is None:
            return []
        ranks.sort(key=lambda rank: -rank)
        candidates: list[int] = []
        for columns in self.scan_list_columns(ranks[0], ctx=ctx):
            candidates.extend(
                record_id
                for record_id, length in zip(columns.ids, columns.lengths)
                if length == cardinality
            )
        for rank in ranks[1:]:
            if not candidates:
                return []
            low, high = candidates[0], candidates[-1]
            found: list[int] = []
            for columns in self.scan_list_columns(rank, low, high, ctx=ctx):
                matching = [
                    record_id
                    for record_id, length in zip(columns.ids, columns.lengths)
                    if length == cardinality
                ]
                found.extend(intersect_ids(candidates, matching))
            candidates = found
        return candidates

    def _probe_superset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        query = self._check_query(items)
        runs: list[tuple[list[int], list[int]]] = []
        for item in sorted(query, key=str):
            rank = self.order.try_rank_of(item)
            if rank is None:
                continue
            run_ids: list[int] = []
            run_lens: list[int] = []
            for columns in self.scan_list_columns(rank, ctx=ctx):
                run_ids.extend(columns.ids)
                run_lens.extend(columns.lengths)
            runs.append((run_ids, run_lens))
        return superset_matches(runs)

    def _known_ranks(self, query: frozenset) -> list[int] | None:
        ranks: list[int] = []
        for item in sorted(query, key=str):
            rank = self.order.try_rank_of(item)
            if rank is None:
                return None
            ranks.append(rank)
        return ranks

    @staticmethod
    def _check_query(items: Iterable[Item]) -> frozenset:
        query = frozenset(items)
        if not query:
            raise QueryError("containment queries require a non-empty query set")
        return query
