"""Brute-force oracle: answers containment queries by scanning the dataset.

This is not one of the paper's competitors — it exists so that every index in
the library can be checked against ground truth, both in unit tests and in the
hypothesis property tests.  It implements the same
:class:`~repro.core.interfaces.SetContainmentIndex` interface, with a dummy
storage environment so the instrumentation code paths stay uniform.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.interfaces import SetContainmentIndex
from repro.core.items import Item
from repro.core.records import Dataset
from repro.errors import QueryError
from repro.storage.kvstore import Environment
from repro.storage.stats import ReadContext


class NaiveScanIndex(SetContainmentIndex):
    """Exact but index-free evaluation of the three containment predicates."""

    name = "naive"

    def __init__(self, dataset: Dataset, env: Environment | None = None) -> None:
        super().__init__(dataset, env or Environment(cache_bytes=4096, page_size=4096))

    def _probe_subset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        query = self._check(items)
        return sorted(
            record.record_id for record in self.dataset if query <= record.items
        )

    def _probe_equality(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        query = self._check(items)
        return sorted(
            record.record_id for record in self.dataset if query == record.items
        )

    def _probe_superset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        query = self._check(items)
        return sorted(
            record.record_id for record in self.dataset if record.items <= query
        )

    @staticmethod
    def _check(items: Iterable[Item]) -> frozenset:
        query = frozenset(items)
        if not query:
            raise QueryError("containment queries require a non-empty query set")
        return query
