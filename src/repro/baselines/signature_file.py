"""Signature file baseline (superimposed coding).

Signature files are the classic alternative to inverted files for containment
queries (Section 6, "Signatures"; Faloutsos & Christodoulakis).  The paper
does not evaluate them — prior studies [21, 49] already showed inverted files
dominate for low-cardinality set-values — but the library includes a
sequential signature file as an *extension baseline* so users can reproduce
that prior finding on the same substrate.

Each record is summarised by an ``F``-bit signature obtained by OR-ing the
hashes of its items (``m`` bits set per item).  Signatures are stored
sequentially in pages; a query scans the whole signature file, keeps the
records whose signature is compatible with the query signature, and verifies
every candidate against the actual record (false positives are possible,
false negatives are not):

* subset — candidate if ``record_sig & query_sig == query_sig``;
* equality — same test plus a length check at verification time;
* superset — candidate if ``record_sig & ~query_sig == 0``.
"""

from __future__ import annotations

import struct
import time
from typing import Iterable

from repro.core.interfaces import SetContainmentIndex
from repro.core.items import Item, ItemOrder
from repro.core.records import Dataset
from repro.errors import IndexBuildError, IndexNotBuiltError, QueryError
from repro.storage.kvstore import PAPER_CACHE_BYTES, Environment
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.storage.recordstore import RecordStore
from repro.storage.stats import ReadContext


def _item_signature(rank: int, signature_bits: int, bits_per_item: int) -> int:
    """Deterministic ``bits_per_item``-bit signature of one item rank."""
    signature = 0
    state = rank + 0x9E3779B9
    for _ in range(bits_per_item):
        # xorshift-style mixing: cheap, deterministic across runs.
        state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 7
        state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
        signature |= 1 << (state % signature_bits)
    return signature


class SignatureFile(SetContainmentIndex):
    """Sequential signature file with verification against a record store."""

    name = "SIG"

    def __init__(
        self,
        dataset: Dataset,
        env: Environment | None = None,
        *,
        signature_bits: int = 64,
        bits_per_item: int = 4,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_bytes: int = PAPER_CACHE_BYTES,
        build: bool = True,
    ) -> None:
        if env is None:
            env = Environment(page_size=page_size, cache_bytes=cache_bytes)
        super().__init__(dataset, env)
        if signature_bits % 8:
            raise IndexBuildError("signature width must be a multiple of 8 bits")
        if not 1 <= bits_per_item <= signature_bits:
            raise IndexBuildError(
                f"bits_per_item must be in [1, {signature_bits}], got {bits_per_item}"
            )
        self.signature_bits = signature_bits
        self.bits_per_item = bits_per_item
        self._signature_bytes = signature_bits // 8
        # Batch page parser: one C-level iter_unpack per page instead of two
        # slices + int conversions per record.  The default 64-bit width maps
        # straight to ">IQ"; wider signatures unpack as bytes and convert.
        if self._signature_bytes == 8:
            self._entry_struct = struct.Struct(">IQ")
            self._wide_signatures = False
        else:
            self._entry_struct = struct.Struct(f">I{self._signature_bytes}s")
            self._wide_signatures = True
        self._order: ItemOrder | None = None
        self._record_ids: list[int] = []
        self._signature_pages: list[int] = []
        self._per_page = 0
        self._record_store: RecordStore | None = None
        self.build_seconds = 0.0
        if build:
            self.build()

    # -- construction --------------------------------------------------------------

    def build(self) -> None:
        """Compute all signatures and lay them out sequentially in pages."""
        start = time.perf_counter()
        self._order = self.dataset.vocabulary.frequency_order()
        entry_size = 4 + self._signature_bytes  # record id + signature
        self._per_page = max(1, self.env.page_size // entry_size)

        self._record_store = RecordStore(self.env.pool)
        self._record_ids = []
        self._signature_pages = []

        buffer = bytearray()
        count_in_page = 0
        for record in sorted(self.dataset, key=lambda r: r.record_id):
            ranks = sorted(self._order.rank_of(item) for item in record.items)
            self._record_store.append(record.record_id, ranks)
            signature = self.record_signature(record.items)
            buffer += record.record_id.to_bytes(4, "big")
            buffer += signature.to_bytes(self._signature_bytes, "big")
            self._record_ids.append(record.record_id)
            count_in_page += 1
            if count_in_page == self._per_page:
                self._flush_signature_page(buffer)
                buffer = bytearray()
                count_in_page = 0
        if buffer:
            self._flush_signature_page(buffer)
        self.env.pool.flush()
        self.build_seconds = time.perf_counter() - start

    def _flush_signature_page(self, buffer: bytearray) -> None:
        page_id = self.env.pool.allocate_page()
        self.env.pool.put_page(page_id, bytes(buffer))
        self._signature_pages.append(page_id)

    # -- signatures ----------------------------------------------------------------

    def record_signature(self, items: Iterable[Item]) -> int:
        """Superimposed signature of a set of items (unknown items are skipped)."""
        if self._order is None:
            raise IndexNotBuiltError("the signature file has not been built yet")
        signature = 0
        for item in items:
            rank = self._order.try_rank_of(item)
            if rank is not None:
                signature |= _item_signature(rank, self.signature_bits, self.bits_per_item)
        return signature

    def _scan_signatures(
        self, ctx: "ReadContext | None" = None
    ) -> Iterable[tuple[int, int]]:
        """Yield ``(record_id, signature)`` for every record, page by page.

        Each page is parsed with one :meth:`struct.Struct.iter_unpack` call —
        the signature scan is sequential and CPU-bound, so the per-entry
        slicing it used to do dominated its cost.
        """
        entry_size = 4 + self._signature_bytes
        remaining = len(self._record_ids)
        for page_id in self._signature_pages:
            data = bytes(self.env.pool.get_page(page_id, ctx))
            in_page = min(self._per_page, remaining)
            window = data[: in_page * entry_size]
            if self._wide_signatures:
                for record_id, raw_signature in self._entry_struct.iter_unpack(window):
                    yield record_id, int.from_bytes(raw_signature, "big")
            else:
                yield from self._entry_struct.iter_unpack(window)
            remaining -= in_page

    def _verify(self, record_id: int, ctx: "ReadContext | None" = None) -> frozenset:
        """Fetch the record's items from the record store (one page access)."""
        assert self._record_store is not None and self._order is not None
        ranks = self._record_store.fetch(record_id, ctx)
        return frozenset(self._order.item_at(rank) for rank in ranks)

    # -- query evaluation ----------------------------------------------------------

    def _probe_subset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        query = self._check_query(items)
        if any(self.order.try_rank_of(item) is None for item in query):
            return []
        query_signature = self.record_signature(query)
        result: list[int] = []
        for record_id, signature in self._scan_signatures(ctx):
            if signature & query_signature == query_signature:
                if query <= self._verify(record_id, ctx):
                    result.append(record_id)
        return sorted(result)

    def _probe_equality(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        query = self._check_query(items)
        if any(self.order.try_rank_of(item) is None for item in query):
            return []
        query_signature = self.record_signature(query)
        result: list[int] = []
        for record_id, signature in self._scan_signatures(ctx):
            if signature == query_signature:
                if query == self._verify(record_id, ctx):
                    result.append(record_id)
        return sorted(result)

    def _probe_superset(self, items: frozenset, ctx: "ReadContext | None" = None) -> list[int]:
        query = self._check_query(items)
        query_signature = self.record_signature(query)
        mask = (1 << self.signature_bits) - 1
        complement = mask & ~query_signature
        result: list[int] = []
        for record_id, signature in self._scan_signatures(ctx):
            if signature & complement == 0:
                if self._verify(record_id, ctx) <= query:
                    result.append(record_id)
        return sorted(result)

    @property
    def order(self) -> ItemOrder:
        """Frequency order of the vocabulary (used only to hash items)."""
        if self._order is None:
            raise IndexNotBuiltError("the signature file has not been built yet")
        return self._order

    @staticmethod
    def _check_query(items: Iterable[Item]) -> frozenset:
        query = frozenset(items)
        if not query:
            raise QueryError("containment queries require a non-empty query set")
        return query
