"""Query workload generation (the paper's query methodology)."""

from repro.workloads.queries import Query, Workload, WorkloadGenerator, answer_counts

__all__ = ["Query", "Workload", "WorkloadGenerator", "answer_counts"]
