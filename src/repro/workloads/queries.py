"""Query workload generation.

The paper evaluates with queries "that always have an answer", built from
existing set-values selected uniformly from the database (Section 5,
"Queries").  This module reproduces that methodology for all three
predicates:

* **subset** — sample a record with at least ``size`` items and use ``size``
  of its items as the query set (the record itself is then an answer);
* **equality** — sample a record with exactly ``size`` items and use its whole
  set-value (records with that cardinality exist for every generated size or
  the nearest available size is used);
* **superset** — sample a record with at most ``size`` items and pad its
  set-value with random extra items up to ``size`` (the record remains an
  answer because its items are all inside the query set).

A workload :class:`Query` wraps a full query *expression*
(:mod:`repro.core.query.expr`), so workloads are not limited to the three
point predicates: :meth:`WorkloadGenerator.composite_query` draws boolean
combinations (again guaranteed non-empty by construction), which is what the
serving benchmarks use for richer traffic mixes.

Workloads are reproducible (seeded) and keep, for every query, the record it
was derived from — useful when asserting non-empty answers in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.interfaces import QueryType
from repro.core.items import Item
from repro.core.query.expr import And, Equality, Expr, Leaf, Not, Subset, Superset
from repro.core.records import Dataset, Record
from repro.errors import WorkloadError


@dataclass(frozen=True)
class Query:
    """One query of a workload: an expression plus its provenance."""

    expr: Expr
    source_record_id: int = -1

    @property
    def query_type(self) -> "QueryType | None":
        """The predicate for single-leaf queries, ``None`` for composite ones."""
        return QueryType(self.expr.op) if isinstance(self.expr, Leaf) else None

    @property
    def items(self) -> frozenset:
        """All items the expression references (the leaf's set for point queries)."""
        return self.expr.referenced_items()

    @property
    def size(self) -> int:
        """Number of distinct referenced items (the paper's ``|qs|``)."""
        return len(self.items)

    @classmethod
    def point(
        cls, query_type: "QueryType | str", items: Iterable[Item], source_record_id: int = -1
    ) -> "Query":
        """A single-predicate query, mirroring the pre-expression constructor."""
        return cls(QueryType.parse(query_type).leaf(items), source_record_id)


@dataclass
class Workload:
    """A reproducible collection of queries grouped by query size.

    ``query_type`` is ``None`` for workloads of composite expressions.
    """

    query_type: "QueryType | None"
    queries: list[Query] = field(default_factory=list)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def by_size(self) -> dict[int, list[Query]]:
        """Group the queries by ``|qs|``."""
        grouped: dict[int, list[Query]] = {}
        for query in self.queries:
            grouped.setdefault(query.size, []).append(query)
        return grouped


class WorkloadGenerator:
    """Draws containment queries from an existing dataset."""

    def __init__(self, dataset: Dataset, seed: int = 17) -> None:
        self.dataset = dataset
        self._rng = random.Random(seed)
        self._records: list[Record] = list(dataset)
        self._by_length: dict[int, list[Record]] = {}
        for record in self._records:
            self._by_length.setdefault(record.length, []).append(record)
        self._vocabulary_items: list[Item] = sorted(
            dataset.vocabulary, key=lambda item: str(item)
        )

    # -- single-query primitives ---------------------------------------------------

    def subset_query(self, size: int) -> Query:
        """A subset query of ``size`` items drawn from one record's set-value."""
        candidates = [record for record in self._records if record.length >= size]
        if not candidates:
            raise WorkloadError(f"no record has {size} or more items")
        record = self._rng.choice(candidates)
        items = frozenset(self._rng.sample(sorted(record.items, key=str), size))
        return Query(Subset(items), record.record_id)

    def equality_query(self, size: int) -> Query:
        """An equality query equal to some record of cardinality ``size`` (or nearest)."""
        available = sorted(self._by_length)
        if not available:
            raise WorkloadError("the dataset has no records")
        if size not in self._by_length:
            size = min(available, key=lambda length: (abs(length - size), length))
        record = self._rng.choice(self._by_length[size])
        return Query(Equality(frozenset(record.items)), record.record_id)

    def superset_query(self, size: int) -> Query:
        """A superset query of ``size`` items that fully covers one record."""
        candidates = [record for record in self._records if record.length <= size]
        if not candidates:
            raise WorkloadError(f"no record has {size} or fewer items")
        record = self._rng.choice(candidates)
        items = set(record.items)
        extras = [item for item in self._vocabulary_items if item not in items]
        self._rng.shuffle(extras)
        for item in extras:
            if len(items) >= size:
                break
            items.add(item)
        return Query(Superset(frozenset(items)), record.record_id)

    def composite_query(self, size: int) -> Query:
        """A boolean combination that still has a guaranteed answer.

        Built as ``Subset(q) ∧ ¬Superset({x})`` from a sampled record with at
        least two items: the record contains the ``size`` sampled items (the
        subset conjunct holds) and has an item outside ``{x}`` (so it is not
        contained in ``{x}`` and the negated superset conjunct holds too).
        """
        candidates = [record for record in self._records if record.length >= max(size, 2)]
        if not candidates:
            raise WorkloadError(f"no record has {max(size, 2)} or more items")
        record = self._rng.choice(candidates)
        in_order = sorted(record.items, key=str)
        items = frozenset(self._rng.sample(in_order, size))
        excluded = self._rng.choice(in_order)
        return Query(
            And((Subset(items), Not(Superset(frozenset({excluded}))))),
            record.record_id,
        )

    def query(self, query_type: QueryType | str, size: int) -> Query:
        """Generate one query of the requested type and size."""
        query_type = QueryType.parse(query_type)
        if query_type is QueryType.SUBSET:
            return self.subset_query(size)
        if query_type is QueryType.EQUALITY:
            return self.equality_query(size)
        return self.superset_query(size)

    # -- workloads -----------------------------------------------------------------

    def workload(
        self,
        query_type: QueryType | str,
        sizes: Sequence[int],
        queries_per_size: int = 10,
    ) -> Workload:
        """A workload with ``queries_per_size`` queries for every size in ``sizes``.

        The paper uses 10 queries of each size and type; that is the default.
        """
        query_type = QueryType.parse(query_type)
        _check_grid(sizes, queries_per_size)
        workload = Workload(query_type=query_type)
        for size in sizes:
            for _ in range(queries_per_size):
                workload.queries.append(self.query(query_type, size))
        return workload

    def composite_workload(
        self, sizes: Sequence[int], queries_per_size: int = 10
    ) -> Workload:
        """A workload of :meth:`composite_query` expressions over a size grid."""
        _check_grid(sizes, queries_per_size)
        workload = Workload(query_type=None)
        for size in sizes:
            for _ in range(queries_per_size):
                workload.queries.append(self.composite_query(size))
        return workload

    def mixed_workload(
        self, sizes: Sequence[int], queries_per_size: int = 10
    ) -> dict[QueryType, Workload]:
        """One workload per predicate, sharing the same size grid."""
        return {
            query_type: self.workload(query_type, sizes, queries_per_size)
            for query_type in QueryType
        }


def _check_grid(sizes: Sequence[int], queries_per_size: int) -> None:
    if queries_per_size <= 0:
        raise WorkloadError("queries_per_size must be positive")
    for size in sizes:
        if size <= 0:
            raise WorkloadError(f"query sizes must be positive, got {size}")


def answer_counts(queries: Iterable[Query], index) -> list[int]:
    """Evaluate ``queries`` on ``index`` and return the answer cardinalities.

    A convenience used by tests and by the selectivity analysis of the
    ordering ablation.
    """
    return [len(index.evaluate(query.expr)) for query in queries]
