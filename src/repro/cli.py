"""Command-line interface for the OIF reproduction.

The CLI exposes the workflows a downstream user needs without writing Python:

* ``repro-oif generate`` — produce a synthetic / msweb / msnbc transaction file;
* ``repro-oif query`` — build an index over a transaction file and answer a
  containment query, printing the matching record ids and the I/O cost;
* ``repro-oif compare`` — replay a generated workload on the IF and the OIF
  and print the mean page accesses per query size;
* ``repro-oif experiment`` — regenerate one of the paper's figures/tables;
* ``repro-oif serve`` — keep indexes resident and answer containment queries
  over JSON-over-HTTP (see :mod:`repro.service`); with ``--data-dir`` the
  indexes are persisted (pages + manifest + write-ahead log) and a restarted
  server reopens them in seconds — crash-interrupted updates replayed from
  the WAL — instead of rebuilding from the source datasets;
* ``repro-oif client`` — talk to a running server (health, stats, queries,
  index lifecycle, updates, checkpoints).

Run ``repro-oif <command> --help`` for the options of each command.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import __version__
from repro.baselines import InvertedFile, SignatureFile, UnorderedBTreeInvertedFile
from repro.core import OrderedInvertedFile, QueryType, ShardedIndex
from repro.core.query import expr_from_dict
from repro.datasets import (
    MsnbcConfig,
    MswebConfig,
    SyntheticConfig,
    generate_msnbc,
    generate_msweb,
    generate_synthetic,
    read_transactions,
    write_transactions,
)
from repro.errors import ReproError
from repro.obs import trace as obs_trace
from repro.experiments import (
    ExperimentRunner,
    figure7,
    figure8,
    figure9,
    figure10,
    if_factory,
    oif_factory,
    ordering_ablation,
    performance_summary,
    render_tables,
    skew_robustness,
    space_overhead,
    update_tradeoff,
)
from repro.experiments.figures import SyntheticScale
from repro.service import INDEX_KINDS
from repro.workloads import WorkloadGenerator

_INDEX_CLASSES = {
    "oif": OrderedInvertedFile,
    "if": InvertedFile,
    "ubt": UnorderedBTreeInvertedFile,
    "sig": SignatureFile,
}


def _positive_int(value: str) -> int:
    """argparse type for options that must be a positive integer (--shards)."""
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}") from None
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {number}")
    return number


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-oif",
        description="Ordered Inverted File (EDBT 2011) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a dataset as a transaction file")
    generate.add_argument("output", help="path of the transaction file to write")
    generate.add_argument(
        "--kind", choices=("synthetic", "msweb", "msnbc"), default="synthetic"
    )
    generate.add_argument("--records", type=int, default=20_000)
    generate.add_argument("--domain", type=int, default=2000)
    generate.add_argument("--zipf", type=float, default=0.8)
    generate.add_argument("--seed", type=int, default=7)

    query = sub.add_parser(
        "query", help="answer one containment query or expression over a transaction file"
    )
    query.add_argument("data", help="transaction file (one record per line)")
    query.add_argument(
        "predicate", nargs="?", choices=("subset", "equality", "superset"),
        help="point predicate (omit when using --expr)",
    )
    query.add_argument("items", nargs="*", help="query items")
    query.add_argument(
        "--expr",
        help="composite query expression as JSON, e.g. "
        '\'{"op": "and", "args": [{"op": "subset", "items": ["a"]}, '
        '{"op": "not", "arg": {"op": "superset", "items": ["a", "b"]}}]}\'',
    )
    query.add_argument("--index", choices=sorted(_INDEX_CLASSES), default="oif")
    query.add_argument(
        "--shards", type=_positive_int, default=1,
        help="partition the index over N shards (fan-out + merged cursor)",
    )
    query.add_argument(
        "--shard-backend", choices=("threads", "processes"), default="threads",
        help="evaluate shards in-process (default) or in worker processes "
        "(--index oif with --shards > 1 only)",
    )
    query.add_argument(
        "--shard-workers", type=_positive_int, default=None,
        help="worker processes for --shard-backend processes",
    )
    query.add_argument("--limit", type=int, default=20, help="max record ids to print")
    query.add_argument("--explain", action="store_true", help="print the physical plan")
    query.add_argument(
        "--trace", action="store_true",
        help="record per-stage spans (plan, block scan, decode, intersect, "
        "buffer pool) and print the nested span tree",
    )
    query.add_argument(
        "--cpu-profile", type=int, nargs="?", const=15, default=None, metavar="N",
        help="run the query under cProfile and print the top N functions by "
        "cumulative time (default 15) — for diagnosing hot-path regressions",
    )

    compare = sub.add_parser("compare", help="compare IF and OIF on a generated workload")
    compare.add_argument("data", help="transaction file (one record per line)")
    compare.add_argument("--predicate", choices=("subset", "equality", "superset"), default="subset")
    compare.add_argument("--sizes", type=int, nargs="+", default=[2, 3, 4, 5])
    compare.add_argument("--queries-per-size", type=int, default=5)
    compare.add_argument("--seed", type=int, default=17)

    experiment = sub.add_parser("experiment", help="regenerate one of the paper's experiments")
    experiment.add_argument(
        "name",
        choices=(
            "fig7-msweb",
            "fig7-msnbc",
            "fig8",
            "fig9",
            "fig10",
            "space",
            "ordering",
            "updates",
            "summary",
            "skew",
        ),
    )
    experiment.add_argument(
        "--records", type=int, default=20_000, help="base synthetic dataset size"
    )
    experiment.add_argument("--queries-per-size", type=int, default=5)

    serve = sub.add_parser(
        "serve",
        help="serve containment queries over JSON-over-HTTP "
        "(--data-dir makes indexes survive restarts)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    serve.add_argument("--data", help="transaction file to pre-load as an index")
    serve.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="persist OIF indexes under DIR (page images + manifest + WAL) and "
        "reopen every index found there on start — no source dataset needed, "
        "updates acked after the last checkpoint are replayed from the WAL",
    )
    serve.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="SECONDS",
        help="with --data-dir, checkpoint durable indexes every SECONDS in the "
        "background (flush deltas, publish a new generation, truncate the WAL)",
    )
    serve.add_argument(
        "--fsync", choices=("always", "never"), default="always",
        help="WAL fsync policy: 'always' makes every acked update survive power "
        "loss; 'never' trades the WAL tail for update throughput",
    )
    serve.add_argument("--name", default="default", help="name of the pre-loaded index")
    serve.add_argument("--index", choices=sorted(INDEX_KINDS), default="oif")
    serve.add_argument(
        "--shards", type=_positive_int, default=1,
        help="partition the pre-loaded index over N shards (oif only)",
    )
    serve.add_argument(
        "--shard-backend", choices=("threads", "processes"), default="threads",
        help="fan sharded queries out on threads (default) or a persistent "
        "worker-process pool that sidesteps the GIL",
    )
    serve.add_argument(
        "--shard-workers", type=_positive_int, default=None,
        help="worker processes for --shard-backend processes "
        "(default: min(cpus, shards))",
    )
    serve.add_argument("--workers", type=int, default=4, help="query worker threads")
    serve.add_argument("--cache-capacity", type=int, default=4096, help="result cache entries")
    serve.add_argument("--verbose", action="store_true", help="log every HTTP request")
    serve.add_argument(
        "--slow-query-ms", type=float, default=None, metavar="MS",
        help="log queries slower than MS milliseconds to the slow-query ring "
        "(inspect via GET /slowlog)",
    )
    serve.add_argument(
        "--slow-query-log", default=None, metavar="PATH",
        help="also append slow-query records to this JSONL file",
    )
    serve.add_argument(
        "--trace", action="store_true",
        help="record per-stage spans for served queries (span trees appear in "
        "query responses and slow-query records)",
    )
    serve.add_argument(
        "--trace-sample", type=_positive_int, default=1, metavar="N",
        help="with --trace, trace only every N-th query (default: every query)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="bound the admission queue at N waiting queries; excess requests "
        "are shed with 429 + Retry-After (default: unbounded)",
    )
    serve.add_argument(
        "--max-inflight-per-index", type=_positive_int, default=None, metavar="N",
        help="bound concurrent queries per index at N; excess requests are "
        "shed with 429 (default: unbounded)",
    )
    serve.add_argument(
        "--default-deadline-ms", type=float, default=None, metavar="MS",
        help="default wall-clock deadline per query; an expired query stops "
        "at its next page access and answers 408 (requests may override "
        "with 'deadline_ms'; default: none)",
    )

    client = sub.add_parser("client", help="talk to a running repro-oif server")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=8080)
    client_sub = client.add_subparsers(dest="action", required=True)
    client_sub.add_parser("health", help="liveness check")
    client_sub.add_parser("stats", help="serving / cache / index statistics")
    client_sub.add_parser("metrics", help="print the Prometheus text metrics")
    client_sub.add_parser("slowlog", help="print the retained slow-query records")
    client_sub.add_parser("indexes", help="list the resident indexes")
    client_create = client_sub.add_parser("create", help="create an index from a transaction file")
    client_create.add_argument("name")
    client_create.add_argument("data", help="transaction file readable by the *server*")
    client_create.add_argument("--kind", choices=sorted(INDEX_KINDS), default="oif")
    client_create.add_argument(
        "--shards", type=_positive_int, default=1,
        help="partition the index over N shards on the server (oif only)",
    )
    client_drop = client_sub.add_parser("drop", help="drop a resident index")
    client_drop.add_argument("name")
    client_query = client_sub.add_parser("query", help="answer one containment query")
    client_query.add_argument("name", help="index name on the server")
    client_query.add_argument(
        "predicate", nargs="?", choices=("subset", "equality", "superset"),
        help="point predicate (omit when using --expr)",
    )
    client_query.add_argument("items", nargs="*", help="query items")
    client_query.add_argument("--expr", help="composite query expression as JSON")
    client_insert = client_sub.add_parser("insert", help="insert one transaction")
    client_insert.add_argument("name", help="index name on the server")
    client_insert.add_argument("items", nargs="+", help="items of the new record")
    client_insert.add_argument("--flush", action="store_true", help="merge the delta afterwards")
    client_delete = client_sub.add_parser("delete", help="delete records by id")
    client_delete.add_argument("name", help="index name on the server")
    client_delete.add_argument("record_ids", nargs="+", type=int, help="record ids to delete")
    client_delete.add_argument("--flush", action="store_true", help="merge the delta afterwards")
    client_checkpoint = client_sub.add_parser(
        "checkpoint",
        help="flush deltas and publish a new on-disk generation (durable indexes)",
    )
    client_checkpoint.add_argument("name", help="index name on the server")
    client_checkpoint.add_argument(
        "--force", action="store_true",
        help="write a new generation even when nothing changed",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "synthetic":
        dataset = generate_synthetic(
            SyntheticConfig(
                num_records=args.records,
                domain_size=args.domain,
                zipf_order=args.zipf,
                seed=args.seed,
            )
        )
    elif args.kind == "msweb":
        dataset = generate_msweb(MswebConfig(num_sessions=args.records, seed=args.seed))
    else:
        dataset = generate_msnbc(MsnbcConfig(num_sessions=args.records, seed=args.seed))
    write_transactions(dataset, args.output)
    print(
        f"wrote {len(dataset)} records over {dataset.domain_size} items "
        f"(avg length {dataset.average_length:.2f}) to {args.output}"
    )
    return 0


def _parse_cli_expr(args: argparse.Namespace):
    """Resolve the query expression from ``--expr`` or the positional predicate."""
    if args.expr is not None:
        if args.predicate or args.items:
            raise ReproError("pass either --expr or a predicate with items, not both")
        try:
            wire = json.loads(args.expr)
        except json.JSONDecodeError as error:
            raise ReproError(f"--expr is not valid JSON: {error}") from None
        return expr_from_dict(wire)
    if not args.predicate or not args.items:
        raise ReproError("need a predicate with items, or --expr")
    return QueryType.parse(args.predicate).leaf(args.items)


def _cmd_query(args: argparse.Namespace) -> int:
    dataset = read_transactions(args.data)
    index_class = _INDEX_CLASSES[args.index]
    pool = None
    if args.shard_backend == "processes":
        if args.index != "oif" or args.shards <= 1:
            raise ReproError(
                "--shard-backend processes needs --index oif with --shards > 1"
            )
        from repro.core.shard import ShardProcessPool

        # Catalog-enabled shard environments so the pool can image them.
        index = ShardedIndex(dataset, args.shards, catalog_pages=True)
        pool = ShardProcessPool(index, args.shard_workers)
        index.attach_process_pool(pool)
    elif args.shards > 1:
        index = ShardedIndex(
            dataset, args.shards, factory=lambda shard_ds: index_class(shard_ds)
        )
    else:
        index = index_class(dataset)
    expr = _parse_cli_expr(args)
    try:
        if args.explain:
            # Plan without opening a cursor: executing here would warm the buffer
            # pool and distort the measured page accesses below.
            print(index.explain(expr))
        root = None
        if args.trace:
            obs_trace.configure(enabled=True)
            root = obs_trace.begin("query", index=index.name)
        if args.cpu_profile is not None:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            result = index.measured_execute(expr)
            profiler.disable()
        else:
            result = index.measured_execute(expr)
        span_tree = None
        if args.trace:
            span_tree = obs_trace.finish(root)
            obs_trace.disable()
        shown = ", ".join(str(record_id) for record_id in result.record_ids[: args.limit])
        suffix = " ..." if result.cardinality > args.limit else ""
        print(f"{result.cardinality} matching records: {shown}{suffix}")
        print(
            f"cost: {result.page_accesses} page accesses "
            f"({result.random_reads} random, {result.sequential_reads} sequential), "
            f"{result.io_time_ms:.2f} ms simulated I/O, {result.cpu_time_ms:.2f} ms CPU"
        )
        if span_tree is not None:
            print("\ntrace:")
            print(obs_trace.format_tree(span_tree))
        if args.cpu_profile is not None:
            print(f"\ncProfile: top {args.cpu_profile} by cumulative time")
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.strip_dirs().sort_stats("cumulative").print_stats(args.cpu_profile)
        return 0
    finally:
        if pool is not None:
            pool.close()


def _cmd_compare(args: argparse.Namespace) -> int:
    dataset = read_transactions(args.data)
    generator = WorkloadGenerator(dataset, seed=args.seed)
    workload = generator.workload(args.predicate, args.sizes, args.queries_per_size)
    runner = ExperimentRunner()
    results = runner.compare(dataset, workload, (if_factory(), oif_factory()))
    print(f"{args.predicate} queries over {args.data} ({len(dataset)} records)")
    header = f"{'|qs|':>5}  " + "  ".join(f"{name:>12}" for name in results)
    print(header)
    for size in args.sizes:
        row = [f"{size:>5}"]
        for name, run in results.items():
            costs = {cost.group: cost for cost in run.by_query_size()}
            cost = costs.get(size)
            row.append(f"{cost.mean_page_accesses:>12.1f}" if cost else f"{'-':>12}")
        print("  ".join(row))
    print("(mean disk page accesses per query; lower is better)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = SyntheticScale(base_records=args.records, queries_per_size=args.queries_per_size)
    name = args.name
    if name == "fig7-msweb":
        tables = [figure7("msweb", queries_per_size=args.queries_per_size)]
    elif name == "fig7-msnbc":
        tables = [figure7("msnbc", queries_per_size=args.queries_per_size)]
    elif name == "fig8":
        tables = list(figure8(scale).values())
    elif name == "fig9":
        tables = list(figure9(scale).values())
    elif name == "fig10":
        tables = list(figure10(scale).values())
    elif name == "space":
        tables = [space_overhead(num_records=args.records)]
    elif name == "ordering":
        tables = [ordering_ablation(num_records=args.records, queries_per_size=args.queries_per_size)]
    elif name == "updates":
        tables = [update_tradeoff(num_records=min(args.records, 10_000))]
    elif name == "summary":
        tables = [performance_summary(num_records=args.records)]
    else:
        tables = [skew_robustness(num_records=args.records)]
    print(render_tables(tables))
    return 0


def build_server(args: argparse.Namespace):
    """Construct (and pre-load) the service server for ``repro-oif serve``."""
    from repro.service import ServiceServer

    server = ServiceServer(
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        cache_capacity=args.cache_capacity,
        quiet=not args.verbose,
        slow_query_ms=args.slow_query_ms,
        slow_query_log=args.slow_query_log,
        trace=args.trace,
        trace_sample=args.trace_sample,
        data_dir=args.data_dir,
        checkpoint_interval=args.checkpoint_interval,
        fsync=args.fsync,
        shard_backend=args.shard_backend,
        shard_workers=args.shard_workers,
        max_queue=args.max_queue,
        max_inflight_per_index=args.max_inflight_per_index,
        default_deadline_ms=args.default_deadline_ms,
    )
    for info in server.recovered:
        print(
            f"recovered index {info['name']!r}: generation {info['generation']}, "
            f"{info['records']} records, {info['wal_records_replayed']} WAL "
            f"records replayed in {info['open_seconds']}s"
        )
    if args.shards > 1 and not args.data:
        server.shutdown()
        raise ReproError("--shards only applies to the pre-loaded index; pass --data")
    if args.shard_backend == "processes" and args.data and (
        args.shards <= 1 or args.index != "oif"
    ):
        server.shutdown()
        raise ReproError(
            "--shard-backend processes needs the pre-loaded index to be "
            "--index oif with --shards > 1"
        )
    if args.data and args.name in server.manager:
        # --data-dir already brought this name back; the transaction file was
        # only its original seed, so don't build (or error) over the
        # recovered index.
        print(f"index {args.name!r} already resident from --data-dir; skipping --data")
    elif args.data:
        options = {"shards": args.shards} if args.shards > 1 else {}
        try:
            dataset = read_transactions(args.data)
            server.manager.create(args.name, dataset, kind=args.index, **options)
        except ReproError:
            server.shutdown()  # release the bound socket and worker pool
            raise
        except OSError as error:
            server.shutdown()
            raise ReproError(f"cannot read transaction file: {error}") from error
        sharding = f", {args.shards} shards" if args.shards > 1 else ""
        print(
            f"loaded index {args.name!r} ({args.index}{sharding}) over "
            f"{len(dataset)} records from {args.data}"
        )
    return server


def _cmd_serve(args: argparse.Namespace) -> int:
    server = build_server(args)
    print(f"serving on {server.url} ({args.workers} workers; Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    # One-shot CLI invocations still close their keep-alive connection
    # explicitly, so the server's handler thread is released immediately.
    with client:
        return _run_client_action(client, args)


def _run_client_action(client, args: argparse.Namespace) -> int:
    if args.action == "health":
        payload = client.healthz()
    elif args.action == "stats":
        payload = client.stats()
    elif args.action == "metrics":
        # Prometheus text, not JSON — print verbatim.
        print(client.metrics(), end="")
        return 0
    elif args.action == "slowlog":
        payload = client.slowlog()
    elif args.action == "indexes":
        payload = {"indexes": client.indexes()}
    elif args.action == "create":
        payload = client.create_index(
            args.name,
            path=args.data,
            kind=args.kind,
            shards=args.shards if args.shards > 1 else None,
        )
    elif args.action == "drop":
        payload = client.drop_index(args.name)
    elif args.action == "insert":
        payload = client.insert(args.name, [args.items], flush=args.flush)
    elif args.action == "delete":
        payload = client.delete(args.name, args.record_ids, flush=args.flush)
    elif args.action == "checkpoint":
        payload = client.checkpoint(args.name, force=args.force)
    elif args.expr is not None:
        if args.predicate or args.items:
            raise ReproError("pass either --expr or a predicate with items, not both")
        try:
            payload = client.query_expr(args.name, json.loads(args.expr))
        except json.JSONDecodeError as error:
            raise ReproError(f"--expr is not valid JSON: {error}") from None
    elif not args.predicate or not args.items:
        raise ReproError("need a predicate with items, or --expr")
    else:
        payload = client.query(args.name, args.predicate, args.items)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used both by ``python -m repro.cli`` and the console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "client":
            return _cmd_client(args)
        return _cmd_experiment(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
