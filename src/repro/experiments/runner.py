"""Experiment runner: builds indexes, replays workloads, aggregates costs.

The runner reproduces the paper's measurement methodology (Section 5,
"Performance evaluation"):

* the database cache is set to the Berkeley DB minimum (32 KB) and the buffer
  pool is emptied before each query, so the reported *disk page accesses* are
  cache misses against an effectively cold cache;
* every query is charged with the page accesses, simulated I/O time (random
  and sequential accesses priced separately) and measured CPU time it caused;
* per group (usually one query size) the runner reports the mean over the
  group's queries, which is what the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.baselines.inverted_file import InvertedFile
from repro.baselines.signature_file import SignatureFile
from repro.baselines.unordered_btree import UnorderedBTreeInvertedFile
from repro.core.interfaces import QueryResult, QueryType, SetContainmentIndex
from repro.core.oif import OrderedInvertedFile
from repro.core.records import Dataset
from repro.core.shard import ShardedIndex
from repro.errors import ExperimentError
from repro.workloads.queries import Query, Workload

IndexBuilder = Callable[[Dataset], SetContainmentIndex]


@dataclass(frozen=True)
class IndexFactory:
    """A named recipe for building an index over a dataset."""

    name: str
    build: IndexBuilder

    def __call__(self, dataset: Dataset) -> SetContainmentIndex:
        return self.build(dataset)


def oif_factory(name: str = "OIF", **kwargs) -> IndexFactory:
    """Factory for the Ordered Inverted File (keyword args forwarded to it)."""
    return IndexFactory(name, lambda dataset: OrderedInvertedFile(dataset, **kwargs))


def sharded_oif_factory(
    name: "str | None" = None,
    num_shards: int = 4,
    strategy: str = "hash",
    **kwargs,
) -> IndexFactory:
    """Factory for the OIF partitioned over ``num_shards`` shards.

    ``measured_execute`` aggregates page counts across the shard
    environments (:meth:`SetContainmentIndex.io_snapshot`), so runs of this
    factory are directly comparable with the monolithic figures.
    """
    return IndexFactory(
        name or f"OIFx{num_shards}",
        lambda dataset: ShardedIndex(
            dataset, num_shards, strategy=strategy, **kwargs
        ),
    )


def if_factory(name: str = "IF", **kwargs) -> IndexFactory:
    """Factory for the classic inverted file baseline."""
    return IndexFactory(name, lambda dataset: InvertedFile(dataset, **kwargs))


def unordered_btree_factory(name: str = "UBT", **kwargs) -> IndexFactory:
    """Factory for the unordered B-tree ablation baseline."""
    return IndexFactory(name, lambda dataset: UnorderedBTreeInvertedFile(dataset, **kwargs))


def signature_factory(name: str = "SIG", **kwargs) -> IndexFactory:
    """Factory for the signature-file extension baseline."""
    return IndexFactory(name, lambda dataset: SignatureFile(dataset, **kwargs))


DEFAULT_FACTORIES: tuple[IndexFactory, ...] = (if_factory(), oif_factory())


@dataclass
class GroupCost:
    """Aggregated cost of one (index, query type, group) cell of a figure."""

    index_name: str
    query_type: "QueryType | None"
    group: object
    num_queries: int
    mean_page_accesses: float
    mean_random_reads: float
    mean_sequential_reads: float
    mean_io_ms: float
    mean_cpu_ms: float
    mean_answers: float

    @property
    def mean_total_ms(self) -> float:
        """Mean simulated I/O time plus measured CPU time."""
        return self.mean_io_ms + self.mean_cpu_ms


@dataclass
class RunResult:
    """All measurements of one workload replay on one index."""

    index_name: str
    query_type: "QueryType | None"
    results: list[QueryResult] = field(default_factory=list)

    def group_by(self, key: Callable[[QueryResult], object]) -> list[GroupCost]:
        """Aggregate the raw per-query results into group means."""
        grouped: dict[object, list[QueryResult]] = {}
        for result in self.results:
            grouped.setdefault(key(result), []).append(result)
        costs: list[GroupCost] = []
        for group, members in sorted(grouped.items(), key=lambda pair: str(pair[0])):
            count = len(members)
            costs.append(
                GroupCost(
                    index_name=self.index_name,
                    query_type=self.query_type,
                    group=group,
                    num_queries=count,
                    mean_page_accesses=sum(m.page_accesses for m in members) / count,
                    mean_random_reads=sum(m.random_reads for m in members) / count,
                    mean_sequential_reads=sum(m.sequential_reads for m in members) / count,
                    mean_io_ms=sum(m.io_time_ms for m in members) / count,
                    mean_cpu_ms=sum(m.cpu_time_ms for m in members) / count,
                    mean_answers=sum(m.cardinality for m in members) / count,
                )
            )
        return costs

    def by_query_size(self) -> list[GroupCost]:
        """Aggregate by ``|qs|`` — the grouping used by most of the figures."""
        return self.group_by(lambda result: len(result.query_items))

    def overall(self, group_label: object = "all") -> GroupCost:
        """Collapse the whole run into a single group."""
        groups = self.group_by(lambda _result: group_label)
        if not groups:
            raise ExperimentError("cannot aggregate an empty run")
        return groups[0]


#: Per-query measurement callback: receives one JSON-friendly dict per query.
MetricsSink = Callable[[dict], None]


class ExperimentRunner:
    """Replays workloads against indexes under the paper's caching regime.

    ``metrics_sink``, when given, receives one JSON-friendly dict per
    executed query (index name, query type and size, page/read counts,
    simulated I/O and measured CPU time) — the benchmark harness points it
    at the run's ``metrics.jsonl`` so every replayed query leaves a record.
    """

    def __init__(
        self,
        drop_cache_per_query: bool = True,
        metrics_sink: "MetricsSink | None" = None,
    ) -> None:
        self.drop_cache_per_query = drop_cache_per_query
        self.metrics_sink = metrics_sink

    def run_queries(
        self,
        index: SetContainmentIndex,
        queries: Iterable[Query],
        query_type: QueryType | None = None,
    ) -> RunResult:
        """Run ``queries`` on ``index`` and collect per-query measurements."""
        queries = list(queries)
        if not queries:
            raise ExperimentError("cannot run an empty workload")
        resolved_type = query_type or queries[0].query_type
        run = RunResult(index_name=index.name, query_type=resolved_type)
        for query in queries:
            if self.drop_cache_per_query:
                index.drop_cache()
            result = index.measured_execute(query.expr)
            run.results.append(result)
            if self.metrics_sink is not None:
                self.metrics_sink(
                    {
                        "index": index.name,
                        "query_type": resolved_type.value if resolved_type else None,
                        "query_size": len(result.query_items),
                        "page_accesses": result.page_accesses,
                        "random_reads": result.random_reads,
                        "sequential_reads": result.sequential_reads,
                        "io_ms": result.io_time_ms,
                        "cpu_ms": result.cpu_time_ms,
                        "answers": result.cardinality,
                    }
                )
        return run

    def run_workload(self, index: SetContainmentIndex, workload: Workload) -> RunResult:
        """Run a generated :class:`~repro.workloads.queries.Workload`."""
        return self.run_queries(index, workload.queries, workload.query_type)

    def compare(
        self,
        dataset: Dataset,
        workload: Workload,
        factories: Sequence[IndexFactory] = DEFAULT_FACTORIES,
    ) -> dict[str, RunResult]:
        """Build every index over ``dataset`` and replay ``workload`` on each."""
        results: dict[str, RunResult] = {}
        for factory in factories:
            index = factory(dataset)
            index.name = factory.name
            results[factory.name] = self.run_workload(index, workload)
        return results
