"""Plain-text rendering of experiment results.

Every experiment in :mod:`repro.experiments.figures` returns a
:class:`ResultTable`; this module turns those tables into aligned text output
so that the benchmark harness and the CLI can print the same series the paper
plots (one row per sweep point, one column per index and metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class ResultTable:
    """A titled table of result rows (dictionaries sharing the same keys)."""

    title: str
    columns: list[str]
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append one row; unknown columns are appended to the column list."""
        for column in values:
            if column not in self.columns:
                self.columns.append(column)
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Attach a free-text note rendered under the table."""
        self.notes.append(note)

    def column(self, name: str) -> list[object]:
        """All values of one column, in row order (missing cells become None)."""
        return [row.get(name) for row in self.rows]

    def to_text(self) -> str:
        """Render the table as aligned plain text."""
        return render_table(self)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(table: ResultTable) -> str:
    """Render a :class:`ResultTable` with aligned columns and a title rule."""
    header = list(table.columns)
    body = [[_format_cell(row.get(column)) for column in header] for row in table.rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [table.title, "=" * max(len(table.title), 1)]
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    for note in table.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_tables(tables: Iterable[ResultTable]) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(table.to_text() for table in tables)


def summarize_ratio(
    table: ResultTable, numerator: str, denominator: str
) -> float:
    """Mean ratio ``numerator / denominator`` over the table rows (for quick checks)."""
    ratios: list[float] = []
    for row in table.rows:
        top = row.get(numerator)
        bottom = row.get(denominator)
        if isinstance(top, (int, float)) and isinstance(bottom, (int, float)) and bottom:
            ratios.append(float(top) / float(bottom))
    return sum(ratios) / len(ratios) if ratios else float("nan")


def format_series(label: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """One-line rendering of a plotted series (x -> y pairs)."""
    pairs = ", ".join(f"{x}:{_format_cell(y)}" for x, y in zip(xs, ys))
    return f"{label}: {pairs}"
