"""Reproductions of every figure and table of the paper's evaluation (Section 5).

Each public function regenerates one experimental artefact and returns one or
more :class:`~repro.experiments.report.ResultTable` objects holding the same
series the paper plots.  The corresponding benchmark in ``benchmarks/`` simply
calls the function and prints the table.

Scaling
-------
The paper's synthetic experiments run on 1M–50M records; pure Python cannot
sort and index 50M records in benchmark time, so every function takes a
``num_records`` (and related) parameter whose default is laptop-scale.  The
*shape* of each figure — which index wins, how the gap evolves along the
sweep — is what the reproduction targets; EXPERIMENTS.md records both the
paper's and the reproduced numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.interfaces import QueryType, SetContainmentIndex
from repro.core.records import Dataset
from repro.core.updates import UpdatableIF, UpdatableOIF
from repro.datasets.msnbc import MsnbcConfig
from repro.datasets.msweb import MswebConfig
from repro.datasets.synthetic import SyntheticConfig
from repro.errors import ExperimentError
from repro.experiments import cache
from repro.experiments.report import ResultTable
from repro.experiments.runner import (
    ExperimentRunner,
    GroupCost,
    IndexFactory,
    if_factory,
    oif_factory,
    unordered_btree_factory,
)
from repro.workloads.queries import WorkloadGenerator

#: Query sizes used for the real-data experiments (Figure 7).
REAL_DATA_QUERY_SIZES: tuple[int, ...] = (2, 3, 4, 5, 6, 7)
#: Query sizes used for the synthetic |qs| sweeps (Figures 8-10).
SYNTHETIC_QUERY_SIZES: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)
#: Domain sizes of the synthetic |I| sweep.
DOMAIN_SWEEP: tuple[int, ...] = (500, 2000, 8000)
#: Zipf orders of the skew sweep.
ZIPF_SWEEP: tuple[float, ...] = (0.0, 0.4, 0.8, 1.0)


@dataclass(frozen=True)
class SyntheticScale:
    """Scaled-down stand-ins for the paper's synthetic dataset sizes.

    The paper sweeps |D| over 1M / 5M / 10M / 50M with a default of 10M; the
    reproduction keeps the same 1 : 5 : 10 : 50 proportions at a configurable
    base so the scaling trend is preserved.
    """

    base_records: int = 40_000
    queries_per_size: int = 5
    default_query_size: int = 4
    seed: int = 7

    @property
    def database_sweep(self) -> tuple[int, ...]:
        """Record counts standing in for the paper's 1M/5M/10M/50M sweep."""
        unit = max(self.base_records // 10, 200)
        return (unit, 5 * unit, 10 * unit, 50 * unit)


DEFAULT_SCALE = SyntheticScale()
SMALL_SCALE = SyntheticScale(base_records=3_000, queries_per_size=3)


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _build_pair(
    dataset: Dataset, dataset_key: object, factories: Sequence[IndexFactory]
) -> list[SetContainmentIndex]:
    """Build (or reuse) the given indexes over ``dataset``."""
    indexes: list[SetContainmentIndex] = []
    for factory in factories:
        index = cache.cached_index(dataset_key, factory.name, lambda f=factory: f(dataset))
        index.name = factory.name
        indexes.append(index)
    return indexes


def _shared_workload(
    dataset: Dataset,
    query_type: QueryType,
    sizes: Sequence[int],
    queries_per_size: int,
    seed: int,
):
    """One workload reused by every index of a comparison (same queries for all).

    Regenerating the workload per index would hand different random queries to
    each competitor and make the comparison unfair; the generator is therefore
    seeded per (dataset, predicate, size grid) and the result cached.
    """
    key = ("workload", id(dataset), query_type, tuple(sizes), queries_per_size, seed)
    if key not in _workload_cache:
        generator = WorkloadGenerator(dataset, seed=seed)
        _workload_cache[key] = generator.workload(query_type, sizes, queries_per_size)
    return _workload_cache[key]


_workload_cache: dict[object, object] = {}


def _overall_cost(index: SetContainmentIndex, workload) -> GroupCost:
    """Mean cost of a workload, collapsed over all its queries."""
    runner = ExperimentRunner(drop_cache_per_query=True)
    return runner.run_workload(index, workload).overall()


def _per_size_costs(index: SetContainmentIndex, workload) -> dict[int, GroupCost]:
    """Mean cost per query size."""
    runner = ExperimentRunner(drop_cache_per_query=True)
    run = runner.run_workload(index, workload)
    return {cost.group: cost for cost in run.by_query_size()}


def _synthetic_dataset(
    num_records: int, domain_size: int, zipf_order: float, seed: int
) -> tuple[Dataset, SyntheticConfig]:
    config = SyntheticConfig(
        num_records=num_records,
        domain_size=domain_size,
        zipf_order=zipf_order,
        seed=seed,
    )
    return cache.synthetic_dataset(config), config


# ---------------------------------------------------------------------------
# Figure 7 — real datasets
# ---------------------------------------------------------------------------


def figure7(
    dataset_name: str = "msweb",
    *,
    sizes: Sequence[int] = REAL_DATA_QUERY_SIZES,
    queries_per_size: int = 5,
    num_sessions: int | None = None,
    replicas: int = 3,
    seed: int = 11,
) -> ResultTable:
    """Figure 7: page accesses per query size on the (simulated) real datasets.

    ``dataset_name`` is ``"msweb"`` (row 1 of the figure) or ``"msnbc"``
    (row 2).  The result has one row per (query type, |qs|) combination with
    the mean disk page accesses of the IF and the OIF.
    """
    if dataset_name == "msweb":
        config = MswebConfig(
            num_sessions=num_sessions or 8_000, replicas=replicas, seed=seed
        )
        dataset = cache.msweb_dataset(config)
    elif dataset_name == "msnbc":
        config = MsnbcConfig(num_sessions=num_sessions or 40_000, seed=seed)
        dataset = cache.msnbc_dataset(config)
    else:
        raise ExperimentError(f"unknown real dataset {dataset_name!r}")

    indexes = _build_pair(dataset, config, (if_factory(), oif_factory()))

    table = ResultTable(
        title=f"Figure 7 ({dataset_name}): disk page accesses vs |qs|",
        columns=["query_type", "qs"],
    )
    table.add_note(
        f"simulated {dataset_name}: {len(dataset)} records, |I|={dataset.domain_size}, "
        f"avg length {dataset.average_length:.2f}"
    )
    for query_type in QueryType:
        workload = _shared_workload(dataset, query_type, sizes, queries_per_size, seed)
        per_index: dict[str, dict[int, GroupCost]] = {}
        for index in indexes:
            per_index[index.name] = _per_size_costs(index, workload)
        for size in sizes:
            row: dict[str, object] = {"query_type": query_type.value, "qs": size}
            for index in indexes:
                cost = per_index[index.name].get(size)
                if cost is None:
                    continue
                row[f"{index.name}_pages"] = cost.mean_page_accesses
                row[f"{index.name}_io_ms"] = cost.mean_io_ms
                row[f"{index.name}_answers"] = cost.mean_answers
            table.add_row(**row)
    return table


# ---------------------------------------------------------------------------
# Figures 8, 9, 10 — synthetic sweeps
# ---------------------------------------------------------------------------


def _synthetic_sweep_tables(
    query_type: QueryType,
    scale: SyntheticScale,
    factories: Sequence[IndexFactory],
) -> dict[str, ResultTable]:
    """The four sweeps (|I|, |D|, |qs|, zipf) for one predicate."""
    figure_number = {
        QueryType.SUBSET: 8,
        QueryType.EQUALITY: 9,
        QueryType.SUPERSET: 10,
    }[query_type]
    tables: dict[str, ResultTable] = {}
    sweep_sizes = (scale.default_query_size,)

    # --- |I| sweep -----------------------------------------------------------
    table = ResultTable(
        title=f"Figure {figure_number}: {query_type.value} queries vs domain size |I|",
        columns=["domain_size"],
    )
    for domain_size in DOMAIN_SWEEP:
        dataset, config = _synthetic_dataset(
            scale.base_records, domain_size, 0.8, scale.seed
        )
        indexes = _build_pair(dataset, config, factories)
        workload = _shared_workload(
            dataset, query_type, sweep_sizes, scale.queries_per_size, scale.seed
        )
        row: dict[str, object] = {"domain_size": domain_size}
        for index in indexes:
            cost = _overall_cost(index, workload)
            row[f"{index.name}_pages"] = cost.mean_page_accesses
            row[f"{index.name}_io_ms"] = cost.mean_io_ms
            row[f"{index.name}_cpu_ms"] = cost.mean_cpu_ms
        table.add_row(**row)
    tables["domain"] = table

    # --- |D| sweep -----------------------------------------------------------
    table = ResultTable(
        title=f"Figure {figure_number}: {query_type.value} queries vs database size |D|",
        columns=["num_records"],
    )
    table.add_note(
        "record counts stand in for the paper's 1M/5M/10M/50M sweep at the same 1:5:10:50 ratios"
    )
    for num_records in scale.database_sweep:
        dataset, config = _synthetic_dataset(num_records, 2000, 0.8, scale.seed)
        indexes = _build_pair(dataset, config, factories)
        workload = _shared_workload(
            dataset, query_type, sweep_sizes, scale.queries_per_size, scale.seed
        )
        row = {"num_records": num_records}
        for index in indexes:
            cost = _overall_cost(index, workload)
            row[f"{index.name}_pages"] = cost.mean_page_accesses
            row[f"{index.name}_io_ms"] = cost.mean_io_ms
            row[f"{index.name}_cpu_ms"] = cost.mean_cpu_ms
        table.add_row(**row)
    tables["database"] = table

    # --- |qs| sweep ----------------------------------------------------------
    table = ResultTable(
        title=f"Figure {figure_number}: {query_type.value} queries vs query size |qs|",
        columns=["qs"],
    )
    dataset, config = _synthetic_dataset(scale.base_records, 2000, 0.8, scale.seed)
    indexes = _build_pair(dataset, config, factories)
    qs_workload = _shared_workload(
        dataset, query_type, SYNTHETIC_QUERY_SIZES, scale.queries_per_size, scale.seed
    )
    per_index = {index.name: _per_size_costs(index, qs_workload) for index in indexes}
    for size in SYNTHETIC_QUERY_SIZES:
        row = {"qs": size}
        for index in indexes:
            cost = per_index[index.name].get(size)
            if cost is None:
                continue
            row[f"{index.name}_pages"] = cost.mean_page_accesses
            row[f"{index.name}_io_ms"] = cost.mean_io_ms
            row[f"{index.name}_cpu_ms"] = cost.mean_cpu_ms
        table.add_row(**row)
    tables["query_size"] = table

    # --- zipf sweep ----------------------------------------------------------
    table = ResultTable(
        title=f"Figure {figure_number}: {query_type.value} queries vs item skew (zipf)",
        columns=["zipf"],
    )
    for zipf in ZIPF_SWEEP:
        dataset, config = _synthetic_dataset(scale.base_records, 2000, zipf, scale.seed)
        indexes = _build_pair(dataset, config, factories)
        workload = _shared_workload(
            dataset, query_type, sweep_sizes, scale.queries_per_size, scale.seed
        )
        row = {"zipf": zipf}
        for index in indexes:
            cost = _overall_cost(index, workload)
            row[f"{index.name}_pages"] = cost.mean_page_accesses
            row[f"{index.name}_io_ms"] = cost.mean_io_ms
            row[f"{index.name}_cpu_ms"] = cost.mean_cpu_ms
        table.add_row(**row)
    tables["zipf"] = table

    return tables


def figure8(scale: SyntheticScale = DEFAULT_SCALE) -> dict[str, ResultTable]:
    """Figure 8: subset queries on synthetic data (|I|, |D|, |qs| and zipf sweeps)."""
    return _synthetic_sweep_tables(QueryType.SUBSET, scale, (if_factory(), oif_factory()))


def figure9(scale: SyntheticScale = DEFAULT_SCALE) -> dict[str, ResultTable]:
    """Figure 9: equality queries on synthetic data (same sweeps as Figure 8)."""
    return _synthetic_sweep_tables(QueryType.EQUALITY, scale, (if_factory(), oif_factory()))


def figure10(scale: SyntheticScale = DEFAULT_SCALE) -> dict[str, ResultTable]:
    """Figure 10: superset queries on synthetic data (same sweeps as Figure 8)."""
    return _synthetic_sweep_tables(QueryType.SUPERSET, scale, (if_factory(), oif_factory()))


# ---------------------------------------------------------------------------
# Space overhead (Section 5, "Space overhead")
# ---------------------------------------------------------------------------


def space_overhead(
    num_records: int = 40_000,
    domain_size: int = 2000,
    zipf_order: float = 0.8,
    seed: int = 7,
) -> ResultTable:
    """Index size as a fraction of the raw data, for the IF and the OIF.

    The paper reports the OIF at ~35% of the original data vs ~22% for the IF
    (and OIF posting lists ~5% smaller than IF lists thanks to the metadata).
    """
    dataset, config = _synthetic_dataset(num_records, domain_size, zipf_order, seed)
    data_bytes = dataset.data_size_bytes()

    oif = cache.cached_index(config, "OIF", lambda: oif_factory()(dataset))
    inverted = cache.cached_index(config, "IF", lambda: if_factory()(dataset))

    table = ResultTable(
        title="Space overhead: index size relative to the raw data",
        columns=[
            "index",
            "pages",
            "index_bytes",
            "fraction_of_data",
            "postings_stored",
            "posting_bytes",
        ],
    )
    oif_report = oif.build_report
    if_report = inverted.build_report
    assert oif_report is not None and if_report is not None
    table.add_row(
        index="IF",
        pages=if_report.index_pages,
        index_bytes=if_report.index_size_bytes,
        fraction_of_data=if_report.index_size_bytes / data_bytes,
        postings_stored=if_report.num_postings,
        posting_bytes=_if_posting_bytes(inverted),
    )
    table.add_row(
        index="OIF",
        pages=oif_report.index_pages,
        index_bytes=oif_report.index_size_bytes,
        fraction_of_data=oif_report.index_size_bytes / data_bytes,
        postings_stored=oif_report.num_postings,
        posting_bytes=oif.posting_bytes,
    )
    table.add_note(
        f"raw data: {data_bytes} bytes, {dataset.total_postings} (record, item) pairs; "
        f"the OIF omits {oif_report.postings_saved_by_metadata} postings via the metadata table"
    )
    return table


def _if_posting_bytes(inverted) -> int:
    """Total encoded size of the IF's posting lists."""
    total = 0
    for item in inverted.dataset.vocabulary:
        postings = inverted.fetch_list(item)
        if postings:
            total += len(inverted._codec.encode(postings))
    return total


# ---------------------------------------------------------------------------
# Impact of the OIF ordering (unordered B-tree ablation)
# ---------------------------------------------------------------------------


def ordering_ablation(
    num_records: int = 40_000,
    domain_size: int = 2000,
    zipf_order: float = 0.8,
    sizes: Sequence[int] = (2, 3, 4, 6, 8),
    queries_per_size: int = 5,
    seed: int = 7,
) -> ResultTable:
    """Subset queries on the OIF vs an unordered B-tree over the lists vs the IF.

    Reproduces the "Impact of the OIF ordering" experiment: the unordered
    B-tree shares the OIF's blocked layout but not its ordering/metadata, so
    the gap between the two isolates the contribution of the ordering.  Query
    size varies the selectivity (larger |qs| -> fewer answers), standing in for
    the paper's 1e-7..1e-2 selectivity sweep.
    """
    dataset, config = _synthetic_dataset(num_records, domain_size, zipf_order, seed)
    factories = (if_factory(), unordered_btree_factory(), oif_factory())
    indexes = _build_pair(dataset, config, factories)
    workload = _shared_workload(dataset, QueryType.SUBSET, sizes, queries_per_size, seed)

    table = ResultTable(
        title="Impact of the OIF ordering: subset queries (IF vs unordered B-tree vs OIF)",
        columns=["qs"],
    )
    per_index = {index.name: _per_size_costs(index, workload) for index in indexes}
    for size in sizes:
        row: dict[str, object] = {"qs": size}
        for index in indexes:
            cost = per_index[index.name].get(size)
            if cost is None:
                continue
            row[f"{index.name}_pages"] = cost.mean_page_accesses
            row[f"{index.name}_answers"] = cost.mean_answers
        table.add_row(**row)
    table.add_note("answer counts double as the achieved selectivity (|answers| / |D|)")
    return table


# ---------------------------------------------------------------------------
# Updates and the query/update trade-off (Section 4.4 and "Performance summary")
# ---------------------------------------------------------------------------


def update_tradeoff(
    num_records: int = 30_000,
    domain_size: int = 2000,
    zipf_order: float = 0.8,
    update_fractions: Sequence[float] = (0.05, 0.1, 0.2),
    queries_per_size: int = 5,
    seed: int = 7,
) -> ResultTable:
    """Batch-update cost of the OIF vs the IF, plus the break-even update:query ratio.

    The paper inserts 200K records into a 1M-record dataset and reports the IF
    at ~0.06 ms/record, the OIF at ~0.135 ms/record (3-5x slower), both linear
    in the update size, and a break-even ratio of roughly 766 updates per
    query.  The reproduction scales the dataset down but reports the same
    quantities.
    """
    dataset, config = _synthetic_dataset(num_records, domain_size, zipf_order, seed)
    extra_config = SyntheticConfig(
        num_records=max(int(num_records * max(update_fractions)), 1),
        domain_size=domain_size,
        zipf_order=zipf_order,
        seed=seed + 1,
    )
    extra_transactions = [set(record.items) for record in cache.synthetic_dataset(extra_config)]

    table = ResultTable(
        title="Batch update cost: OIF rebuild vs IF list append",
        columns=[
            "update_records",
            "IF_seconds",
            "OIF_seconds",
            "IF_pages",
            "OIF_pages",
            "IF_ms_per_record",
            "OIF_ms_per_record",
            "OIF_over_IF",
        ],
    )
    last_if_ms = last_oif_ms = 0.0
    for fraction in update_fractions:
        count = max(1, int(num_records * fraction))
        batch = extra_transactions[:count]

        updatable_if = UpdatableIF(dataset)
        updatable_if.insert(batch)
        if_report = updatable_if.flush()

        updatable_oif = UpdatableOIF(dataset)
        updatable_oif.insert(batch)
        oif_report = updatable_oif.flush()

        last_if_ms = if_report.seconds_per_record * 1000.0
        last_oif_ms = oif_report.seconds_per_record * 1000.0
        table.add_row(
            update_records=count,
            IF_seconds=if_report.merge_seconds,
            OIF_seconds=oif_report.merge_seconds,
            # Deterministic merge cost: pages touched by the batch (reads +
            # writes), independent of wall-clock noise.
            IF_pages=if_report.page_reads + if_report.page_writes,
            OIF_pages=oif_report.page_reads + oif_report.page_writes,
            IF_ms_per_record=last_if_ms,
            OIF_ms_per_record=last_oif_ms,
            OIF_over_IF=(
                oif_report.merge_seconds / if_report.merge_seconds
                if if_report.merge_seconds
                else float("nan")
            ),
        )

    # Break-even analysis: how many updates per query make the IF worthwhile?
    indexes = _build_pair(dataset, config, (if_factory(), oif_factory()))
    mean_query_ms: dict[str, float] = {}
    for index in indexes:
        costs = [
            _overall_cost(
                index,
                _shared_workload(dataset, query_type, (4,), queries_per_size, seed),
            )
            for query_type in QueryType
        ]
        mean_query_ms[index.name] = sum(cost.mean_total_ms for cost in costs) / len(costs)
    query_gain_ms = mean_query_ms.get("IF", 0.0) - mean_query_ms.get("OIF", 0.0)
    update_penalty_ms = last_oif_ms - last_if_ms
    if update_penalty_ms > 0:
        breakeven = query_gain_ms / update_penalty_ms
        table.add_note(
            f"average query: IF {mean_query_ms.get('IF', 0):.2f} ms vs OIF "
            f"{mean_query_ms.get('OIF', 0):.2f} ms; the OIF wins overall while updates "
            f"per query stay below ~{breakeven:.0f}"
        )
    return table


def performance_summary(
    num_records: int = 40_000,
    domain_size: int = 2000,
    zipf_order: float = 0.8,
    query_size: int = 4,
    queries_per_size: int = 5,
    seed: int = 7,
) -> ResultTable:
    """Average query cost per predicate, IF vs OIF (the 'Performance summary')."""
    dataset, config = _synthetic_dataset(num_records, domain_size, zipf_order, seed)
    indexes = _build_pair(dataset, config, (if_factory(), oif_factory()))

    table = ResultTable(
        title="Performance summary: average query cost per predicate",
        columns=["query_type"],
    )
    averages: dict[str, list[float]] = {index.name: [] for index in indexes}
    for query_type in QueryType:
        workload = _shared_workload(dataset, query_type, (query_size,), queries_per_size, seed)
        row: dict[str, object] = {"query_type": query_type.value}
        for index in indexes:
            cost = _overall_cost(index, workload)
            row[f"{index.name}_pages"] = cost.mean_page_accesses
            row[f"{index.name}_total_ms"] = cost.mean_total_ms
            averages[index.name].append(cost.mean_total_ms)
        table.add_row(**row)
    summary_row: dict[str, object] = {"query_type": "average"}
    for name, values in averages.items():
        summary_row[f"{name}_total_ms"] = sum(values) / len(values)
    table.add_row(**summary_row)
    return table


def skew_robustness(
    num_records: int = 40_000,
    domain_size: int = 2000,
    queries_per_size: int = 5,
    query_size: int = 4,
    seed: int = 7,
) -> ResultTable:
    """Degradation of each index as the item distribution gets more skewed.

    The paper observes that the IF and the OIF are comparable on uniform data
    but the IF degrades sharply (an order of magnitude for subset/equality,
    25-30% for superset) as the Zipf order grows, while the OIF stays flat.
    """
    table = ResultTable(
        title="Robustness to skew: page accesses as the zipf order grows",
        columns=["query_type", "zipf", "IF_pages", "OIF_pages", "IF_over_OIF"],
    )
    for query_type in QueryType:
        for zipf in ZIPF_SWEEP:
            dataset, config = _synthetic_dataset(num_records, domain_size, zipf, seed)
            indexes = _build_pair(dataset, config, (if_factory(), oif_factory()))
            workload = _shared_workload(
                dataset, query_type, (query_size,), queries_per_size, seed
            )
            costs = {index.name: _overall_cost(index, workload) for index in indexes}
            if_pages = costs["IF"].mean_page_accesses
            oif_pages = costs["OIF"].mean_page_accesses
            table.add_row(
                query_type=query_type.value,
                zipf=zipf,
                IF_pages=if_pages,
                OIF_pages=oif_pages,
                IF_over_OIF=(if_pages / oif_pages) if oif_pages else float("nan"),
            )
    return table
