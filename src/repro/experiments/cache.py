"""Process-wide caches for datasets and indexes used by the experiment suite.

The figure reproductions sweep several parameters over the same handful of
datasets, and the per-figure benchmarks run in the same pytest session.
Building a 20K-record OIF takes on the order of a second in pure Python, so
sharing datasets and built indexes across experiments keeps the whole suite
interactive without changing any measured quantity (queries always run with a
cold buffer pool; the cache only avoids repeating identical *builds*).
"""

from __future__ import annotations

from typing import Callable

from repro.core.interfaces import SetContainmentIndex
from repro.core.records import Dataset
from repro.datasets.msnbc import MsnbcConfig
from repro.datasets.msnbc import generate_dataset as _generate_msnbc
from repro.datasets.msweb import MswebConfig
from repro.datasets.msweb import generate_dataset as _generate_msweb
from repro.datasets.synthetic import SyntheticConfig
from repro.datasets.synthetic import generate_dataset as _generate_synthetic

_dataset_cache: dict[object, Dataset] = {}
_index_cache: dict[tuple[object, str], SetContainmentIndex] = {}


def synthetic_dataset(config: SyntheticConfig) -> Dataset:
    """Memoized synthetic dataset for ``config``."""
    key = ("synthetic", config)
    if key not in _dataset_cache:
        _dataset_cache[key] = _generate_synthetic(config)
    return _dataset_cache[key]


def msweb_dataset(config: MswebConfig) -> Dataset:
    """Memoized simulated msweb dataset for ``config``."""
    key = ("msweb", config)
    if key not in _dataset_cache:
        _dataset_cache[key] = _generate_msweb(config)
    return _dataset_cache[key]


def msnbc_dataset(config: MsnbcConfig) -> Dataset:
    """Memoized simulated msnbc dataset for ``config``."""
    key = ("msnbc", config)
    if key not in _dataset_cache:
        _dataset_cache[key] = _generate_msnbc(config)
    return _dataset_cache[key]


def cached_index(
    dataset_key: object,
    index_name: str,
    build: Callable[[], SetContainmentIndex],
) -> SetContainmentIndex:
    """Return a previously built index for ``(dataset_key, index_name)`` or build it."""
    key = (dataset_key, index_name)
    if key not in _index_cache:
        _index_cache[key] = build()
    return _index_cache[key]


def clear() -> None:
    """Drop all cached datasets and indexes (mainly for tests)."""
    _dataset_cache.clear()
    _index_cache.clear()
