"""Tests for the result-table rendering."""

from __future__ import annotations

from repro.experiments.report import (
    ResultTable,
    format_series,
    render_table,
    render_tables,
    summarize_ratio,
)


def make_table():
    table = ResultTable(title="Demo", columns=["qs"])
    table.add_row(qs=2, IF_pages=10.0, OIF_pages=4.0)
    table.add_row(qs=4, IF_pages=20.0, OIF_pages=5.0)
    return table


class TestResultTable:
    def test_add_row_extends_columns(self):
        table = make_table()
        assert table.columns == ["qs", "IF_pages", "OIF_pages"]
        assert len(table.rows) == 2

    def test_column_access(self):
        table = make_table()
        assert table.column("IF_pages") == [10.0, 20.0]
        assert table.column("missing") == [None, None]

    def test_render_contains_title_and_values(self):
        text = make_table().to_text()
        assert "Demo" in text
        assert "IF_pages" in text
        assert "10.0" in text or "10" in text

    def test_notes_are_rendered(self):
        table = make_table()
        table.add_note("scaled down")
        assert "note: scaled down" in table.to_text()

    def test_missing_cells_render_as_dash(self):
        table = ResultTable(title="t", columns=["a", "b"])
        table.add_row(a=1)
        assert "-" in render_table(table)

    def test_render_tables_joins_with_blank_lines(self):
        text = render_tables([make_table(), make_table()])
        assert text.count("Demo") == 2
        assert "\n\n" in text

    def test_float_formatting(self):
        table = ResultTable(title="t", columns=["x"])
        table.add_row(x=0.12345, y=1234567.0, z=12.345)
        rendered = table.to_text()
        assert "0.123" in rendered
        assert "1,234,567" in rendered
        assert "12.3" in rendered


class TestHelpers:
    def test_summarize_ratio(self):
        table = make_table()
        ratio = summarize_ratio(table, "IF_pages", "OIF_pages")
        assert ratio == ((10.0 / 4.0) + (20.0 / 5.0)) / 2

    def test_summarize_ratio_with_no_numeric_rows(self):
        table = ResultTable(title="t", columns=["a"])
        assert summarize_ratio(table, "a", "b") != summarize_ratio(table, "a", "b")  # NaN

    def test_format_series(self):
        line = format_series("OIF", [2, 4], [1.0, 2.5])
        assert line.startswith("OIF:")
        assert "2:" in line and "4:" in line
