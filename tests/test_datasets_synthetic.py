"""Tests for the synthetic Zipfian dataset generator."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_dataset,
    generate_transactions,
    item_name,
    zipf_weights,
)
from repro.errors import DatasetError


class TestConfigValidation:
    def test_defaults_match_paper_parameters(self):
        config = SyntheticConfig()
        assert config.domain_size == 2000
        assert config.zipf_order == 0.8
        assert config.min_length == 2
        assert config.max_length == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_records": 0},
            {"domain_size": 1},
            {"zipf_order": -0.5},
            {"min_length": 0},
            {"min_length": 5, "max_length": 3},
            {"max_length": 5000, "domain_size": 100},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(DatasetError):
            SyntheticConfig(**kwargs)

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(DatasetError):
            generate_dataset(SyntheticConfig(num_records=10), num_records=20)


class TestZipfWeights:
    def test_weights_sum_to_one(self):
        # builtins, not ndarray methods: zipf_weights returns a plain list
        # on the pure-Python (no-numpy) backend.
        weights = zipf_weights(100, 0.8)
        assert sum(weights) == pytest.approx(1.0)

    def test_zero_order_is_uniform(self):
        weights = zipf_weights(50, 0.0)
        assert max(weights) == pytest.approx(min(weights))

    def test_higher_order_is_more_skewed(self):
        mild = zipf_weights(100, 0.4)
        strong = zipf_weights(100, 1.0)
        assert strong[0] > mild[0]
        assert strong[-1] < mild[-1]


class TestGeneration:
    def test_record_count_and_lengths(self):
        config = SyntheticConfig(num_records=500, domain_size=100, min_length=2, max_length=6)
        dataset = generate_dataset(config)
        assert len(dataset) == 500
        for record in dataset:
            assert 2 <= record.length <= 6

    def test_items_come_from_the_domain(self):
        config = SyntheticConfig(num_records=200, domain_size=50)
        dataset = generate_dataset(config)
        valid = {item_name(index) for index in range(50)}
        for record in dataset:
            assert record.items <= valid

    def test_reproducible_with_same_seed(self):
        config = SyntheticConfig(num_records=100, domain_size=50, seed=5)
        first = generate_transactions(config)
        second = generate_transactions(config)
        assert first == second

    def test_different_seeds_differ(self):
        base = SyntheticConfig(num_records=100, domain_size=50, seed=5)
        other = SyntheticConfig(num_records=100, domain_size=50, seed=6)
        assert generate_transactions(base) != generate_transactions(other)

    def test_skewed_data_has_dominant_items(self):
        config = SyntheticConfig(num_records=2000, domain_size=200, zipf_order=1.0)
        dataset = generate_dataset(config)
        order = dataset.vocabulary.frequency_order()
        top = order.item_at(0)
        bottom = order.item_at(len(order) - 1)
        assert dataset.vocabulary.support(top) > 10 * max(
            dataset.vocabulary.support(bottom), 1
        )

    def test_uniform_data_has_no_dominant_item(self):
        config = SyntheticConfig(num_records=2000, domain_size=50, zipf_order=0.0)
        dataset = generate_dataset(config)
        supports = [dataset.vocabulary.support(item) for item in dataset.vocabulary]
        assert max(supports) < 3 * (sum(supports) / len(supports))

    def test_item_name_zero_padding_keeps_alphabetic_order(self):
        assert item_name(2) < item_name(10) < item_name(100)
