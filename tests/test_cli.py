"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core import Dataset
from repro.datasets.io import write_transactions


@pytest.fixture()
def transaction_file(tmp_path):
    dataset = Dataset.from_transactions(
        [{"a", "b"}, {"a", "c"}, {"b", "c"}, {"a", "b", "c"}, {"a"}, {"c"}] * 5
    )
    path = tmp_path / "data.txt"
    write_transactions(dataset, path)
    return str(path)


class TestGenerate:
    def test_generate_synthetic(self, tmp_path, capsys):
        output = str(tmp_path / "synthetic.txt")
        code = main(["generate", output, "--records", "200", "--domain", "50"])
        assert code == 0
        assert "wrote 200 records" in capsys.readouterr().out
        assert len(open(output).readlines()) == 200

    def test_generate_msnbc(self, tmp_path, capsys):
        output = str(tmp_path / "msnbc.txt")
        code = main(["generate", output, "--kind", "msnbc", "--records", "300"])
        assert code == 0
        assert "300 records" in capsys.readouterr().out


class TestQuery:
    def test_query_subset(self, transaction_file, capsys):
        code = main(["query", transaction_file, "subset", "a", "b"])
        assert code == 0
        output = capsys.readouterr().out
        assert "matching records" in output
        assert "page accesses" in output

    def test_query_with_alternative_index(self, transaction_file, capsys):
        code = main(["query", transaction_file, "superset", "a", "b", "--index", "if"])
        assert code == 0
        assert "matching records" in capsys.readouterr().out

    def test_query_error_reported(self, tmp_path, capsys):
        missing = str(tmp_path / "does-not-exist.txt")
        with pytest.raises((SystemExit, OSError, FileNotFoundError)):
            main(["query", missing, "subset", "a"])

    def test_query_with_expression(self, transaction_file, capsys):
        expr = (
            '{"op": "and", "args": [{"op": "subset", "items": ["a"]}, '
            '{"op": "not", "arg": {"op": "superset", "items": ["a", "b"]}}]}'
        )
        code = main(["query", transaction_file, "--expr", expr, "--explain"])
        assert code == 0
        output = capsys.readouterr().out
        assert "probe" in output  # --explain prints the physical plan
        # {a,c} and {a,b,c} match (contain a, not within {a,b}); 5 copies each.
        assert "10 matching records" in output

    def test_query_expr_conflicts_with_predicate(self, transaction_file, capsys):
        expr = '{"op": "subset", "items": ["a"]}'
        code = main(["query", transaction_file, "subset", "a", "--expr", expr])
        assert code == 1
        assert "not both" in capsys.readouterr().err

    def test_query_needs_predicate_or_expr(self, transaction_file, capsys):
        code = main(["query", transaction_file])
        assert code == 1
        assert "--expr" in capsys.readouterr().err

    def test_query_cpu_profile_prints_top_functions(self, transaction_file, capsys):
        code = main(["query", transaction_file, "subset", "a", "b", "--cpu-profile", "5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "matching records" in output
        assert "cProfile: top 5 by cumulative time" in output
        assert "cumtime" in output

    def test_query_cpu_profile_default_depth(self, transaction_file, capsys):
        code = main(["query", transaction_file, "subset", "a", "--cpu-profile"])
        assert code == 0
        assert "cProfile: top 15 by cumulative time" in capsys.readouterr().out

    def test_query_rejects_malformed_expr_json(self, transaction_file, capsys):
        code = main(["query", transaction_file, "--expr", "{not json"])
        assert code == 1
        assert "not valid JSON" in capsys.readouterr().err


class TestCompare:
    def test_compare_prints_table(self, transaction_file, capsys):
        code = main(
            [
                "compare",
                transaction_file,
                "--predicate",
                "subset",
                "--sizes",
                "1",
                "2",
                "--queries-per-size",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "IF" in output and "OIF" in output
        assert "|qs|" in output


class TestExperiment:
    def test_space_experiment(self, capsys):
        code = main(["experiment", "space", "--records", "1200"])
        assert code == 0
        assert "Space overhead" in capsys.readouterr().out

    def test_summary_experiment(self, capsys):
        code = main(["experiment", "summary", "--records", "1200", "--queries-per-size", "2"])
        assert code == 0
        assert "Performance summary" in capsys.readouterr().out


class TestServe:
    @pytest.fixture()
    def running_server(self, transaction_file):
        from repro.cli import _build_parser, build_server

        args = _build_parser().parse_args(
            ["serve", "--port", "0", "--data", transaction_file, "--name", "web"]
        )
        server = build_server(args)
        server.start()
        yield server
        server.shutdown()

    def test_build_server_preloads_the_index(self, running_server):
        assert running_server.manager.names() == ["web"]
        assert running_server.manager.get("web").kind == "oif"
        assert running_server.manager.get("web").num_records == 30

    def test_client_health_and_query(self, running_server, capsys):
        port = str(running_server.port)
        assert main(["client", "--port", port, "health"]) == 0
        assert '"status": "ok"' in capsys.readouterr().out
        assert main(["client", "--port", port, "query", "web", "subset", "a", "b"]) == 0
        assert '"record_ids"' in capsys.readouterr().out

    def test_client_insert_and_stats(self, running_server, capsys):
        port = str(running_server.port)
        assert main(["client", "--port", port, "insert", "web", "a", "q", "--flush"]) == 0
        assert '"inserted": 1' in capsys.readouterr().out
        assert main(["client", "--port", port, "stats"]) == 0
        assert '"cache"' in capsys.readouterr().out

    def test_client_create_and_drop(self, running_server, transaction_file, capsys):
        port = str(running_server.port)
        assert main(["client", "--port", port, "create", "extra", transaction_file]) == 0
        assert main(["client", "--port", port, "indexes"]) == 0
        assert '"extra"' in capsys.readouterr().out.split('"indexes"')[-1]
        assert main(["client", "--port", port, "drop", "extra"]) == 0

    def test_client_error_against_dead_server(self, capsys):
        code = main(["client", "--port", "1", "health"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])
