"""Tests for the shared index interface (QueryType, QueryResult, dispatch)."""

from __future__ import annotations

import pytest

from repro.core.interfaces import QueryResult, QueryType
from repro.errors import QueryError


class TestQueryType:
    def test_parse_strings(self):
        assert QueryType.parse("subset") is QueryType.SUBSET
        assert QueryType.parse("EQUALITY") is QueryType.EQUALITY
        assert QueryType.parse("Superset") is QueryType.SUPERSET

    def test_parse_enum_passthrough(self):
        assert QueryType.parse(QueryType.SUBSET) is QueryType.SUBSET

    def test_parse_unknown_raises(self):
        with pytest.raises(QueryError):
            QueryType.parse("between")

    def test_three_predicates_exist(self):
        assert {qt.value for qt in QueryType} == {"subset", "equality", "superset"}


class TestDispatch:
    def test_query_dispatch_matches_direct_calls(self, paper_oif):
        items = {"a", "d"}
        assert paper_oif.query("subset", items) == paper_oif.subset_query(items)
        assert paper_oif.query("equality", items) == paper_oif.equality_query(items)
        assert paper_oif.query("superset", items) == paper_oif.superset_query(items)

    def test_query_dispatch_with_enum(self, paper_oif):
        assert paper_oif.query(QueryType.SUBSET, {"a"}) == paper_oif.subset_query({"a"})


class TestMeasuredQuery:
    def test_measured_query_returns_costs(self, paper_oif):
        paper_oif.drop_cache()
        result = paper_oif.measured_query("subset", {"a", "d"})
        assert isinstance(result, QueryResult)
        assert result.record_ids == (101, 104, 114)
        assert result.cardinality == 3
        assert result.query_type is QueryType.SUBSET
        assert result.page_accesses >= 0
        assert result.page_accesses == result.random_reads + result.sequential_reads
        assert result.cpu_time_ms >= 0
        assert result.total_time_ms == pytest.approx(result.io_time_ms + result.cpu_time_ms)

    def test_cold_query_costs_more_than_warm(self, skewed_oif):
        skewed_oif.drop_cache()
        cold = skewed_oif.measured_query("subset", {skewed_oif.order.item_at(1)})
        warm = skewed_oif.measured_query("subset", {skewed_oif.order.item_at(1)})
        assert warm.page_accesses <= cold.page_accesses

    def test_io_time_reflects_disk_model(self, skewed_oif):
        skewed_oif.drop_cache()
        result = skewed_oif.measured_query("subset", {skewed_oif.order.item_at(2)})
        model = skewed_oif.stats.disk_model
        expected = model.io_time_ms(result.random_reads, result.sequential_reads)
        assert result.io_time_ms == pytest.approx(expected)

    def test_index_size_property(self, skewed_oif):
        assert skewed_oif.index_size_bytes == skewed_oif.env.size_bytes
