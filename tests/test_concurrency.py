"""Concurrent read path: reader-writer locks, per-context accounting, stress.

The acceptance contract of the concurrent refactor:

* N threads running mixed query types against one resident index produce
  results identical to a serial run, and — under an eviction-free cache
  regime — per-query read-context counters identical to the serial baseline;
* per-context page counts always sum exactly to the pool-wide totals, under
  any interleaving and any cache size;
* the service query path holds only the shared (read) side of the entry
  lock, while insert/flush/rebuild-swap stay exclusive;
* sharded fan-out borrows the shared executor pool without deadlocking,
  even when the pool is fully saturated.

Run in CI under ``pytest-timeout`` with faulthandler enabled, so a deadlock
dumps stacks and fails fast instead of hanging the job.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.concurrency import ReadWriteLock
from repro.core.oif import OrderedInvertedFile
from repro.core.query import And, Equality, Or, Subset, Superset
from repro.core.records import Dataset
from repro.core.updates import UpdatableOIF
from repro.service import IndexManager, QueryExecutor, ResultCache
from repro.storage.stats import ReadContext

THREADS = 8


def _dataset(num_records: int = 240, domain: int = 30, seed: int = 13) -> Dataset:
    rng = random.Random(seed)
    items = [f"i{n}" for n in range(domain)]
    transactions = []
    for _ in range(num_records):
        size = rng.randint(1, 6)
        transactions.append(set(rng.sample(items, size)))
    return Dataset.from_transactions(transactions)


def _mixed_queries(dataset: Dataset, count: int = 36, seed: int = 29) -> list:
    """Subset/equality/superset leaves plus composites, over real item sets."""
    rng = random.Random(seed)
    records = [record for record in dataset if record.length >= 2]
    queries = []
    while len(queries) < count:
        record = rng.choice(records)
        picked = frozenset(rng.sample(sorted(record.items, key=str), 2))
        single = frozenset([rng.choice(sorted(record.items, key=str))])
        shape = len(queries) % 6
        if shape == 0:
            queries.append(Subset(picked))
        elif shape == 1:
            queries.append(Equality(frozenset(record.items)))
        elif shape == 2:
            queries.append(Superset(frozenset(record.items) | picked))
        elif shape == 3:
            queries.append(And((Subset(single), Subset(picked))))
        elif shape == 4:
            queries.append(Or((Subset(picked), Equality(frozenset(record.items)))))
        else:
            queries.append(Subset(single).limit(5))
    return queries


class TestReadWriteLock:
    def test_concurrent_readers_and_reentrancy(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with lock.read_locked():  # reentrant
                assert lock.active_readers == 1

            entered = threading.Event()

            def other_reader():
                with lock.read_locked():
                    entered.set()

            thread = threading.Thread(target=other_reader)
            thread.start()
            assert entered.wait(timeout=5.0), "second reader must not block"
            thread.join(timeout=5.0)

    def test_writer_excludes_readers_and_is_reentrant(self):
        lock = ReadWriteLock()
        observed = []
        with lock.write_locked():
            with lock.write_locked():  # reentrant
                with lock.read_locked():  # nested read inside write
                    pass

            def reader():
                with lock.read_locked():
                    observed.append("read")

            thread = threading.Thread(target=reader)
            thread.start()
            thread.join(timeout=0.2)
            assert observed == [], "reader must wait for the writer"
        thread.join(timeout=5.0)
        assert observed == ["read"]

    def test_upgrade_attempt_raises(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        wrote = threading.Event()
        second_read = threading.Event()

        def writer():
            with lock.write_locked():
                wrote.set()

        def late_reader():
            with lock.read_locked():
                second_read.set()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        # Give the writer time to queue, then try a fresh reader: writer
        # preference parks it behind the waiting writer.
        writer_thread.join(timeout=0.1)
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        reader_thread.join(timeout=0.1)
        assert not wrote.is_set() and not second_read.is_set()
        lock.release_read()
        writer_thread.join(timeout=5.0)
        reader_thread.join(timeout=5.0)
        assert wrote.is_set() and second_read.is_set()

    def test_unbalanced_releases_raise(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestConcurrentQueryStress:
    """N threads x mixed query types on one index == the serial baseline."""

    @pytest.fixture(scope="class")
    def setup(self):
        dataset = _dataset()
        # Eviction-free regime: the whole index fits in the buffer pool, so
        # after a warm-up pass every query's page/logical read counts are a
        # pure function of its traversal — schedule-independent.
        oif = OrderedInvertedFile(dataset, cache_bytes=1 << 22)
        queries = _mixed_queries(dataset)
        return oif, queries

    def _measure_serial(self, oif, queries):
        out = []
        for expr in queries:
            cursor = oif.execute(expr)
            ids = sorted(cursor.fetch_all())
            out.append((ids, cursor.io_delta()))
        return out

    def test_concurrent_equals_serial(self, setup):
        oif, queries = setup
        self._measure_serial(oif, queries)  # warm the pool
        baseline = self._measure_serial(oif, queries)  # warmed serial baseline

        barrier = threading.Barrier(THREADS)
        failures: list[str] = []

        def worker(thread_index: int) -> None:
            rng = random.Random(1000 + thread_index)
            order = list(range(len(queries)))
            rng.shuffle(order)  # every thread interleaves differently
            barrier.wait(timeout=30.0)
            for query_index in order:
                cursor = oif.execute(queries[query_index])
                ids = sorted(cursor.fetch_all())
                delta = cursor.io_delta()
                expected_ids, expected_delta = baseline[query_index]
                if ids != expected_ids:
                    failures.append(f"query {query_index}: ids diverge")
                if delta != expected_delta:
                    failures.append(
                        f"query {query_index}: io {delta} != serial {expected_delta}"
                    )

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads), "stress run hung"
        assert failures == []

    def test_cold_small_cache_contexts_sum_to_pool_totals(self):
        """Under eviction + interleaving: answers exact, accounting exact."""
        dataset = _dataset(seed=17)
        oif = OrderedInvertedFile(dataset, cache_bytes=32 * 1024)  # paper cache
        queries = _mixed_queries(dataset, seed=31)
        serial_ids = [sorted(oif.execute(expr).fetch_all()) for expr in queries]

        before = oif.stats.snapshot()
        cache_hits_before = oif.decoded_cache.hits
        cache_misses_before = oif.decoded_cache.misses
        contexts: list[ReadContext] = []
        contexts_lock = threading.Lock()
        failures: list[str] = []
        barrier = threading.Barrier(THREADS)

        def worker(thread_index: int) -> None:
            rng = random.Random(2000 + thread_index)
            order = list(range(len(queries)))
            rng.shuffle(order)
            barrier.wait(timeout=30.0)
            for query_index in order:
                cursor = oif.execute(queries[query_index])
                ids = sorted(cursor.fetch_all())
                if ids != serial_ids[query_index]:
                    failures.append(f"query {query_index}: ids diverge under eviction")
                with contexts_lock:
                    contexts.append(cursor.ctx)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads), "stress run hung"
        assert failures == []

        total = oif.stats.snapshot() - before
        assert sum(ctx.page_reads for ctx in contexts) == total.page_reads
        assert sum(ctx.logical_reads for ctx in contexts) == total.logical_reads
        assert sum(ctx.cache_hits for ctx in contexts) == total.cache_hits
        assert sum(ctx.random_reads for ctx in contexts) == total.random_reads
        assert sum(ctx.sequential_reads for ctx in contexts) == total.sequential_reads
        for ctx in contexts:
            assert ctx.random_reads + ctx.sequential_reads == ctx.page_reads

        # Decoded-block cache counters are exact under the same interleaving:
        # per-context lookups sum to the pool totals and to the cache's own
        # counters (every lookup is recorded under the cache's lock).
        assert (
            sum(ctx.decoded_hits for ctx in contexts)
            == total.decoded_hits
            == oif.decoded_cache.hits - cache_hits_before
        )
        assert (
            sum(ctx.decoded_misses for ctx in contexts)
            == total.decoded_misses
            == oif.decoded_cache.misses - cache_misses_before
        )

    def test_decoded_cache_hits_never_change_page_accounting(self):
        """Concurrent repeats of one query: decode skipped, I/O identical."""
        dataset = _dataset(seed=23)
        oif = OrderedInvertedFile(dataset, cache_bytes=1 << 22)
        queries = _mixed_queries(dataset, count=12, seed=37)
        self_serial = []
        for expr in queries:  # cold pass: populates pool and decoded cache
            oif.execute(expr).fetch_all()
        for expr in queries:  # warmed serial baseline
            cursor = oif.execute(expr)
            ids = sorted(cursor.fetch_all())
            self_serial.append((ids, cursor.io_delta()))
        # Warmed + eviction-free: every traversal's decode lookups all hit.
        assert all(delta.decoded_misses == 0 for _, delta in self_serial)
        assert any(delta.decoded_hits > 0 for _, delta in self_serial)

        failures: list[str] = []
        barrier = threading.Barrier(THREADS)

        def worker(thread_index: int) -> None:
            rng = random.Random(3000 + thread_index)
            order = list(range(len(queries)))
            rng.shuffle(order)
            barrier.wait(timeout=30.0)
            for query_index in order:
                cursor = oif.execute(queries[query_index])
                ids = sorted(cursor.fetch_all())
                expected_ids, expected_delta = self_serial[query_index]
                if ids != expected_ids:
                    failures.append(f"query {query_index}: ids diverge")
                if cursor.io_delta() != expected_delta:
                    failures.append(
                        f"query {query_index}: {cursor.io_delta()} != {expected_delta}"
                    )

        pool = [threading.Thread(target=worker, args=(n,)) for n in range(THREADS)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in pool), "stress run hung"
        assert failures == []


class TestConcurrentUpdatableHandle:
    def test_readers_run_during_each_other_and_inserts_are_exclusive(self):
        dataset = _dataset(num_records=120)
        handle = UpdatableOIF(dataset)
        item = sorted(dataset.vocabulary, key=str)[0]
        base_ids = handle.subset_query({item})

        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                ids = handle.subset_query({item})
                # Subset answers only grow under inserts; a torn read would
                # show ids outside both the pre- and post-insert answers.
                if not set(base_ids) <= set(ids):
                    failures.append("reader saw a torn answer")
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        inserted: list[int] = []
        for _ in range(10):
            inserted.extend(handle.insert([{item, "fresh"}]))
        handle.flush()
        stop.set()
        for thread in readers:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in readers)
        assert failures == []
        final = handle.subset_query({item})
        assert set(base_ids) | set(inserted) == set(final)


class TestServiceReadPath:
    @pytest.fixture()
    def manager(self):
        manager = IndexManager(result_cache=ResultCache(capacity=256))
        manager.create("paper", _dataset(), kind="oif")
        return manager

    def test_query_path_holds_only_the_read_side(self, manager):
        """A reader-held entry still answers queries; a write waits."""
        entry = manager.get("paper")
        entry.lock.acquire_read()
        try:
            done = threading.Event()
            answers: list = []

            def query() -> None:
                answers.append(entry.query("subset", {"i0"}))
                done.set()

            thread = threading.Thread(target=query)
            thread.start()
            assert done.wait(timeout=10.0), (
                "a concurrent query must not block on a held read lock"
            )
            thread.join(timeout=5.0)

            blocked = threading.Event()

            def insert() -> None:
                manager.insert("paper", [["i0", "i1"]])
                blocked.set()

            writer = threading.Thread(target=insert)
            writer.start()
            writer.join(timeout=0.2)
            assert not blocked.is_set(), "insert must wait for readers to drain"
        finally:
            entry.lock.release_read()
        writer.join(timeout=10.0)
        assert blocked.is_set()

    def test_saturated_executor_answers_concurrent_sharded_queries(self):
        """Regression: shared-pool fan-out must not deadlock under load."""
        manager = IndexManager()
        manager.create("s", _dataset(), kind="oif", shards=4)
        queries = _mixed_queries(manager.get("s")._handle.dataset, count=12)
        with QueryExecutor(manager, cache=None, max_workers=2) as executor:
            futures = [executor.submit_expr("s", expr) for expr in queries]
            outcomes = [future.result(timeout=60.0) for future in futures]
        oracle = manager.get("s")
        for expr, outcome in zip(queries, outcomes):
            assert list(outcome.record_ids) == oracle.evaluate(expr)
            assert outcome.shard_stats is not None
            assert outcome.page_accesses == sum(
                stat.page_accesses for stat in outcome.shard_stats
            )

    def test_sharded_execute_honours_a_caller_context(self):
        """The base execute() contract — pre-owned ctx — holds for shards too."""
        from repro.core.shard import ShardedIndex

        dataset = _dataset(num_records=100)
        sharded = ShardedIndex(dataset, num_shards=3)
        sharded.drop_cache()  # the build leaves every page resident
        expr = Subset(frozenset(["i0"]))
        ctx = ReadContext()
        cursor = sharded.execute(expr, ctx=ctx)
        ids = sorted(cursor.fetch_all())
        assert ids == sorted(sharded.evaluate(expr))
        # The shared context holds the whole fan-out's charge, and io_delta
        # reads it once (no per-shard double counting).
        assert ctx.page_reads > 0
        assert cursor.io_delta() == ctx.snapshot()

    def test_outcome_carries_per_context_read_classification(self, manager):
        with QueryExecutor(manager, cache=None, max_workers=2) as executor:
            outcome = executor.execute_expr("paper", Subset(frozenset(["i0"])))
            stats = executor.stats.as_dict()
        assert outcome.random_reads + outcome.sequential_reads == outcome.page_accesses
        assert stats["random_reads"] == outcome.random_reads
        assert stats["sequential_reads"] == outcome.sequential_reads
        payload = outcome.as_dict()
        assert payload["random_reads"] == outcome.random_reads
        assert payload["sequential_reads"] == outcome.sequential_reads
