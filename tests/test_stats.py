"""Unit tests for the I/O statistics and the simulated disk model."""

from __future__ import annotations

from repro.storage.stats import DiskModel, IOStatistics


class TestDiskModel:
    def test_io_time_combines_random_and_sequential(self):
        model = DiskModel(random_access_ms=10.0, sequential_access_ms=0.1)
        assert model.io_time_ms(2, 30) == 2 * 10.0 + 30 * 0.1

    def test_defaults_make_random_far_more_expensive(self):
        model = DiskModel()
        assert model.random_access_ms > 10 * model.sequential_access_ms


class TestIOStatistics:
    def test_physical_read_classification(self):
        stats = IOStatistics()
        stats.record_physical_read(4)
        stats.record_physical_read(5)
        stats.record_physical_read(9)
        assert stats.page_reads == 3
        assert stats.sequential_reads == 1
        assert stats.random_reads == 2

    def test_logical_reads_and_hits(self):
        stats = IOStatistics()
        stats.record_logical_read(hit=True)
        stats.record_logical_read(hit=False)
        assert stats.logical_reads == 2
        assert stats.cache_hits == 1

    def test_reset_clears_everything(self):
        stats = IOStatistics()
        stats.record_physical_read(1)
        stats.record_physical_write()
        stats.reset()
        assert stats.page_reads == 0
        assert stats.page_writes == 0
        # After a reset the next read is random again (locality forgotten).
        stats.record_physical_read(2)
        assert stats.random_reads == 1

    def test_snapshot_diff(self):
        stats = IOStatistics()
        stats.record_physical_read(0)
        snapshot = stats.snapshot()
        stats.record_physical_read(1)
        stats.record_physical_read(7)
        delta = stats.since(snapshot)
        assert delta.page_reads == 2
        assert delta.sequential_reads == 1
        assert delta.random_reads == 1

    def test_snapshot_io_time_uses_model(self):
        stats = IOStatistics(disk_model=DiskModel(random_access_ms=5, sequential_access_ms=1))
        stats.record_physical_read(0)
        stats.record_physical_read(1)
        snapshot = stats.snapshot()
        assert snapshot.io_time_ms(stats.disk_model) == 5 + 1
        assert stats.io_time_ms() == 6

    def test_write_counter(self):
        stats = IOStatistics()
        stats.record_physical_write()
        stats.record_physical_write()
        assert stats.page_writes == 2
