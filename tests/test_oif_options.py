"""Tests for the OIF's configuration options (ablation switches)."""

from __future__ import annotations

import pytest

from repro.baselines import NaiveScanIndex
from repro.core import OrderedInvertedFile
from repro.core.items import ItemOrder
from tests.conftest import sample_queries


@pytest.fixture(scope="module")
def oracle(skewed_dataset):
    return NaiveScanIndex(skewed_dataset)


def assert_index_matches_oracle(index, oracle, dataset, seed, count=30):
    for query in sample_queries(dataset, count=count, max_size=4, seed=seed):
        for query_type in ("subset", "equality", "superset"):
            assert index.query(query_type, query) == oracle.query(query_type, query), (
                query_type,
                query,
            )


class TestVariants:
    def test_uncompressed_variant_is_correct(self, skewed_dataset, oracle):
        index = OrderedInvertedFile(skewed_dataset, compress=False)
        assert_index_matches_oracle(index, oracle, skewed_dataset, seed=101)

    def test_uncompressed_variant_is_larger(self, skewed_dataset):
        compressed = OrderedInvertedFile(skewed_dataset, compress=True)
        plain = OrderedInvertedFile(skewed_dataset, compress=False)
        assert plain.posting_bytes > compressed.posting_bytes

    def test_no_metadata_variant_is_correct(self, skewed_dataset, oracle):
        index = OrderedInvertedFile(skewed_dataset, use_metadata=False)
        assert_index_matches_oracle(index, oracle, skewed_dataset, seed=102)

    def test_metadata_saves_one_posting_per_record(self, skewed_dataset):
        with_metadata = OrderedInvertedFile(skewed_dataset, use_metadata=True)
        without = OrderedInvertedFile(skewed_dataset, use_metadata=False)
        assert (
            without.build_report.num_postings - with_metadata.build_report.num_postings
            == len(skewed_dataset)
        )

    def test_tag_prefix_variant_is_correct(self, skewed_dataset, oracle):
        index = OrderedInvertedFile(skewed_dataset, tag_prefix=2)
        assert_index_matches_oracle(index, oracle, skewed_dataset, seed=103)

    def test_tag_prefix_shrinks_the_index(self, larger_dataset):
        full_tags = OrderedInvertedFile(larger_dataset, block_capacity=16)
        short_tags = OrderedInvertedFile(larger_dataset, block_capacity=16, tag_prefix=1)
        assert short_tags.index_size_bytes <= full_tags.index_size_bytes

    def test_no_narrowing_variant_is_correct(self, skewed_dataset, oracle):
        index = OrderedInvertedFile(skewed_dataset, narrow_candidate_range=False)
        assert_index_matches_oracle(index, oracle, skewed_dataset, seed=104)

    def test_small_page_size(self, skewed_dataset, oracle):
        index = OrderedInvertedFile(
            skewed_dataset, page_size=512, cache_bytes=2048, block_capacity=8
        )
        assert_index_matches_oracle(index, oracle, skewed_dataset, seed=105, count=15)

    def test_alphabetic_item_order_still_correct(self, skewed_dataset, oracle):
        # The ordering affects only performance; correctness must hold for any
        # total order over the vocabulary.
        alphabetic = ItemOrder(sorted(skewed_dataset.vocabulary, key=str))
        index = OrderedInvertedFile(skewed_dataset, item_order=alphabetic)
        assert_index_matches_oracle(index, oracle, skewed_dataset, seed=106, count=20)

    def test_combined_options(self, skewed_dataset, oracle):
        index = OrderedInvertedFile(
            skewed_dataset,
            compress=False,
            use_metadata=False,
            narrow_candidate_range=False,
            block_capacity=4,
        )
        assert_index_matches_oracle(index, oracle, skewed_dataset, seed=107, count=20)

    def test_fill_factor_changes_page_count(self, larger_dataset):
        dense = OrderedInvertedFile(larger_dataset, fill_factor=1.0)
        sparse = OrderedInvertedFile(larger_dataset, fill_factor=0.5)
        assert sparse.env.page_file.num_pages >= dense.env.page_file.num_pages
