"""Tests for the concurrent query executor: correctness, caching, dedup."""

from __future__ import annotations

import threading

import pytest

import random

from repro.core import Dataset
from repro.errors import ServiceError
from repro.service import IndexManager, QueryExecutor, ResultCache


def sample_queries(dataset: Dataset, count: int, max_size: int, seed: int) -> list[frozenset]:
    """Query sets drawn from existing records (the paper's methodology)."""
    rng = random.Random(seed)
    records = list(dataset)
    queries = []
    for _ in range(count):
        record = rng.choice(records)
        size = rng.randint(1, min(max_size, record.length))
        queries.append(frozenset(rng.sample(sorted(record.items, key=str), size)))
    return queries


@pytest.fixture()
def dataset(paper_dataset: Dataset) -> Dataset:
    """The paper's Figure 1 relation (ids 101..118), shared session-wide."""
    return paper_dataset


@pytest.fixture()
def serving(dataset):
    cache = ResultCache(capacity=256)
    manager = IndexManager(result_cache=cache)
    manager.create("paper", dataset, kind="oif")
    with QueryExecutor(manager, cache=cache, max_workers=4) as executor:
        yield manager, cache, executor


def test_execute_answers_match_the_oracle(serving, paper_oracle):
    _, _, executor = serving
    for query_type in ("subset", "equality", "superset"):
        outcome = executor.execute("paper", query_type, {"a", "b"})
        assert list(outcome.record_ids) == paper_oracle.query(query_type, {"a", "b"})
        assert outcome.query_type.value == query_type
        assert outcome.latency_ms >= 0.0


def test_empty_query_is_rejected(serving):
    _, _, executor = serving
    with pytest.raises(ServiceError, match="at least one item"):
        executor.execute("paper", "subset", set())


def test_unknown_index_raises_through_the_future(serving):
    _, _, executor = serving
    with pytest.raises(ServiceError, match="no index named"):
        executor.execute("ghost", "subset", {"a"})
    assert executor.stats.errors == 1


def test_cache_hit_and_miss_accounting_is_exact(serving):
    _, cache, executor = serving
    first = executor.execute("paper", "subset", {"a", "b"})
    assert first.cached is False
    repeats = 5
    for _ in range(repeats):
        again = executor.execute("paper", "subset", {"a", "b"})
        assert again.cached is True
        assert again.record_ids == first.record_ids
        assert again.page_accesses == 0
    stats = executor.stats.as_dict()
    assert stats["queries"] == repeats + 1
    assert stats["cache_hits"] == repeats
    assert stats["executed"] == 1
    assert cache.stats()["hits"] == repeats
    # One miss from the first lookup only — hits never re-probe the index.
    assert cache.stats()["misses"] == 1


def test_update_invalidates_cached_result_and_recomputes(serving, dataset):
    manager, _, executor = serving
    before = executor.execute("paper", "subset", {"a", "b"})
    assert executor.execute("paper", "subset", {"a", "b"}).cached is True

    (new_id,) = manager.insert("paper", [{"a", "b", "fresh"}])

    after = executor.execute("paper", "subset", {"a", "b"})
    assert after.cached is False, "the insert must invalidate the cached entry"
    assert set(after.record_ids) == set(before.record_ids) | {new_id}
    # An unrelated entry keeps serving from cache after the update.
    executor.execute("paper", "superset", {"d", "h"})
    assert executor.execute("paper", "superset", {"d", "h"}).cached is True


def test_batch_of_100_queries_matches_oracle(serving, dataset, paper_oracle):
    _, _, executor = serving
    queries = sample_queries(dataset, count=100, max_size=3, seed=42)
    outcomes = executor.execute_batch(
        [("paper", "subset", items) for items in queries]
    )
    assert len(outcomes) == 100
    for items, outcome in zip(queries, outcomes):
        assert outcome.items == items, "results must come back in request order"
        assert list(outcome.record_ids) == paper_oracle.query("subset", items)
    assert executor.stats.queries == 100


def test_identical_inflight_queries_are_deduplicated(dataset):
    """Without a cache, concurrent identical queries share one evaluation."""
    manager = IndexManager()
    entry = manager.create("paper", dataset, kind="oif")
    release = threading.Event()
    original_measured = entry.measured_expr
    evaluations = []

    def slow_measured(expr, fanout_pool=None):
        evaluations.append(expr)
        release.wait(timeout=5.0)
        return original_measured(expr, fanout_pool=fanout_pool)

    entry.measured_expr = slow_measured
    with QueryExecutor(manager, cache=None, max_workers=4) as executor:
        futures = [executor.submit("paper", "subset", {"a", "b"}) for _ in range(6)]
        release.set()
        outcomes = [future.result(timeout=10.0) for future in futures]

    assert len(evaluations) == 1, "identical in-flight queries must evaluate once"
    assert sum(1 for outcome in outcomes if not outcome.deduplicated) == 1
    assert sum(1 for outcome in outcomes if outcome.deduplicated) == 5
    results = {outcome.record_ids for outcome in outcomes}
    assert len(results) == 1
    assert executor.stats.dedup_hits == 5
    assert executor.stats.executed == 1


def test_concurrent_mixed_queries_from_many_threads(serving, dataset, paper_oracle):
    _, _, executor = serving
    queries = sample_queries(dataset, count=30, max_size=3, seed=7)
    expected = {
        (query_type, items): paper_oracle.query(query_type, items)
        for items in queries
        for query_type in ("subset", "equality", "superset")
    }
    errors: list[BaseException] = []

    def worker() -> None:
        try:
            for items in queries:
                for query_type in ("subset", "equality", "superset"):
                    outcome = executor.execute("paper", query_type, items)
                    assert list(outcome.record_ids) == expected[(query_type, items)]
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    stats = executor.stats.as_dict()
    assert stats["queries"] == 6 * 30 * 3
    assert stats["cache_hits"] + stats["dedup_hits"] + stats["executed"] == stats["queries"]
    # Every distinct (type, items) pair is evaluated at most once thanks to
    # the cache; everything else is a hit or an in-flight dedup.
    assert stats["executed"] <= len(expected)


def test_drop_prevents_stale_cache_population(dataset):
    """A worker holding a reference to a dropped index must not cache results.

    Simulates the race where an evaluation resolved its ManagedIndex just
    before the drop: the entry's ``dropped`` flag (set under the entry lock)
    makes the evaluation fail instead of re-populating the cache under a name
    that may be reused by a different dataset.
    """
    cache = ResultCache(capacity=16)
    manager = IndexManager(result_cache=cache)
    entry = manager.create("victim", dataset, kind="oif")
    manager.drop("victim")
    assert entry.dropped is True
    manager.get = lambda name: entry  # stale resolution, as a racing worker saw it
    with QueryExecutor(manager, cache=cache, max_workers=1) as executor:
        with pytest.raises(ServiceError, match="no index named"):
            executor.execute("victim", "subset", {"a"})
    assert len(cache) == 0, "the dropped index must not leave cache entries behind"


def test_submit_after_shutdown_is_rejected(dataset):
    manager = IndexManager()
    manager.create("paper", dataset, kind="oif")
    executor = QueryExecutor(manager, max_workers=1)
    executor.shutdown()
    with pytest.raises(ServiceError, match="shut down"):
        executor.submit("paper", "subset", {"a"})


def test_worker_count_must_be_positive(dataset):
    manager = IndexManager()
    with pytest.raises(ServiceError, match="worker"):
        QueryExecutor(manager, max_workers=0)


def test_executor_adopts_the_managers_cache_and_rejects_a_split_pair(dataset):
    cache = ResultCache(capacity=8)
    manager = IndexManager(result_cache=cache)
    manager.create("paper", dataset, kind="oif")
    with QueryExecutor(manager) as executor:       # no cache passed: adopt
        assert executor.cache is cache
        executor.execute("paper", "subset", {"a"})
        assert executor.execute("paper", "subset", {"a"}).cached is True
    with pytest.raises(ServiceError, match="must be the manager's result_cache"):
        QueryExecutor(manager, cache=ResultCache(capacity=8))


def test_executor_binds_its_cache_to_a_cacheless_manager(dataset):
    """Passing a cache to an executor over a cache-less manager wires the
    manager's invalidation to that cache instead of silently splitting them."""
    manager = IndexManager()
    manager.create("paper", dataset, kind="oif")
    cache = ResultCache(capacity=8)
    with QueryExecutor(manager, cache=cache) as executor:
        assert manager.result_cache is cache
        before = executor.execute("paper", "subset", {"a", "b"})
        assert executor.execute("paper", "subset", {"a", "b"}).cached is True
        (new_id,) = manager.insert("paper", [{"a", "b", "bound"}])
        after = executor.execute("paper", "subset", {"a", "b"})
        assert after.cached is False
        assert set(after.record_ids) == set(before.record_ids) | {new_id}
