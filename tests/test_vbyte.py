"""Unit tests for the v-byte integer codec."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression import vbyte
from repro.errors import CompressionError


class TestEncodeDecode:
    def test_zero_round_trips(self):
        out = bytearray()
        vbyte.encode_uint(0, out)
        assert bytes(out) == b"\x00"
        assert vbyte.decode_uint(bytes(out)) == (0, 1)

    def test_small_value_is_one_byte(self):
        out = bytearray()
        vbyte.encode_uint(127, out)
        assert len(out) == 1

    def test_value_128_needs_two_bytes(self):
        out = bytearray()
        vbyte.encode_uint(128, out)
        assert len(out) == 2
        assert vbyte.decode_uint(bytes(out))[0] == 128

    def test_large_value_round_trips(self):
        out = bytearray()
        vbyte.encode_uint(2**40 + 12345, out)
        assert vbyte.decode_uint(bytes(out))[0] == 2**40 + 12345

    def test_negative_value_rejected(self):
        with pytest.raises(CompressionError):
            vbyte.encode_uint(-1, bytearray())

    def test_decode_offset_is_respected(self):
        out = bytearray()
        vbyte.encode_uint(5, out)
        vbyte.encode_uint(300, out)
        value, offset = vbyte.decode_uint(bytes(out), 1)
        assert value == 300
        assert offset == len(out)

    def test_truncated_stream_raises(self):
        out = bytearray()
        vbyte.encode_uint(300, out)
        with pytest.raises(CompressionError):
            vbyte.decode_uint(bytes(out[:1]))

    def test_decode_empty_raises(self):
        with pytest.raises(CompressionError):
            vbyte.decode_uint(b"")

    def test_truncated_final_byte_at_buffer_edge_raises_compression_error(self):
        # A lone continuation byte at the very end of the buffer must raise
        # CompressionError (never IndexError): the integer's terminator is
        # missing, which is a corruption signal, not a programming error.
        for buffer in (b"\x80", b"\x05\xff", b"\x05\x81\x80"):
            with pytest.raises(CompressionError):
                vbyte.decode_uint(buffer, len(buffer) - 1)
            with pytest.raises(CompressionError):
                vbyte.decode_batch(buffer)

    def test_negative_offset_raises_compression_error(self):
        # A negative offset would silently wrap to the buffer's tail under
        # Python indexing (or raise IndexError past it); both are rejected.
        with pytest.raises(CompressionError):
            vbyte.decode_uint(b"\x05\x06", -1)
        with pytest.raises(CompressionError):
            vbyte.decode_batch(b"\x05\x06", -1)

    def test_offset_past_buffer_raises_compression_error(self):
        with pytest.raises(CompressionError):
            vbyte.decode_uint(b"\x05", 2)
        with pytest.raises(CompressionError):
            vbyte.decode_batch(b"\x05", 2)


class TestDecodeBatch:
    def test_matches_scalar_decoding(self):
        values = [0, 1, 127, 128, 300, 2**20, 7, 2**40 + 3]
        encoded = vbyte.encode_sequence(values)
        assert vbyte.decode_batch(encoded) == values

    def test_single_byte_fast_path(self):
        values = list(range(128))
        encoded = vbyte.encode_sequence(values)
        assert vbyte.decode_batch(encoded) == values

    def test_offset_is_respected(self):
        encoded = vbyte.encode_sequence([5, 300, 7])
        assert vbyte.decode_batch(encoded, 1) == [300, 7]

    def test_empty(self):
        assert vbyte.decode_batch(b"") == []

    @given(st.lists(st.integers(min_value=0, max_value=2**62), max_size=80))
    def test_equivalent_to_decode_sequence(self, values):
        encoded = vbyte.encode_sequence(values)
        assert vbyte.decode_batch(encoded) == vbyte.decode_sequence(encoded)


class TestSequences:
    def test_sequence_round_trip(self):
        values = [0, 1, 127, 128, 300, 2**20, 7]
        encoded = vbyte.encode_sequence(values)
        assert vbyte.decode_sequence(encoded) == values

    def test_sequence_with_count(self):
        values = [10, 20, 30]
        encoded = vbyte.encode_sequence(values)
        assert vbyte.decode_sequence(encoded, count=2) == [10, 20]

    def test_sequence_with_offset_helper(self):
        encoded = vbyte.encode_sequence([1, 2, 3])
        decoded, offset = vbyte.decode_sequence_with_offset(encoded, 3)
        assert decoded == [1, 2, 3]
        assert offset == len(encoded)

    def test_empty_sequence(self):
        assert vbyte.encode_sequence([]) == b""
        assert vbyte.decode_sequence(b"") == []

    def test_sequence_encoded_size_matches_encoding(self):
        values = [0, 5, 127, 128, 16384, 2**31]
        assert vbyte.sequence_encoded_size(values) == len(vbyte.encode_sequence(values))


class TestEncodedSize:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (127, 1), (128, 2), (16383, 2), (16384, 3), (2**21 - 1, 3), (2**21, 4)],
    )
    def test_boundaries(self, value, expected):
        assert vbyte.encoded_size(value) == expected

    def test_encoded_size_matches_actual_encoding(self):
        for value in [0, 1, 127, 128, 255, 1000, 2**14, 2**28, 2**40]:
            out = bytearray()
            vbyte.encode_uint(value, out)
            assert vbyte.encoded_size(value) == len(out)

    def test_negative_size_rejected(self):
        with pytest.raises(CompressionError):
            vbyte.encoded_size(-5)


class TestProperties:
    @given(st.integers(min_value=0, max_value=2**62))
    def test_round_trip_any_value(self, value):
        out = bytearray()
        vbyte.encode_uint(value, out)
        decoded, offset = vbyte.decode_uint(bytes(out))
        assert decoded == value
        assert offset == len(out)

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=60))
    def test_round_trip_sequences(self, values):
        encoded = vbyte.encode_sequence(values)
        assert vbyte.decode_sequence(encoded) == values

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=0, max_value=2**40))
    def test_concatenation_decodes_in_order(self, first, second):
        out = bytearray()
        vbyte.encode_uint(first, out)
        vbyte.encode_uint(second, out)
        value1, offset = vbyte.decode_uint(bytes(out))
        value2, end = vbyte.decode_uint(bytes(out), offset)
        assert (value1, value2) == (first, second)
        assert end == len(out)
