"""Unit and property tests for sequence forms and their order-preserving encoding."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.items import ItemOrder, Vocabulary
from repro.core.sequence import (
    compare,
    decode_rank,
    decode_tag,
    encode_rank,
    encode_tag,
    sequence_form,
    sequence_form_from_ranks,
)
from repro.errors import IndexBuildError


class TestSequenceForm:
    def test_sequence_form_sorts_by_rank(self):
        order = Vocabulary({"a": 10, "b": 5, "c": 1}).frequency_order()
        assert sequence_form({"c", "a"}, order) == (0, 2)
        assert sequence_form({"b"}, order) == (1,)

    def test_paper_figure3_ordering(self, paper_dataset):
        # Record {g, b, a, d} of Figure 1 has sequence form a, b, d, g
        # under the frequency order (a < b < c < d < ... ).
        order = paper_dataset.vocabulary.frequency_order()
        ranks = sequence_form({"g", "b", "a", "d"}, order)
        assert [order.item_at(rank) for rank in ranks] == ["a", "b", "d", "g"]

    def test_sequence_form_from_ranks_deduplicates(self):
        assert sequence_form_from_ranks([3, 1, 3, 2]) == (1, 2, 3)

    def test_compare(self):
        assert compare((0, 1), (0, 1)) == 0
        assert compare((0,), (0, 1)) < 0  # prefix comes first
        assert compare((1,), (0, 5)) > 0


class TestTagEncoding:
    def test_round_trip(self):
        for ranks in [(), (0,), (0, 3, 9), (5, 100, 10_000)]:
            encoded = encode_tag(ranks)
            decoded, offset = decode_tag(encoded)
            assert decoded == ranks
            assert offset == len(encoded)

    def test_prefix_sorts_before_extension(self):
        assert encode_tag((0, 1)) < encode_tag((0, 1, 2))

    def test_empty_tag_sorts_first(self):
        assert encode_tag(()) < encode_tag((0,))

    def test_byte_order_matches_tuple_order_examples(self):
        tags = [(), (0,), (0, 5), (0, 6), (1,), (1, 2, 3), (2,)]
        encoded = [encode_tag(tag) for tag in tags]
        assert encoded == sorted(encoded)

    def test_non_increasing_ranks_rejected(self):
        with pytest.raises(IndexBuildError):
            encode_tag((3, 3))
        with pytest.raises(IndexBuildError):
            encode_tag((5, 2))

    def test_negative_rank_rejected(self):
        with pytest.raises(IndexBuildError):
            encode_tag((-1,))

    def test_truncated_tag_rejected(self):
        encoded = encode_tag((1, 2))
        with pytest.raises(IndexBuildError):
            decode_tag(encoded[:-5])

    @given(
        st.lists(st.integers(min_value=0, max_value=100_000), unique=True, max_size=20),
        st.lists(st.integers(min_value=0, max_value=100_000), unique=True, max_size=20),
    )
    def test_byte_order_equals_tuple_order(self, left, right):
        left = tuple(sorted(left))
        right = tuple(sorted(right))
        byte_comparison = (encode_tag(left) > encode_tag(right)) - (
            encode_tag(left) < encode_tag(right)
        )
        tuple_comparison = (left > right) - (left < right)
        assert byte_comparison == tuple_comparison


class TestRankEncoding:
    def test_round_trip(self):
        for value in [0, 1, 255, 2**16, 2**32 - 1]:
            assert decode_rank(encode_rank(value)) == value

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexBuildError):
            encode_rank(2**32)
        with pytest.raises(IndexBuildError):
            encode_rank(-1)

    def test_byte_order_matches_numeric_order(self):
        values = [0, 1, 2, 255, 256, 65535, 2**20]
        encoded = [encode_rank(value) for value in values]
        assert encoded == sorted(encoded)


class TestLexicographicOrderOfRecords:
    def test_prefix_property_on_item_order(self):
        order = ItemOrder(list("abcdef"))
        singleton = sequence_form({"a"}, order)
        pair = sequence_form({"a", "b"}, order)
        assert singleton < pair

    def test_frequency_order_drives_comparison(self):
        # c is more frequent than a here, so {c} sorts before {a}.
        order = Vocabulary({"a": 1, "c": 9}).frequency_order()
        assert sequence_form({"c"}, order) < sequence_form({"a"}, order)
