"""Unit tests for the Range-of-Interest definitions (Definitions 2-4)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.roi import RangeOfInterest, equality_roi, subset_roi, superset_rois
from repro.core.sequence import sequence_form
from repro.errors import QueryError


class TestRangeOfInterest:
    def test_contains(self):
        roi = RangeOfInterest(lower=(0, 1), upper=(0, 5))
        assert roi.contains((0, 1))
        assert roi.contains((0, 3, 9))
        assert roi.contains((0, 5))
        assert not roi.contains((0, 0))
        assert not roi.contains((1,))

    def test_inverted_range_rejected(self):
        with pytest.raises(QueryError):
            RangeOfInterest(lower=(5,), upper=(1,))


class TestSubsetRoi:
    def test_paper_example(self):
        # I = {a..j}, qs = {b, c}: RoI_sub = [(a, b, c), (b, c, j)] (Section 4.1).
        # With ranks a=0, b=1, c=2, ..., j=9.
        roi = subset_roi((1, 2), domain_size=10)
        assert roi.lower == (0, 1, 2)
        assert roi.upper == (1, 2, 9)

    def test_query_containing_largest_item(self):
        roi = subset_roi((3, 9), domain_size=10)
        assert roi.upper == (3, 9)
        assert roi.lower == tuple(range(10))

    def test_single_item_query(self):
        roi = subset_roi((4,), domain_size=6)
        assert roi.lower == (0, 1, 2, 3, 4)
        assert roi.upper == (4, 5)

    def test_invalid_queries_rejected(self):
        with pytest.raises(QueryError):
            subset_roi((), 10)
        with pytest.raises(QueryError):
            subset_roi((3, 2), 10)
        with pytest.raises(QueryError):
            subset_roi((11,), 10)

    def test_every_superset_record_falls_inside(self, paper_dataset):
        # Theorem 2: all answers of a subset query lie inside RoI_sub.
        order = paper_dataset.vocabulary.frequency_order()
        query = {"b", "c"}
        query_ranks = tuple(sorted(order.rank_of(item) for item in query))
        roi = subset_roi(query_ranks, len(order))
        for record in paper_dataset:
            if query <= record.items:
                assert roi.contains(sequence_form(record.items, order))


class TestEqualityRoi:
    def test_point_range(self):
        roi = equality_roi((2, 5, 7), domain_size=10)
        assert roi.lower == roi.upper == (2, 5, 7)

    def test_invalid_query_rejected(self):
        with pytest.raises(QueryError):
            equality_roi((), 5)


class TestSupersetRois:
    def test_number_of_list_ranges_grows_with_position(self):
        rois = superset_rois((1, 4, 7), domain_size=10)
        # The i-th query item owns i list ranges (the (i+1)-th is served by
        # the metadata table and not returned).
        assert len(rois[1]) == 0
        assert len(rois[4]) == 1
        assert len(rois[7]) == 2

    def test_paper_figure6_shape(self):
        # qs = {a, c, f} over I = {a..z...}: for item c the first region is
        # [(a, c), (a, c, f)], for item f the regions start at (a, c, f).
        ranks = (0, 2, 5)
        rois = superset_rois(ranks, domain_size=26)
        assert rois[2][0].lower == (0, 2)
        assert rois[2][0].upper == (0, 2, 5)
        assert rois[5][0].lower == (0, 2, 5)
        assert rois[5][0].upper == (0, 5)
        assert rois[5][1].lower == (2, 5)
        assert rois[5][1].upper == (2, 5)

    def test_ranges_are_disjoint_and_ordered(self):
        rois = superset_rois((1, 3, 6, 9), domain_size=12)
        for ranges in rois.values():
            for earlier, later in zip(ranges, ranges[1:]):
                assert earlier.upper < later.lower

    def test_single_item_query_has_no_list_ranges(self):
        rois = superset_rois((4,), domain_size=8)
        assert rois == {4: []}

    def test_answers_fall_inside_some_range(self, paper_dataset):
        # Every superset answer containing item q_i must fall inside one of the
        # list ranges of q_i or in q_i's metadata region (smallest item = q_i).
        order = paper_dataset.vocabulary.frequency_order()
        query = {"a", "c", "f"}
        query_ranks = tuple(sorted(order.rank_of(item) for item in query))
        rois = superset_rois(query_ranks, len(order))
        for record in paper_dataset:
            if not record.items <= query:
                continue
            form = sequence_form(record.items, order)
            for rank in form:
                if rank == form[0]:
                    continue  # covered by the metadata region of the smallest item
                assert any(roi.contains(form) for roi in rois[rank]), (record, rank)

    @given(
        st.integers(min_value=2, max_value=40).flatmap(
            lambda domain: st.tuples(
                st.just(domain),
                st.sets(st.integers(min_value=0, max_value=domain - 1), min_size=1, max_size=6),
            )
        )
    )
    def test_range_bounds_are_always_valid(self, domain_and_query):
        domain_size, query = domain_and_query
        ranks = tuple(sorted(query))
        rois = superset_rois(ranks, domain_size)
        assert set(rois) == set(ranks)
        for ranges in rois.values():
            for roi in ranges:
                assert roi.lower <= roi.upper
