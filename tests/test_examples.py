"""Smoke tests that the example scripts run and print sensible output."""

from __future__ import annotations

import importlib.util
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(f"examples_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_has_at_least_three_scripts(self):
        scripts = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3
        assert "quickstart.py" in scripts

    def test_quickstart_runs_and_matches_paper_answers(self, capsys):
        module = load_example("quickstart")
        module.main()
        output = capsys.readouterr().out
        assert "[101, 104, 114]" in output  # subset {a, d}
        assert "[106, 113]" in output  # superset {a, c}
        assert "metadata table" in output

    def test_market_basket_components(self):
        # Run the example's basket simulator at a smaller size and check the
        # analyses it performs give exact answers.
        module = load_example("market_basket")
        dataset = module.simulate_baskets(800)
        assert len(dataset) == 800
        from repro import OrderedInvertedFile

        oif = OrderedInvertedFile(dataset)
        result = oif.subset_query({"milk", "bread"})
        assert all(dataset.get(record_id).contains_all({"milk", "bread"}) for record_id in result)

    def test_scaling_study_runs_small(self, capsys):
        module = load_example("scaling_study")
        module.main(400)
        output = capsys.readouterr().out
        assert "records" in output
        assert "OIF pages" in output

    def test_composite_queries_runs_and_agrees_across_layers(self, capsys):
        module = load_example("composite_queries")
        module.main()
        output = capsys.readouterr().out
        # Index, runner and service must report the same four answers.
        assert "answers via OIF: [1, 5, 7, 9]" in output
        assert "service: [1, 5, 7, 9]" in output
        assert "cached on repeat: True" in output
        # The probe line now carries the posting representation and cost
        # annotations, e.g. "probe subset(milk:bitmap) [sel=..., cost=...]".
        assert "probe subset(milk:" in output

    def test_sharded_service_example_runs_end_to_end(self, capsys):
        module = load_example("sharded_service")
        module.main()
        output = capsys.readouterr().out
        assert "identical answers, sharded and monolithic" in output
        assert "pending per shard after 2 inserts" in output
        assert "per-shard breakdown" in output
        assert "/stats per-shard slots: ['0', '1', '2', '3']" in output

    def test_weblog_sessions_components(self):
        load_example("weblog_sessions")
        from repro.datasets import MswebConfig, generate_msweb

        sessions = generate_msweb(MswebConfig(num_sessions=500, replicas=1, seed=3))
        assert len(sessions) == 500
