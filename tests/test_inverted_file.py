"""Tests for the classic inverted file baseline."""

from __future__ import annotations

import itertools

import pytest

from repro.baselines import InvertedFile, NaiveScanIndex
from repro.core import Dataset
from repro.errors import QueryError
from tests.conftest import sample_queries


class TestPaperExamples:
    def test_subset_example(self, paper_dataset):
        index = InvertedFile(paper_dataset)
        assert index.subset_query({"a", "d"}) == [101, 104, 114]

    def test_superset_example(self, paper_dataset):
        index = InvertedFile(paper_dataset)
        assert index.superset_query({"a", "c"}) == [106, 113]

    def test_equality_example(self, paper_dataset):
        index = InvertedFile(paper_dataset)
        assert index.equality_query({"a", "c"}) == [106]

    def test_all_pairs_match_oracle(self, paper_dataset, paper_oracle):
        index = InvertedFile(paper_dataset)
        for pair in itertools.combinations("abcdefghij", 2):
            for query_type in ("subset", "equality", "superset"):
                assert index.query(query_type, set(pair)) == paper_oracle.query(
                    query_type, set(pair)
                )


class TestStructure:
    def test_build_report(self, skewed_if, skewed_dataset):
        report = skewed_if.build_report
        assert report is not None
        assert report.num_records == len(skewed_dataset)
        assert report.num_postings == skewed_dataset.total_postings
        assert report.index_pages > 0

    def test_fetch_list_returns_sorted_original_ids(self, skewed_if, skewed_dataset):
        for item in list(skewed_dataset.vocabulary)[:5]:
            postings = skewed_if.fetch_list(item)
            ids = [posting.record_id for posting in postings]
            assert ids == sorted(ids)
            assert len(ids) == skewed_dataset.vocabulary.support(item)

    def test_fetch_list_unknown_item(self, skewed_if):
        assert skewed_if.fetch_list("missing-item") == []

    def test_list_page_count(self, skewed_if, skewed_dataset):
        top_item = skewed_if.order.item_at(0)
        assert skewed_if.list_page_count(top_item) >= 1
        assert skewed_if.list_page_count("missing-item") == 0

    def test_whole_list_is_fetched_per_query_item(self, larger_dataset):
        # The IF's cost for one item equals the pages of that item's list
        # (whole-tuple retrieval), independent of the query's selectivity.
        index = InvertedFile(larger_dataset)
        top_item = index.order.item_at(0)
        index.drop_cache()
        before = index.stats.snapshot()
        index.subset_query({top_item})
        pages = index.stats.since(before).page_reads
        assert pages >= index.list_page_count(top_item)


class TestAgainstOracle:
    def test_random_queries(self, skewed_if, skewed_oracle, skewed_dataset):
        for query in sample_queries(skewed_dataset, count=50, max_size=4, seed=55):
            for query_type in ("subset", "equality", "superset"):
                assert skewed_if.query(query_type, query) == skewed_oracle.query(
                    query_type, query
                )

    def test_uncompressed_variant(self, skewed_dataset, skewed_oracle):
        index = InvertedFile(skewed_dataset, compress=False)
        for query in sample_queries(skewed_dataset, count=25, max_size=4, seed=56):
            assert index.subset_query(query) == skewed_oracle.subset_query(query)

    def test_unknown_items(self, skewed_if):
        assert skewed_if.subset_query({"missing-item"}) == []
        assert skewed_if.equality_query({"missing-item"}) == []
        assert skewed_if.superset_query({"missing-item"}) == []

    def test_empty_query_rejected(self, skewed_if):
        with pytest.raises(QueryError):
            skewed_if.subset_query(set())


class TestMergeRecords:
    def test_merge_appends_postings(self):
        dataset = Dataset.from_transactions([{"a", "b"}, {"b", "c"}, {"a"}])
        index = InvertedFile(dataset)
        new_records = dataset.extend([{"a", "c"}, {"b"}])
        written = index.merge_records(new_records)
        assert written == 3
        assert index.subset_query({"a"}) == [1, 3, 4]
        assert index.subset_query({"b"}) == [1, 2, 5]
        assert index.superset_query({"a", "c"}) == [3, 4]

    def test_merge_requires_known_items(self):
        dataset = Dataset.from_transactions([{"a"}])
        index = InvertedFile(dataset)
        new_records = dataset.extend([{"zz"}])
        with pytest.raises(QueryError):
            index.merge_records(new_records)

    def test_repeated_merges_stay_consistent(self):
        dataset = Dataset.from_transactions([{"a", "b"}, {"b"}])
        index = InvertedFile(dataset)
        for batch in ([{"a"}], [{"a", "b"}], [{"b"}]):
            new_records = dataset.extend(batch)
            index.merge_records(new_records)
        oracle = NaiveScanIndex(dataset)
        for query in ({"a"}, {"b"}, {"a", "b"}):
            for query_type in ("subset", "equality", "superset"):
                assert index.query(query_type, query) == oracle.query(query_type, query)
