"""Unit tests for records and datasets."""

from __future__ import annotations

import pytest

from repro.core.records import Dataset, Record
from repro.errors import DatasetError


class TestRecord:
    def test_basic_properties(self):
        record = Record(7, frozenset({"a", "b"}))
        assert record.record_id == 7
        assert record.length == 2

    def test_items_coerced_to_frozenset(self):
        record = Record(1, {"a", "b"})  # type: ignore[arg-type]
        assert isinstance(record.items, frozenset)

    def test_negative_id_rejected(self):
        with pytest.raises(DatasetError):
            Record(-1, frozenset({"a"}))

    def test_predicates(self):
        record = Record(1, frozenset({"a", "b", "c"}))
        assert record.contains_all({"a", "b"})
        assert not record.contains_all({"a", "z"})
        assert record.contained_in({"a", "b", "c", "d"})
        assert not record.contained_in({"a", "b"})
        assert record.equals({"c", "b", "a"})
        assert not record.equals({"a", "b"})


class TestDataset:
    def test_from_transactions_assigns_dense_ids(self):
        dataset = Dataset.from_transactions([{"a"}, {"b"}, {"c"}], start_id=10)
        assert dataset.record_ids == [10, 11, 12]

    def test_get_by_id(self):
        dataset = Dataset.from_transactions([{"a"}, {"b"}])
        assert dataset.get(2).items == frozenset({"b"})
        assert dataset.has_id(1)
        assert not dataset.has_id(99)

    def test_get_missing_raises(self):
        dataset = Dataset.from_transactions([{"a"}])
        with pytest.raises(DatasetError):
            dataset.get(42)

    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError):
            Dataset([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DatasetError):
            Dataset([Record(1, frozenset({"a"})), Record(1, frozenset({"b"}))])

    def test_empty_transaction_rejected_by_default(self):
        with pytest.raises(DatasetError):
            Dataset.from_transactions([{"a"}, set()])

    def test_empty_transaction_allowed_when_requested(self):
        dataset = Dataset.from_transactions([{"a"}, set()], allow_empty=True)
        assert dataset.get(2).length == 0

    def test_statistics(self, paper_dataset):
        assert len(paper_dataset) == 18
        assert paper_dataset.domain_size == 10
        assert paper_dataset.total_postings == sum(r.length for r in paper_dataset)
        assert paper_dataset.average_length == pytest.approx(
            paper_dataset.total_postings / 18
        )

    def test_data_size_bytes(self):
        dataset = Dataset.from_transactions([{"a", "b"}, {"c"}])
        # (1 id + 2 items) * 4 + (1 id + 1 item) * 4
        assert dataset.data_size_bytes() == 12 + 8

    def test_vocabulary_is_cached(self):
        dataset = Dataset.from_transactions([{"a"}])
        assert dataset.vocabulary is dataset.vocabulary

    def test_extend_appends_records_and_refreshes_vocabulary(self):
        dataset = Dataset.from_transactions([{"a"}])
        before_domain = dataset.domain_size
        added = dataset.extend([{"b", "c"}])
        assert len(dataset) == 2
        assert added[0].record_id == 2
        assert dataset.domain_size == before_domain + 2

    def test_extend_rejects_empty(self):
        dataset = Dataset.from_transactions([{"a"}])
        with pytest.raises(DatasetError):
            dataset.extend([set()])

    def test_iteration_and_indexing(self):
        dataset = Dataset.from_transactions([{"a"}, {"b"}])
        assert [record.record_id for record in dataset] == [1, 2]
        assert dataset[0].record_id == 1
