"""Unit tests for posting blocks, block keys and the block writer."""

from __future__ import annotations

import pytest

from repro.compression.postings import Posting, PostingBlockCodec
from repro.core.blocks import (
    BlockKey,
    BlockWriter,
    PostingBlock,
    TagLookup,
    decode_block_entry,
    encode_block,
    item_prefix,
    search_key,
)
from repro.errors import IndexBuildError


def simple_tags(num_records=1000):
    """Tag lookup where record i has sequence form (i,) — enough for writer tests."""
    return TagLookup([(i,) for i in range(1, num_records + 1)])


class TestBlockKey:
    def test_encode_decode_round_trip(self):
        key = BlockKey(item_rank=3, tag=(0, 4, 9), last_id=77)
        assert BlockKey.decode(key.encode()) == key

    def test_empty_tag(self):
        key = BlockKey(item_rank=0, tag=(), last_id=5)
        assert BlockKey.decode(key.encode()) == key

    def test_keys_order_by_item_then_tag_then_id(self):
        keys = [
            BlockKey(0, (0, 1), 4),
            BlockKey(0, (0, 1), 9),
            BlockKey(0, (0, 2), 1),
            BlockKey(0, (1,), 2),
            BlockKey(1, (0,), 1),
        ]
        encoded = [key.encode() for key in keys]
        assert encoded == sorted(encoded)

    def test_search_key_precedes_real_blocks_with_same_tag(self):
        probe = search_key(2, (0, 5))
        real = BlockKey(2, (0, 5), 1).encode()
        assert probe < real

    def test_item_prefix_orders_items(self):
        assert item_prefix(0) < item_prefix(1) < item_prefix(500)


class TestPostingBlock:
    def test_block_properties(self):
        block = PostingBlock(item_rank=2, postings=[Posting(4, 2), Posting(9, 3)], tag=(1, 5))
        assert block.first_id == 4
        assert block.last_id == 9
        assert block.key() == BlockKey(2, (1, 5), 9)

    def test_empty_block_rejected(self):
        with pytest.raises(IndexBuildError):
            PostingBlock(item_rank=0, postings=[], tag=())

    def test_encode_decode_entry(self):
        codec = PostingBlockCodec()
        block = PostingBlock(item_rank=1, postings=[Posting(3, 2), Posting(10, 4)], tag=(0, 3))
        key, value = encode_block(block, codec)
        decoded_key, postings = decode_block_entry(key, value, codec)
        assert decoded_key == block.key()
        assert postings == block.postings


class TestBlockWriter:
    def test_blocks_close_at_capacity(self):
        writer = BlockWriter(0, PostingBlockCodec(), simple_tags(), block_capacity=3)
        blocks = []
        for i in range(1, 8):
            block = writer.add(Posting(i, 1))
            if block:
                blocks.append(block)
        tail = writer.finish()
        if tail:
            blocks.append(tail)
        assert [len(block.postings) for block in blocks] == [3, 3, 1]
        assert [block.last_id for block in blocks] == [3, 6, 7]

    def test_blocks_close_on_byte_budget(self):
        writer = BlockWriter(
            0, PostingBlockCodec(), simple_tags(), block_capacity=10_000, max_block_bytes=12
        )
        blocks = []
        for i in range(1, 30):
            block = writer.add(Posting(i, 1))
            if block:
                blocks.append(block)
        tail = writer.finish()
        if tail:
            blocks.append(tail)
        codec = PostingBlockCodec()
        for block in blocks:
            assert len(codec.encode(block.postings)) <= 12 + 4
        assert sum(len(block.postings) for block in blocks) == 29

    def test_tag_is_sequence_form_of_last_record(self):
        lookup = TagLookup([(0, 5), (0, 7), (1, 2)])
        writer = BlockWriter(0, PostingBlockCodec(), lookup, block_capacity=2)
        block = None
        for posting in [Posting(1, 2), Posting(2, 2)]:
            block = writer.add(posting) or block
        assert block is not None
        assert block.tag == (0, 7)

    def test_tag_prefix_truncation(self):
        lookup = TagLookup([(0, 5, 9, 12)])
        writer = BlockWriter(
            0, PostingBlockCodec(), lookup, block_capacity=1, tag_prefix=2
        )
        block = writer.add(Posting(1, 4))
        assert block is not None
        assert block.tag == (0, 5)

    def test_finish_on_empty_writer_returns_none(self):
        writer = BlockWriter(0, PostingBlockCodec(), simple_tags())
        assert writer.finish() is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(IndexBuildError):
            BlockWriter(0, PostingBlockCodec(), simple_tags(), block_capacity=0)
        with pytest.raises(IndexBuildError):
            BlockWriter(0, PostingBlockCodec(), simple_tags(), max_block_bytes=0)

    def test_no_postings_are_lost_or_reordered(self):
        writer = BlockWriter(
            0, PostingBlockCodec(), simple_tags(), block_capacity=7, max_block_bytes=64
        )
        postings = [Posting(i, i % 5 + 1) for i in range(1, 200)]
        blocks = []
        for posting in postings:
            block = writer.add(posting)
            if block:
                blocks.append(block)
        tail = writer.finish()
        if tail:
            blocks.append(tail)
        flattened = [posting for block in blocks for posting in block.postings]
        assert flattened == postings
        # Block keys must be strictly increasing so bulk load accepts them.
        keys = [block.key().encode() for block in blocks]
        assert keys == sorted(set(keys))
