"""Tests for the simulated msweb / msnbc real-dataset generators."""

from __future__ import annotations

import pytest

from repro.datasets.msnbc import CATEGORIES, MSNBC_AVERAGE_LENGTH, MsnbcConfig
from repro.datasets.msnbc import generate_dataset as generate_msnbc
from repro.datasets.msweb import MSWEB_DOMAIN_SIZE, MswebConfig, area_name
from repro.datasets.msweb import generate_dataset as generate_msweb
from repro.errors import DatasetError


class TestMsweb:
    def test_statistics_match_published_shape(self):
        dataset = generate_msweb(MswebConfig(num_sessions=5000, seed=1))
        # Domain bounded by the published 294 areas and skewed towards short sessions.
        assert dataset.domain_size <= MSWEB_DOMAIN_SIZE
        assert 1.5 <= dataset.average_length <= 5.0

    def test_item_distribution_is_skewed(self):
        dataset = generate_msweb(MswebConfig(num_sessions=5000, seed=1))
        order = dataset.vocabulary.frequency_order()
        top_support = dataset.vocabulary.support(order.item_at(0))
        median_support = dataset.vocabulary.support(order.item_at(len(order) // 2))
        assert top_support > 10 * max(median_support, 1)

    def test_replication_multiplies_records_not_vocabulary(self):
        single = generate_msweb(MswebConfig(num_sessions=1000, replicas=1, seed=2))
        replicated = generate_msweb(MswebConfig(num_sessions=1000, replicas=3, seed=2))
        assert len(replicated) == 3 * len(single)
        assert replicated.domain_size == single.domain_size

    def test_reproducibility(self):
        first = generate_msweb(MswebConfig(num_sessions=500, seed=3))
        second = generate_msweb(MswebConfig(num_sessions=500, seed=3))
        assert [r.items for r in first] == [r.items for r in second]

    def test_area_names_look_like_vroots(self):
        assert area_name(0) == "V1000"
        assert area_name(287) == "V1287"

    def test_invalid_config_rejected(self):
        with pytest.raises(DatasetError):
            MswebConfig(num_sessions=0)
        with pytest.raises(DatasetError):
            MswebConfig(replicas=0)


class TestMsnbc:
    def test_statistics_match_published_shape(self):
        dataset = generate_msnbc(MsnbcConfig(num_sessions=20_000, seed=1))
        assert dataset.domain_size <= len(CATEGORIES)
        assert abs(dataset.average_length - MSNBC_AVERAGE_LENGTH) < 1.0

    def test_distribution_is_mild(self):
        dataset = generate_msnbc(MsnbcConfig(num_sessions=20_000, seed=1))
        order = dataset.vocabulary.frequency_order()
        top = dataset.vocabulary.support(order.item_at(0))
        bottom = dataset.vocabulary.support(order.item_at(len(order) - 1))
        # Near-uniform: the most popular category is within ~6x of the least popular.
        assert top < 6 * bottom

    def test_items_are_category_names(self):
        dataset = generate_msnbc(MsnbcConfig(num_sessions=500, seed=4))
        for record in dataset:
            assert record.items <= set(CATEGORIES)

    def test_reproducibility(self):
        first = generate_msnbc(MsnbcConfig(num_sessions=500, seed=9))
        second = generate_msnbc(MsnbcConfig(num_sessions=500, seed=9))
        assert [r.items for r in first] == [r.items for r in second]

    def test_invalid_config_rejected(self):
        with pytest.raises(DatasetError):
            MsnbcConfig(num_sessions=-1)
        with pytest.raises(DatasetError):
            MsnbcConfig(mean_length=100)
