"""End-to-end tests: JSON-over-HTTP server + client over a real socket.

The server binds 127.0.0.1 on an ephemeral port (no external network), the
client is the real :class:`repro.service.client.ServiceClient`, so these
exercise the full wire path: routing, JSON codecs, error mapping, the
concurrent executor behind ``/batch`` and cache accounting in ``/stats``.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.service import ServiceClient, ServiceServer

TRANSACTIONS = [
    {"a", "b", "d", "g"},
    {"a", "b", "e"},
    {"a", "b", "e", "f"},
    {"a", "b", "d"},
    {"a", "b", "c", "f"},
    {"a", "c"},
    {"d", "h"},
    {"a", "b", "f"},
    {"b", "c"},
    {"b", "g", "j"},
]


@pytest.fixture(scope="module")
def server():
    with ServiceServer(max_workers=4, cache_capacity=128) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    test_client = ServiceClient(port=server.port)
    test_client.create_index("web", transactions=TRANSACTIONS)
    return test_client


def test_healthz_round_trip(server, client):
    payload = client.healthz()
    assert payload["status"] == "ok"
    assert "web" in payload["indexes"]
    assert payload["uptime_seconds"] >= 0


def test_create_describes_the_index(client):
    (description,) = [d for d in client.indexes() if d["name"] == "web"]
    assert description["kind"] == "oif"
    assert description["records"] == len(TRANSACTIONS)
    assert description["size_bytes"] > 0


def test_single_queries_for_all_three_predicates(client):
    subset = client.query("web", "subset", ["a", "b"])
    assert subset["record_ids"] == [1, 2, 3, 4, 5, 8]
    equality = client.query("web", "equality", ["a", "c"])
    assert equality["record_ids"] == [6]
    superset = client.query("web", "superset", ["a", "b", "e", "f"])
    assert superset["record_ids"] == [2, 3, 8]
    assert subset["cached"] is False


def test_batch_of_100_queries(client):
    queries = []
    for n in range(100):
        queries.append({"type": "subset", "items": [["a"], ["b"], ["a", "b"], ["d"]][n % 4]})
    results = client.batch(queries, index="web")
    assert len(results) == 100
    for query, result in zip(queries, results):
        assert sorted(result["items"]) == sorted(query["items"])
    by_items = {tuple(sorted(r["items"])): r["record_ids"] for r in results}
    assert by_items[("a", "b")] == [1, 2, 3, 4, 5, 8]
    assert by_items[("d",)] == [1, 4, 7]


def test_stats_show_cache_hits_on_a_repeated_hot_query(client):
    for _ in range(5):
        client.query("web", "subset", ["a", "b"])
    stats = client.stats()
    assert stats["cache"]["hits"] > 0
    assert stats["serving"]["cache_hits"] > 0
    assert stats["serving"]["queries"] >= 5
    assert stats["serving"]["latency"]["count"] == stats["serving"]["queries"]
    index_names = [d["name"] for d in stats["indexes"]]
    assert "web" in index_names


def test_update_over_http_invalidates_and_is_queryable(client):
    response = client.insert("web", [{"a", "b", "zz"}], flush=True)
    assert response["inserted"] == 1
    (new_id,) = response["record_ids"]
    assert response["flush"]["records_merged"] == 1
    result = client.query("web", "subset", ["zz"])
    assert result["record_ids"] == [new_id]
    hot = client.query("web", "subset", ["a", "b"])
    assert new_id in hot["record_ids"]


def test_rebuild_endpoint_preserves_answers(client):
    before = client.query("web", "subset", ["a", "b"])["record_ids"]
    description = client.rebuild_index("web")
    assert description["pending_updates"] == 0
    assert client.query("web", "subset", ["a", "b"])["record_ids"] == before


def test_create_and_drop_second_index(client):
    client.create_index("tiny", transactions=[{"x"}, {"x", "y"}], kind="if")
    assert client.query("tiny", "subset", ["x"])["record_ids"] == [1, 2]
    client.drop_index("tiny")
    assert all(d["name"] != "tiny" for d in client.indexes())


def test_unknown_index_maps_to_404(client):
    with pytest.raises(ServiceError, match="no index named"):
        client.query("ghost", "subset", ["a"])


def test_bad_requests_map_to_400(server, client):
    with pytest.raises(ServiceError, match="non-empty list of query items"):
        client.query("web", "subset", [])
    with pytest.raises(ServiceError, match="unknown query type"):
        client.query("web", "between", ["a"])
    with pytest.raises(ServiceError, match="exactly one of"):
        client.create_index("broken")
    # Malformed JSON straight over the socket.
    request = urllib.request.Request(
        f"{server.url}/query", data=b"{not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400
    assert "malformed JSON" in json.loads(excinfo.value.read())["error"]


def test_invalid_index_options_map_to_400(client):
    with pytest.raises(ServiceError, match="invalid index options"):
        client._request(
            "POST",
            "/indexes",
            {"name": "opts", "transactions": [["a"]], "options": {"bogus": 1}},
        )
    # The failed create must not leak its name reservation.
    client.create_index("opts", transactions=[{"a"}])
    client.drop_index("opts")


def test_malformed_content_length_maps_to_400(server):
    import http.client

    connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        connection.putrequest("POST", "/query")
        connection.putheader("Content-Length", "abc")
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 400
        assert "Content-Length" in json.loads(response.read())["error"]
    finally:
        connection.close()


def test_unknown_paths_are_404(server):
    request = urllib.request.Request(f"{server.url}/nope")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 404


def test_duplicate_index_name_is_rejected(client):
    with pytest.raises(ServiceError, match="already exists"):
        client.create_index("web", transactions=[{"a"}])


def test_index_names_with_spaces_round_trip_and_slashes_are_rejected(client):
    client.create_index("my index", transactions=[{"x"}])
    assert client.query("my index", "subset", ["x"])["record_ids"] == [1]
    client.rebuild_index("my index")
    client.drop_index("my index")
    assert all(d["name"] != "my index" for d in client.indexes())
    with pytest.raises(ServiceError, match="must not contain"):
        client.create_index("a/b", transactions=[{"x"}])


def test_server_adopts_cache_of_a_supplied_executor():
    """A caller-provided executor is authoritative: its cache is the cache."""
    from repro.core import Dataset
    from repro.service import IndexManager, QueryExecutor, ResultCache

    cache = ResultCache(capacity=8)
    manager = IndexManager(result_cache=cache)
    manager.create("pre", Dataset.from_transactions([{"a"}, {"a", "b"}]))
    executor = QueryExecutor(manager, cache=cache, max_workers=2)
    with ServiceServer(executor=executor) as running:
        assert running.cache is cache
        assert running.manager is manager
        test_client = ServiceClient(port=running.port)
        test_client.query("pre", "subset", ["a"])
        assert test_client.query("pre", "subset", ["a"])["cached"] is True
        test_client.insert("pre", [{"a", "c"}])
        assert test_client.query("pre", "subset", ["a"])["cached"] is False
    with pytest.raises(ServiceError, match="not the one the executor is bound to"):
        ServiceServer(executor=QueryExecutor(manager, cache=cache), manager=IndexManager())


def test_create_index_rejects_non_list_transactions(client):
    for bad in ("abc", {"a": 1}, [], ["not-a-list"]):
        with pytest.raises(ServiceError, match="non-empty list of item lists"):
            client._request(
                "POST", "/indexes", {"name": "bad", "transactions": bad}
            )


def test_update_rejects_non_list_transaction_elements(client):
    for bad in (["ab"], [5], "ab", []):
        with pytest.raises(ServiceError, match="non-empty list of item lists"):
            client._request("POST", "/update", {"index": "web", "transactions": bad})


def test_batch_rejects_non_object_queries(client):
    with pytest.raises(ServiceError, match="must be an object"):
        client._request("POST", "/batch", {"index": "web", "queries": ["subset"]})


def test_server_adopts_cache_of_a_prebuilt_manager():
    """Indexes created before the server exists still get invalidation."""
    from repro.core import Dataset
    from repro.service import IndexManager

    manager = IndexManager()
    manager.create("pre", Dataset.from_transactions([{"a"}, {"a", "b"}]))
    with ServiceServer(manager=manager) as running:
        test_client = ServiceClient(port=running.port)
        assert running.manager.result_cache is running.cache
        first = test_client.query("pre", "subset", ["a"])
        assert test_client.query("pre", "subset", ["a"])["cached"] is True
        test_client.insert("pre", [{"a", "c"}])
        after = test_client.query("pre", "subset", ["a"])
        assert after["cached"] is False
        assert len(after["record_ids"]) == len(first["record_ids"]) + 1


EXPR_TRANSACTIONS = [
    {"a", "b", "c"},
    {"a", "b"},
    {"b", "c", "d"},
    {"a"},
    {"a", "c", "d", "e"},
    {"d", "e"},
]


@pytest.fixture(scope="module")
def expr_client(client):
    client.create_index("exprs", transactions=EXPR_TRANSACTIONS)
    return client


def expr_brute_force(expr) -> list[int]:
    return [
        record_id
        for record_id, items in enumerate(EXPR_TRANSACTIONS, start=1)
        if expr.matches(frozenset(items))
    ]


def test_expression_round_trip_over_the_wire(expr_client):
    from repro.core.query import And, Not, Subset, Superset

    expr = And((Subset({"a"}), Not(Superset({"a", "b"}))))
    result = expr_client.query_expr("exprs", expr)
    assert result["record_ids"] == expr_brute_force(expr)
    assert result["expr"] == expr.normalize().to_dict()
    assert "type" not in result  # composite outcomes carry no point predicate


def test_expression_accepts_raw_wire_dicts(expr_client):
    wire = {
        "op": "or",
        "args": [
            {"op": "equality", "items": ["a"]},
            {"op": "subset", "items": ["d", "e"]},
        ],
    }
    result = expr_client.query_expr("exprs", wire)
    assert result["record_ids"] == [4, 5, 6]


def test_limit_expression_over_the_wire(expr_client):
    from repro.core.query import Subset

    result = expr_client.query_expr("exprs", Subset({"a"}).limit(2))
    assert len(result["record_ids"]) == 2
    assert set(result["record_ids"]) <= {1, 2, 4, 5}


def test_equivalent_expressions_share_one_cache_slot(expr_client):
    from repro.core.query import And, Not, Subset, Superset

    left = And((Subset({"c", "b"}), Not(Superset({"b", "c"}))))
    right = And((Not(Not(Not(Superset({"c", "b"})))), Subset({"b", "c"})))
    first = expr_client.query_expr("exprs", left)
    second = expr_client.query_expr("exprs", right)
    assert first["record_ids"] == second["record_ids"]
    assert second["cached"] is True


def test_point_leaf_expressions_keep_the_legacy_fields(expr_client):
    result = expr_client.query_expr("exprs", {"op": "subset", "items": ["a", "b"]})
    assert result["type"] == "subset"
    assert result["items"] == ["a", "b"]
    assert result["record_ids"] == [1, 2]


def test_batch_mixes_expressions_and_point_queries(expr_client):
    queries = [
        {"expr": {"op": "not", "arg": {"op": "subset", "items": ["a"]}}},
        {"type": "subset", "items": ["a"]},
    ]
    negated, positive = expr_client.batch(queries, index="exprs")
    assert negated["record_ids"] == [3, 6]
    assert positive["record_ids"] == [1, 2, 4, 5]


def test_expr_and_type_together_map_to_400(expr_client):
    with pytest.raises(ServiceError, match="not both"):
        expr_client._request(
            "POST",
            "/query",
            {
                "index": "exprs",
                "expr": {"op": "subset", "items": ["a"]},
                "type": "subset",
                "items": ["a"],
            },
        )


def test_malformed_expressions_map_to_400(expr_client):
    for wire in ({"op": "teleport"}, {"op": "subset", "items": []}, {"op": "and", "args": []}):
        with pytest.raises(ServiceError):
            expr_client.query_expr("exprs", wire)


def test_update_invalidates_only_matching_expression_entries(expr_client):
    from repro.core.query import And, Not, Subset, Superset

    touched = And((Subset({"a"}), Not(Superset({"a", "b"}))))   # matches {a, c, x}
    untouched = And((Subset({"d"}), Subset({"e"})))             # does not
    expr_client.query_expr("exprs", touched)
    expr_client.query_expr("exprs", untouched)
    assert expr_client.query_expr("exprs", untouched)["cached"] is True

    response = expr_client.insert("exprs", [{"a", "c", "x"}])
    (new_id,) = response["record_ids"]

    refreshed = expr_client.query_expr("exprs", touched)
    assert refreshed["cached"] is False
    assert new_id in refreshed["record_ids"]
    assert expr_client.query_expr("exprs", untouched)["cached"] is True
