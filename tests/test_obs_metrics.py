"""Unit and property tests for the metric instruments and their registry.

The load-bearing guarantee is the histogram's percentile error bound: for any
sample the log-bucketed readout must be within one bucket width (< ``GROWTH``
relative) of numpy's exact inverted-CDF order statistic.  The Prometheus
rendering is checked by parsing it back line by line.
"""

from __future__ import annotations

import math
import threading

try:  # the oracle test skips when numpy is absent (CI no-numpy job)
    import numpy as np
except ImportError:
    np = None
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    GROWTH,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper_bound,
)


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec(4.0)
        assert gauge.value == pytest.approx(8.5)


class TestBuckets:
    def test_value_in_its_bucket_range(self):
        for value in (0.001, 0.5, 1.0, 3.7, 100.0, 12345.6):
            index = bucket_index(value)
            upper = bucket_upper_bound(index)
            assert value <= upper * (1 + 1e-9)
            assert value > upper / GROWTH * (1 - 1e-9)

    def test_non_positive_values_share_the_zero_bucket(self):
        assert bucket_index(0.0) == bucket_index(-5.0)
        assert bucket_upper_bound(bucket_index(0.0)) == 0.0

    def test_exact_powers_stay_in_their_bucket(self):
        # Values sitting on a bucket boundary must not jump up a bucket.
        for exponent in range(-8, 9):
            value = GROWTH**exponent
            assert bucket_index(value) == exponent


class TestHistogram:
    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(0.5) is None
        summary = hist.as_dict()
        assert summary["min"] is None and summary["max"] is None
        assert summary["p95"] is None

    def test_single_observation_is_exact(self):
        hist = Histogram()
        hist.record(7.3)
        for q in (0.5, 0.95, 0.999, 1.0):
            assert hist.percentile(q) == pytest.approx(7.3)

    def test_percentile_rejects_bad_quantile(self):
        hist = Histogram()
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_merge_combines_counts_and_extremes(self):
        left, right = Histogram(), Histogram()
        for value in (1.0, 2.0, 3.0):
            left.record(value)
        for value in (10.0, 0.5):
            right.record(value)
        left.merge(right)
        assert left.count == 5
        assert left.min == 0.5
        assert left.max == 10.0
        assert left.total == pytest.approx(16.5)

    def test_concurrent_records_are_not_lost(self):
        hist = Histogram()

        def worker():
            for _ in range(1000):
                hist.record(1.0)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 8000
        assert hist.total == pytest.approx(8000.0)

    @pytest.mark.skipif(np is None, reason="numpy is the percentile oracle")
    @settings(max_examples=60, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        q=st.sampled_from([0.5, 0.9, 0.95, 0.99, 0.999]),
    )
    def test_percentile_within_one_bucket_of_numpy(self, samples, q):
        """The histogram readout brackets numpy's exact inverted-CDF value."""
        hist = Histogram()
        for value in samples:
            hist.record(value)
        approx = hist.percentile(q)
        exact = float(np.percentile(samples, q * 100, method="inverted_cdf"))
        # One bucket width of slack on either side, plus float-log jitter.
        assert approx <= exact * GROWTH * (1 + 1e-9)
        assert approx >= exact / GROWTH * (1 - 1e-9)


class TestRegistry:
    def test_same_name_and_labels_return_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_test_total", "help", index="x")
        b = registry.counter("repro_test_total", index="x")
        c = registry.counter("repro_test_total", index="y")
        assert a is b
        assert a is not c

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ValueError, match="counter"):
            registry.gauge("repro_test_total")

    def test_render_round_trips(self):
        """Parse the exposition text back and recover every sample value."""
        registry = MetricsRegistry()
        registry.counter("repro_q_total", "Answered queries", outcome="executed").inc(3)
        registry.counter("repro_q_total", outcome="cached").inc(1)
        registry.gauge("repro_uptime_seconds", "Uptime").set(12.5)
        hist = registry.histogram("repro_lat_ms", "Latency", index="web")
        for value in (1.0, 2.0, 4.0, 8.0):
            hist.record(value)

        samples: dict[str, float] = {}
        types: dict[str, str] = {}
        for line in registry.render().splitlines():
            assert line, "no blank lines in the exposition"
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                types[name] = kind
                continue
            if line.startswith("#"):
                continue
            series, value = line.rsplit(" ", 1)
            samples[series] = float(value)

        assert types == {
            "repro_q_total": "counter",
            "repro_uptime_seconds": "gauge",
            "repro_lat_ms": "histogram",
        }
        assert samples['repro_q_total{outcome="executed"}'] == 3
        assert samples['repro_q_total{outcome="cached"}'] == 1
        assert samples["repro_uptime_seconds"] == 12.5
        assert samples['repro_lat_ms_count{index="web"}'] == 4
        assert samples['repro_lat_ms_sum{index="web"}'] == pytest.approx(15.0)
        assert samples['repro_lat_ms_bucket{index="web",le="+Inf"}'] == 4

        # Bucket series are cumulative and non-decreasing by upper bound.
        buckets = sorted(
            (float(series.split('le="')[1].rstrip('"}').replace("+Inf", "inf")), value)
            for series, value in samples.items()
            if series.startswith("repro_lat_ms_bucket")
        )
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_esc_total", "", path='we"ird\\path\nx').inc()
        text = registry.render()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        # The physical line count stays intact despite the embedded newline.
        assert len([ln for ln in text.splitlines() if ln.startswith("repro_esc")]) == 1

    def test_histogram_bucket_bound_formatting(self):
        registry = MetricsRegistry()
        registry.histogram("repro_fmt_ms").record(3.0)
        text = registry.render()
        bucket_line = next(ln for ln in text.splitlines() if "_bucket" in ln)
        bound = bucket_line.split('le="')[1].split('"')[0]
        assert math.isclose(float(bound), bucket_upper_bound(bucket_index(3.0)))
