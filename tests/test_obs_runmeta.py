"""Run manifests, the metrics stream, the validator CLI and the slow-query log."""

from __future__ import annotations

import json

import pytest

from repro.obs.runmeta import MANIFEST_NAME, RunRecorder, main, validate_manifest
from repro.obs.slowlog import SlowQueryLog


class TestRunRecorder:
    def test_manifest_written_on_creation(self, tmp_path):
        recorder = RunRecorder(tmp_path, run="r1", scale="smoke-0.02", seed=7)
        manifest = json.loads((tmp_path / "r1" / MANIFEST_NAME).read_text())
        assert manifest["run"] == "r1"
        assert manifest["scale"] == "smoke-0.02"
        assert manifest["seed"] == 7
        assert validate_manifest(manifest) == []
        assert recorder.directory == tmp_path / "r1"

    def test_update_config_rewrites_the_manifest(self, tmp_path):
        recorder = RunRecorder(tmp_path, run="r1", config={"a": 1})
        recorder.update_config(b="two")
        manifest = json.loads((tmp_path / "r1" / MANIFEST_NAME).read_text())
        assert manifest["config"] == {"a": 1, "b": "two"}

    def test_append_streams_jsonl_records(self, tmp_path):
        recorder = RunRecorder(tmp_path, run="r1")
        recorder.append("query", {"index": "OIF", "page_accesses": 12})
        recorder.append("table_row", {"table": "fig8", "row": {"qs": 2}})
        lines = [
            json.loads(line)
            for line in recorder.metrics_path().read_text().splitlines()
        ]
        assert [record["kind"] for record in lines] == ["query", "table_row"]
        assert lines[0]["page_accesses"] == 12

    def test_auto_run_names_are_unique_per_process(self, tmp_path):
        recorder = RunRecorder(tmp_path)
        assert recorder.run
        assert (tmp_path / recorder.run / MANIFEST_NAME).exists()


class TestValidateManifest:
    def test_rejects_non_dict(self):
        assert validate_manifest([1, 2]) != []

    def test_reports_missing_and_mistyped_fields(self):
        problems = validate_manifest({"run": 5, "scale": "full"})
        text = "; ".join(problems)
        assert "'run' must be str" in text
        assert "missing required field 'config'" in text


class TestValidatorCli:
    def test_valid_tree_passes(self, tmp_path, capsys):
        recorder = RunRecorder(tmp_path, run="r1")
        recorder.append("query", {"x": 1})
        assert main([str(tmp_path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_manifest_fails(self, tmp_path, capsys):
        run_dir = tmp_path / "bad"
        run_dir.mkdir()
        (run_dir / MANIFEST_NAME).write_text(json.dumps({"run": "bad"}))
        assert main([str(tmp_path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_malformed_metrics_line_fails(self, tmp_path, capsys):
        recorder = RunRecorder(tmp_path, run="r1")
        with recorder.metrics_path().open("a") as fh:
            fh.write('{"kind": "query"}\n{broken\n')
        assert main([str(tmp_path)]) == 1
        assert "malformed JSON on line 2" in capsys.readouterr().out

    def test_empty_tree_fails(self, tmp_path):
        assert main([str(tmp_path)]) == 1

    def test_missing_directory_fails(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 1

    def test_usage_error(self):
        assert main([]) == 2


class TestSlowQueryLog:
    def test_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert log.record(expr="{}", latency_ms=1e9) is False
        assert log.entries() == []

    def test_threshold_gates_capture(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert log.record(expr="fast", latency_ms=9.9) is False
        assert log.record(expr="slow", latency_ms=10.0) is True
        (entry,) = log.entries()
        assert entry["expr"] == "slow"
        assert entry["threshold_ms"] == 10.0

    def test_ring_buffer_evicts_oldest_and_counts_drops(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=2)
        for n in range(5):
            log.record(expr=f"q{n}", latency_ms=1.0)
        payload = log.as_dict()
        assert [entry["expr"] for entry in payload["entries"]] == ["q3", "q4"]
        assert payload["dropped"] == 3

    def test_sink_appends_jsonl(self, tmp_path):
        sink = tmp_path / "slow.jsonl"
        log = SlowQueryLog(threshold_ms=0.0, sink=sink)
        log.record(expr="a", latency_ms=1.0, index="web", counters={"p": 1})
        log.record(expr="b", latency_ms=2.0, trace={"name": "query"})
        lines = [json.loads(line) for line in sink.read_text().splitlines()]
        assert [entry["expr"] for entry in lines] == ["a", "b"]
        assert lines[0]["counters"] == {"p": 1}
        assert lines[1]["trace"]["name"] == "query"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_clear_resets_entries_and_drops(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=1)
        log.record(expr="a", latency_ms=1.0)
        log.record(expr="b", latency_ms=1.0)
        log.clear()
        assert log.as_dict() == {
            "threshold_ms": 0.0,
            "capacity": 1,
            "dropped": 0,
            "entries": [],
        }
