"""Tests for superset query evaluation on the OIF (Algorithm 2)."""

from __future__ import annotations

import itertools
import random

from repro.core import Dataset, OrderedInvertedFile


class TestPaperExamples:
    def test_superset_a_c_returns_106_113(self, paper_oif):
        # Section 2's running example: qs = {a, c} -> {106, 113}.
        assert paper_oif.superset_query({"a", "c"}) == [106, 113]

    def test_superset_a_c_f_from_figure6(self, paper_oif, paper_oracle):
        assert paper_oif.superset_query({"a", "c", "f"}) == paper_oracle.superset_query(
            {"a", "c", "f"}
        )

    def test_single_item_query_returns_singleton_records(self, paper_oif):
        assert paper_oif.superset_query({"a"}) == [113]
        assert paper_oif.superset_query({"d"}) == []

    def test_whole_vocabulary_returns_everything(self, paper_oif, paper_dataset):
        assert paper_oif.superset_query(set("abcdefghij")) == sorted(paper_dataset.record_ids)

    def test_all_pairs_match_oracle(self, paper_oif, paper_oracle):
        for pair in itertools.combinations("abcdefghij", 2):
            assert paper_oif.superset_query(set(pair)) == paper_oracle.superset_query(
                set(pair)
            ), pair

    def test_all_triples_match_oracle(self, paper_oif, paper_oracle):
        for triple in itertools.combinations("abcdefghij", 3):
            assert paper_oif.superset_query(set(triple)) == paper_oracle.superset_query(
                set(triple)
            ), triple

    def test_unknown_items_are_ignored(self, paper_oif, paper_oracle):
        # A record can never contain an item outside the vocabulary, so adding
        # unknown items to the query cannot remove answers.
        assert paper_oif.superset_query({"a", "c", "zzz"}) == paper_oracle.superset_query(
            {"a", "c"}
        )

    def test_query_of_only_unknown_items(self, paper_oif):
        assert paper_oif.superset_query({"xx", "yy"}) == []


class TestAgainstOracle:
    def test_queries_built_from_records(self, skewed_oif, skewed_oracle, skewed_dataset):
        rng = random.Random(7)
        vocabulary = sorted(skewed_dataset.vocabulary, key=str)
        for record in list(skewed_dataset)[::11]:
            query = set(record.items)
            # Pad with extra items so |qs| exceeds the record length.
            while len(query) < min(len(vocabulary), record.length + 2):
                query.add(rng.choice(vocabulary))
            assert skewed_oif.superset_query(query) == skewed_oracle.superset_query(query)

    def test_random_item_combinations(self, skewed_oif, skewed_oracle, skewed_dataset):
        rng = random.Random(13)
        vocabulary = sorted(skewed_dataset.vocabulary, key=str)
        for _ in range(40):
            query = set(rng.sample(vocabulary, rng.randint(1, 6)))
            assert skewed_oif.superset_query(query) == skewed_oracle.superset_query(query), query

    def test_multiblock_lists(self, larger_dataset):
        from repro.baselines import NaiveScanIndex

        oif = OrderedInvertedFile(larger_dataset, block_capacity=16)
        oracle = NaiveScanIndex(larger_dataset)
        rng = random.Random(3)
        vocabulary = sorted(larger_dataset.vocabulary, key=str)
        for _ in range(25):
            query = set(rng.sample(vocabulary, rng.randint(2, 8)))
            assert oif.superset_query(query) == oracle.superset_query(query), query

    def test_duplicate_records_counted_once_each(self):
        dataset = Dataset.from_transactions([{"x"}, {"x"}, {"x", "y"}, {"y", "z"}])
        oif = OrderedInvertedFile(dataset)
        assert oif.superset_query({"x", "y"}) == [1, 2, 3]


class TestMetadataInteraction:
    def test_single_item_records_come_from_metadata(self, skewed_oif, skewed_oracle):
        # Query = one item: the only possible answers are the records equal to
        # {item}, which live exclusively in the metadata singleton region.
        for rank in range(min(5, skewed_oif.domain_size)):
            item = skewed_oif.order.item_at(rank)
            assert skewed_oif.superset_query({item}) == skewed_oracle.superset_query({item})

    def test_no_metadata_variant_matches(self, skewed_oif_no_metadata, skewed_oracle, skewed_dataset):
        rng = random.Random(19)
        vocabulary = sorted(skewed_dataset.vocabulary, key=str)
        for _ in range(30):
            query = set(rng.sample(vocabulary, rng.randint(1, 6)))
            assert skewed_oif_no_metadata.superset_query(query) == skewed_oracle.superset_query(
                query
            ), query

    def test_results_have_no_duplicates(self, skewed_oif, skewed_dataset):
        rng = random.Random(29)
        vocabulary = sorted(skewed_dataset.vocabulary, key=str)
        for _ in range(20):
            query = set(rng.sample(vocabulary, rng.randint(2, 8)))
            result = skewed_oif.superset_query(query)
            assert len(result) == len(set(result))
