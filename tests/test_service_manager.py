"""Tests for the resident-index manager: lifecycle, locks, rebuild/swap."""

from __future__ import annotations

import threading

import pytest

from repro.core import Dataset
from repro.errors import ServiceError
from repro.service import IndexManager, ResultCache
from repro.service.index_manager import INDEX_KINDS


@pytest.fixture()
def dataset(paper_dataset: Dataset) -> Dataset:
    """The paper's Figure 1 relation (ids 101..118), shared session-wide."""
    return paper_dataset


@pytest.fixture()
def manager() -> IndexManager:
    return IndexManager(result_cache=ResultCache(capacity=64))


def test_create_get_drop_lifecycle(manager, dataset):
    entry = manager.create("paper", dataset, kind="oif")
    assert "paper" in manager
    assert manager.names() == ["paper"]
    assert manager.get("paper") is entry
    assert len(manager) == 1
    manager.drop("paper")
    assert "paper" not in manager
    with pytest.raises(ServiceError, match="no index named"):
        manager.get("paper")
    with pytest.raises(ServiceError, match="no index named"):
        manager.drop("paper")


def test_duplicate_names_are_rejected(manager, dataset):
    manager.create("paper", dataset)
    with pytest.raises(ServiceError, match="already exists"):
        manager.create("paper", dataset)


def test_unknown_kind_is_rejected_and_name_released(manager, dataset):
    with pytest.raises(ServiceError, match="unknown index kind"):
        manager.create("paper", dataset, kind="btree-of-doom")
    # A failed build must not leak its name reservation.
    manager.create("paper", dataset)


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_every_kind_answers_like_the_oracle(manager, dataset, kind, paper_oracle):
    entry = manager.create(f"idx-{kind}", dataset, kind=kind)
    for query_type in ("subset", "equality", "superset"):
        query = {"a", "b"}
        assert entry.query(query_type, query) == paper_oracle.query(query_type, query)


def test_describe_reports_records_and_kind(manager, dataset):
    manager.create("paper", dataset, kind="if")
    (description,) = manager.describe()
    assert description["name"] == "paper"
    assert description["kind"] == "if"
    assert description["records"] == len(dataset)
    assert description["supports_updates"] is True
    assert description["size_bytes"] > 0


def test_insert_is_immediately_queryable_and_flush_merges(manager, dataset):
    entry = manager.create("paper", dataset, kind="oif")
    (new_id,) = manager.insert("paper", [{"a", "b", "zz"}])
    assert new_id == max(dataset.record_ids) + 1
    assert entry.pending_updates == 1
    assert new_id in entry.query("subset", {"zz"})
    report = manager.flush("paper")
    assert report.records_merged == 1
    assert entry.pending_updates == 0
    assert new_id in entry.query("subset", {"zz"})


def test_insert_batch_with_empty_transaction_changes_nothing(manager, dataset):
    """A bad batch must not be partially applied (or partially announced)."""
    entry = manager.create("paper", dataset, kind="oif")
    seen: list[list[frozenset]] = []
    entry.add_update_listener(seen.append)
    from repro.errors import QueryError

    with pytest.raises(QueryError, match="empty transaction"):
        manager.insert("paper", [{"a", "b", "zz"}, set()])
    assert entry.pending_updates == 0
    assert entry.query("subset", {"zz"}) == []
    assert seen == []


def test_cache_wired_after_create_still_invalidates(dataset):
    """Listeners resolve the manager's cache at fire time, not at create."""
    manager = IndexManager()                 # no cache yet
    entry = manager.create("paper", dataset, kind="oif")
    cache = ResultCache(capacity=16)
    manager.result_cache = cache             # wired late (e.g. by ServiceServer)
    from repro.service.cache import make_key

    key = make_key("paper", "subset", {"a", "b"})
    cache.put(key, tuple(entry.query("subset", {"a", "b"})))
    manager.insert("paper", [{"a", "b", "late"}])
    assert cache.get(key) is None


def test_insert_log_is_trimmed_by_flush_and_rebuild(manager, dataset):
    entry = manager.create("paper", dataset, kind="oif")
    manager.insert("paper", [{"a", "x1"}, {"a", "x2"}])
    assert entry.insert_count == 2
    manager.flush("paper")
    assert entry.insert_count == 2, "the trim must not forget how many inserts happened"
    assert entry._insert_log == []
    manager.insert("paper", [{"a", "x3"}])
    manager.rebuild("paper")
    assert entry.insert_count == 3
    assert entry._insert_log == []
    assert entry.query("subset", {"x3"})


def test_insert_into_static_kind_is_rejected(manager, dataset):
    manager.create("sig", dataset, kind="sig")
    with pytest.raises(ServiceError, match="does not support updates"):
        manager.insert("sig", [{"a"}])
    assert manager.flush("sig") is None


def test_insert_invalidates_affected_cache_entries_only(manager, dataset):
    cache = manager.result_cache
    entry = manager.create("paper", dataset, kind="oif")
    from repro.service.cache import make_key

    affected = make_key("paper", "subset", {"a", "b"})
    unaffected = make_key("paper", "subset", {"a", "zz"})
    cache.put(affected, tuple(entry.query("subset", {"a", "b"})))
    cache.put(unaffected, tuple(entry.query("subset", {"a", "zz"})))

    manager.insert("paper", [{"a", "b", "c"}])

    assert cache.get(affected) is None, "stale subset entry must be dropped"
    assert cache.get(unaffected) is not None, "unrelated entry must survive"


def test_drop_invalidates_all_cache_entries_of_the_index(manager, dataset):
    cache = manager.result_cache
    manager.create("paper", dataset)
    from repro.service.cache import make_key

    cache.put(make_key("paper", "subset", {"a"}), (101,))
    cache.put(make_key("other", "subset", {"a"}), (1,))
    manager.drop("paper")
    assert cache.get(make_key("paper", "subset", {"a"})) is None
    assert cache.get(make_key("other", "subset", {"a"})) == (1,)


def test_insert_and_flush_on_a_dropped_entry_fail_loudly(manager, dataset):
    """A write racing a drop must not be acknowledged into a dead handle."""
    from repro.errors import UnknownIndexError

    entry = manager.create("paper", dataset, kind="oif")
    manager.drop("paper")
    with pytest.raises(UnknownIndexError):
        entry.insert([{"a", "lost"}])
    with pytest.raises(UnknownIndexError):
        entry.flush()


def test_drop_leaves_an_inflight_create_reservation_alone(manager, dataset):
    """Dropping a name that is only reserved (create still building) must not
    release the reservation, or two concurrent creates could both register."""
    manager._indexes["building"] = None  # what create() holds while it builds
    with pytest.raises(ServiceError, match="no index named"):
        manager.drop("building")
    with pytest.raises(ServiceError, match="already exists"):
        manager.create("building", dataset)


def test_describe_skips_inflight_create_reservations(manager, dataset):
    manager.create("live", dataset)
    manager._indexes["building"] = None
    described = manager.describe()
    assert [d["name"] for d in described] == ["live"]


def test_rebuild_preserves_answers_and_merges_delta(manager, dataset):
    entry = manager.create("paper", dataset, kind="oif")
    manager.insert("paper", [{"a", "b", "zz"}])
    before = entry.query("subset", {"a", "b"})
    rebuilt = manager.rebuild("paper")
    assert rebuilt is entry
    assert entry.pending_updates == 0, "rebuild folds the delta into the base index"
    assert entry.query("subset", {"a", "b"}) == before
    assert entry.query("subset", {"zz"})


def test_rebuild_keeps_update_listeners_wired(manager, dataset):
    entry = manager.create("paper", dataset, kind="oif")
    seen: list[list[frozenset]] = []
    entry.add_update_listener(seen.append)
    manager.rebuild("paper")
    manager.insert("paper", [{"q", "r"}])
    assert seen == [[frozenset({"q", "r"})]]


def test_rebuild_replays_inserts_that_raced_with_the_build(manager, dataset):
    """Simulate an insert landing between snapshot and swap."""
    entry = manager.create("paper", dataset, kind="oif")
    snapshot = entry.snapshot_dataset()
    mark = entry.insert_count
    from repro.service.index_manager import ManagedIndex

    fresh = ManagedIndex("paper", "oif", snapshot)
    racing_id = manager.insert("paper", [{"raced"}])[0]   # arrives mid-build
    entry.swap_handle(fresh, mark)
    assert entry.query("subset", {"raced"}) == [racing_id]


def test_queries_and_inserts_from_many_threads_stay_consistent(manager, dataset, paper_oracle):
    entry = manager.create("paper", dataset, kind="oif")
    expected = {
        query_type: paper_oracle.query(query_type, {"a", "b"})
        for query_type in ("subset", "equality", "superset")
    }
    errors: list[BaseException] = []

    def reader(query_type: str) -> None:
        try:
            for _ in range(30):
                result = entry.query(query_type, {"a", "b"})
                # Inserts only ever append ids beyond the original range, so
                # the original answers must always be a prefix-subset.
                assert set(expected[query_type]) <= set(result + expected[query_type])
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    def writer() -> None:
        try:
            for n in range(10):
                manager.insert("paper", [{"a", "b", f"w{n}"}])
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=reader, args=(qt,))
               for qt in ("subset", "equality", "superset") for _ in range(2)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # All 10 inserted records answer the final subset query.
    final = entry.query("subset", {"a", "b"})
    assert len(final) == len(expected["subset"]) + 10
