"""Property suite for the columnar posting codecs (the hot-path rewrite).

Four guarantees, each checked with hypothesis over adversarial inputs:

* **roundtrip** — ``encode_columns`` ∘ ``decode_columns`` is the identity on
  valid (ids, lengths) columns, compressed and uncompressed;
* **scalar equivalence** — the batch decoder produces exactly the postings
  the scalar reference decoder produces, and the batch encoder produces the
  exact bytes the scalar encoder produces (byte-for-byte, so on-disk layouts
  and space numbers cannot drift);
* **d-gap restart at block boundaries** — every OIF block encodes
  independently (its first id is absolute), so decoding any block split of a
  posting stream reassembles the stream;
* **query equivalence** — on random datasets, every index answers all three
  predicates identically to the naive full-scan oracle, which is what ties
  the array-native merge joins back to the paper's semantics.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import InvertedFile, NaiveScanIndex, UnorderedBTreeInvertedFile
from repro.compression.postings import (
    Posting,
    PostingBlockCodec,
    PostingListCodec,
    PostingColumns,
    decode_columns,
    encode_columns,
)
from repro.core import Dataset, OrderedInvertedFile

# Strictly increasing ids with arbitrary gap widths (1-byte to multi-byte
# varints) paired with lengths spanning the single/multi-byte boundary.
posting_columns = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=2**40),
        st.integers(min_value=0, max_value=300),
    ),
    max_size=120,
).map(
    lambda pairs: (
        [sum(gap for gap, _ in pairs[: index + 1]) for index in range(len(pairs))],
        [length for _, length in pairs],
    )
)


class TestRoundtrip:
    @given(posting_columns, st.booleans())
    def test_encode_decode_roundtrip(self, columns, compress):
        ids, lengths = columns
        encoded = encode_columns(ids, lengths, compress=compress)
        decoded = decode_columns(encoded, compress=compress)
        assert list(decoded.ids) == ids
        assert list(decoded.lengths) == lengths

    @given(posting_columns)
    def test_columns_are_a_lazy_posting_view(self, columns):
        ids, lengths = columns
        decoded = decode_columns(encode_columns(ids, lengths))
        assert len(decoded) == len(ids)
        assert list(decoded) == [Posting(i, n) for i, n in zip(ids, lengths)]
        assert decoded.postings() == PostingColumns.from_postings(decoded.postings()).postings()
        if ids:
            assert decoded[0] == Posting(ids[0], lengths[0])


class TestScalarEquivalence:
    @given(posting_columns, st.booleans())
    def test_batch_decode_equals_scalar_decode(self, columns, compress):
        ids, lengths = columns
        codec = PostingListCodec(compress=compress)
        postings = [Posting(i, n) for i, n in zip(ids, lengths)]
        encoded = codec.encode(postings)
        assert codec.decode_columns(encoded).postings() == codec.decode(encoded)

    @given(posting_columns, st.booleans())
    def test_batch_encode_is_byte_identical_to_scalar_encode(self, columns, compress):
        ids, lengths = columns
        codec = PostingListCodec(compress=compress)
        postings = [Posting(i, n) for i, n in zip(ids, lengths)]
        assert codec.encode_columns_form(ids, lengths) == codec.encode(postings)

    @given(posting_columns, st.integers(min_value=0, max_value=50))
    def test_continuation_encoding_matches_scalar(self, columns, anchor):
        ids, lengths = columns
        shifted = [record_id + anchor for record_id in ids]
        codec = PostingListCodec(compress=True)
        postings = [Posting(i, n) for i, n in zip(shifted, lengths)]
        if not postings:
            return
        assert codec.encode_columns_form(shifted, lengths, previous_id=anchor) == (
            codec.encode_continuation(postings, previous_last_id=anchor)
        )


class TestBlockBoundaryRestart:
    @given(posting_columns, st.integers(min_value=1, max_value=16))
    def test_each_block_restarts_its_gap_chain(self, columns, block_size):
        """Splitting a stream into blocks and decoding each independently
        reassembles the stream — the d-gap chain restarts per block."""
        ids, lengths = columns
        codec = PostingBlockCodec(compress=True)
        reassembled_ids: list[int] = []
        reassembled_lengths: list[int] = []
        for start in range(0, len(ids), block_size):
            block_ids = ids[start : start + block_size]
            block_lengths = lengths[start : start + block_size]
            encoded = codec.encode_columns_form(block_ids, block_lengths)
            decoded = codec.decode_columns(encoded)
            # The block's first id is stored absolute, not as a gap from the
            # previous block.
            assert list(decoded.ids) == block_ids
            reassembled_ids.extend(decoded.ids)
            reassembled_lengths.extend(decoded.lengths)
        assert reassembled_ids == ids
        assert reassembled_lengths == lengths


transactions = st.lists(
    st.sets(
        st.sampled_from([f"i{n}" for n in range(14)]), min_size=1, max_size=6
    ),
    min_size=1,
    max_size=40,
)
query_sets = st.sets(
    st.sampled_from([f"i{n}" for n in range(14)]), min_size=1, max_size=4
)


class TestQueryEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(transactions, st.lists(query_sets, min_size=1, max_size=5))
    def test_all_indexes_match_the_naive_oracle(self, raw_transactions, queries):
        dataset = Dataset.from_transactions(raw_transactions)
        oracle = NaiveScanIndex(dataset)
        indexes = [
            OrderedInvertedFile(dataset, block_capacity=4),
            OrderedInvertedFile(dataset, use_metadata=False, block_capacity=4),
            OrderedInvertedFile(dataset, compress=False, block_capacity=4),
            InvertedFile(dataset),
            UnorderedBTreeInvertedFile(dataset, block_capacity=4),
        ]
        for query in queries:
            for predicate in ("subset", "equality", "superset"):
                expected = oracle.query(predicate, query)
                for index in indexes:
                    assert index.query(predicate, query) == expected, (
                        f"{index.name} diverged on {predicate} {sorted(query)}"
                    )
